//! Topology equivalence: `Topology::Complete` must leave the engine
//! **byte-identical** to the topology-free path.
//!
//! This is the design constraint that lets the multi-hop layer coexist with
//! the single-hop reproduction and the committed BENCH trajectory: the
//! topology-aware delivery step, with the complete graph, must make exactly
//! the same RNG draws and produce exactly the same traces (including idle
//! fast-forward spans) and metrics as the pre-topology engine.
//!
//! Three layers:
//!
//! * A full-trace matrix over the five paper protocols (plus the new
//!   `MultiHopCast` relay variant) × three adversaries × three seeds: a
//!   topology-free `Simulation` vs one with `.topology(Complete)` mounted
//!   must agree on every observer event — per-slot stats, idle spans,
//!   informed/halted/boundary — and on the final [`RunOutcome`], field for
//!   field.
//! * A campaign-artifact check: a cell pinned to `TopologyKind::Complete`
//!   produces byte-identical schema-versioned JSON to the default
//!   (topology-free) cell.
//! * Multi-hop campaign determinism: the `multi-hop` scenario's artifact is
//!   byte-identical at any thread count (the `rcb run` guarantee).

use rcb::adversary::{FullBandBurst, RandomSubset, UniformFraction};
use rcb::core::{MultiCast, MultiCastAdv, MultiCastC, MultiCastCore, MultiHopCast};
use rcb::sim::{
    Adversary, EngineConfig, Observer, Protocol, RunOutcome, Simulation, SlotProfile, SlotStats,
    Topology,
};

/// Every observable engine event, recorded verbatim.
#[derive(Clone, Debug, PartialEq)]
enum Ev {
    Informed(u32, u64),
    Halted(u32, u64),
    Boundary(u64, u32, u32, u8, u32, u32),
    Slot(u64, SlotStats),
    IdleSpan(u64, u64, u64),
}

#[derive(Default)]
struct FullTrace {
    events: Vec<Ev>,
}

impl Observer for FullTrace {
    fn on_informed(&mut self, node: u32, slot: u64) {
        self.events.push(Ev::Informed(node, slot));
    }
    fn on_halted(&mut self, node: u32, slot: u64) {
        self.events.push(Ev::Halted(node, slot));
    }
    fn on_boundary(&mut self, slot: u64, profile: &SlotProfile, active: u32, informed: u32) {
        self.events.push(Ev::Boundary(
            slot,
            profile.seg_major,
            profile.seg_minor,
            profile.step,
            active,
            informed,
        ));
    }
    fn on_slot(&mut self, slot: u64, stats: &SlotStats) {
        self.events.push(Ev::Slot(slot, *stats));
    }
    fn on_idle_span(&mut self, slot: u64, len: u64, jammed: u64) {
        self.events.push(Ev::IdleSpan(slot, len, jammed));
    }
}

const PROTOS: [&str; 6] = [
    "MultiCastCore",
    "MultiCast",
    "MultiCast(C)",
    "MultiCastAdv",
    "MultiCastAdv(C)",
    "MultiHopCast",
];
const ADVS: [&str; 3] = ["uniform-fraction", "full-band-burst", "random-subset"];

/// Run protocol/adversary combination `(proto, adv)` at `seed`, either on
/// the topology-free path or over an explicit `Topology::Complete`,
/// capturing the full event trace.
fn run_combo(proto: usize, adv: usize, seed: u64, complete_topo: bool) -> (RunOutcome, Vec<Ev>) {
    let cfg = EngineConfig::capped(40_000);
    let t = 20_000u64;
    let mut adversary: Box<dyn Adversary> = match adv {
        0 => Box::new(UniformFraction::new(t, 0.6, seed + 100)),
        1 => Box::new(FullBandBurst::new(t, 500)),
        2 => Box::new(RandomSubset::new(t, 3, seed + 102)),
        _ => unreachable!(),
    };
    let mut trace = FullTrace::default();
    fn go<P: Protocol>(
        mut p: P,
        a: &mut dyn Adversary,
        seed: u64,
        cfg: &EngineConfig,
        complete_topo: bool,
        obs: &mut FullTrace,
    ) -> RunOutcome {
        if complete_topo {
            Simulation::new(&mut p)
                .adversary(a)
                .topology(&Topology::Complete)
                .config(*(cfg))
                .observer(obs)
                .run(seed)
        } else {
            Simulation::new(&mut p)
                .adversary(a)
                .config(*(cfg))
                .observer(obs)
                .run(seed)
        }
    }
    let n = 16u64;
    let a = adversary.as_mut();
    let out = match proto {
        0 => go(
            MultiCastCore::new(n, t),
            a,
            seed,
            &cfg,
            complete_topo,
            &mut trace,
        ),
        1 => go(MultiCast::new(n), a, seed, &cfg, complete_topo, &mut trace),
        2 => go(
            MultiCastC::new(n, 4),
            a,
            seed,
            &cfg,
            complete_topo,
            &mut trace,
        ),
        3 => go(
            MultiCastAdv::new(n),
            a,
            seed,
            &cfg,
            complete_topo,
            &mut trace,
        ),
        4 => go(
            MultiCastAdv::with_channel_cap(n, 4, Default::default()),
            a,
            seed,
            &cfg,
            complete_topo,
            &mut trace,
        ),
        5 => go(
            MultiHopCast::new(n),
            a,
            seed,
            &cfg,
            complete_topo,
            &mut trace,
        ),
        _ => unreachable!(),
    };
    (out, trace.events)
}

/// The acceptance matrix: protocols × adversaries × seeds; the complete
/// topology must match the topology-free engine on every event and every
/// outcome field.
#[test]
fn complete_topology_trace_equals_single_hop_engine() {
    for (pi, pname) in PROTOS.iter().enumerate() {
        for (ai, aname) in ADVS.iter().enumerate() {
            for seed in [11u64, 22, 33] {
                let (out_single, trace_single) = run_combo(pi, ai, seed, false);
                let (out_topo, trace_topo) = run_combo(pi, ai, seed, true);
                assert_eq!(
                    out_single, out_topo,
                    "{pname} vs {aname} seed {seed}: outcome diverged under Complete topology"
                );
                assert_eq!(
                    trace_single.len(),
                    trace_topo.len(),
                    "{pname} vs {aname} seed {seed}: trace lengths diverged"
                );
                for (k, (a, b)) in trace_single.iter().zip(&trace_topo).enumerate() {
                    assert_eq!(
                        a, b,
                        "{pname} vs {aname} seed {seed}: trace event {k} diverged"
                    );
                }
            }
        }
    }
}

/// Fast-forward spans survive the topology layer: the complete-topology
/// run must fast-forward exactly the same idle spans (the runs above
/// compare them too, but this pins a sparse workload where spans dominate).
#[test]
fn complete_topology_preserves_fast_forward_spans() {
    let spans_of = |complete_topo: bool| {
        let mut proto = MultiCast::new(16);
        let mut eve = UniformFraction::new(400_000, 0.9, 7);
        let mut trace = FullTrace::default();
        let cfg = EngineConfig::default();
        let out = if complete_topo {
            Simulation::new(&mut proto)
                .adversary(&mut eve)
                .topology(&Topology::Complete)
                .config(cfg)
                .observer(&mut trace)
                .run(3)
        } else {
            Simulation::new(&mut proto)
                .adversary(&mut eve)
                .config(cfg)
                .observer(&mut trace)
                .run(3)
        };
        let spans: Vec<Ev> = trace
            .events
            .into_iter()
            .filter(|e| matches!(e, Ev::IdleSpan(..)))
            .collect();
        (out, spans)
    };
    let (out_single, spans_single) = spans_of(false);
    let (out_topo, spans_topo) = spans_of(true);
    assert!(
        !spans_single.is_empty(),
        "the late-iteration workload must fast-forward"
    );
    assert_eq!(spans_single, spans_topo, "idle spans diverged");
    assert_eq!(out_single, out_topo);
}

/// Campaign artifacts: pinning a cell to `TopologyKind::Complete` yields
/// byte-identical JSON to the default topology-free cell.
#[test]
fn complete_topology_campaign_artifact_is_byte_identical() {
    use rcb::campaign::{run_campaign, CampaignConfig, CampaignSpec, CellSpec};
    use rcb::harness::{AdversaryKind, ProtocolKind, TopologyKind};

    let cell = || {
        CellSpec::new(
            ProtocolKind::MultiCast {
                n: 16,
                params: Default::default(),
            },
            AdversaryKind::Uniform {
                t: 5_000,
                frac: 0.5,
            },
        )
        .with_max_slots(5_000_000)
    };
    let spec = |explicit: bool| CampaignSpec {
        name: "equiv".into(),
        description: "complete-topology equivalence".into(),
        cells: vec![if explicit {
            cell().with_topology(TopologyKind::Complete)
        } else {
            cell()
        }],
    };
    let cfg = CampaignConfig {
        seed: 99,
        trials_per_cell: 6,
        threads: 2,
        ..Default::default()
    };
    assert_eq!(
        run_campaign(&spec(false), &cfg).to_json(),
        run_campaign(&spec(true), &cfg).to_json(),
        "explicit Complete topology changed the campaign artifact"
    );
}

/// The `multi-hop` scenario artifact is deterministic at any thread count
/// (the acceptance guarantee behind `rcb run multi-hop --out …`).
#[test]
fn multi_hop_campaign_is_thread_deterministic() {
    use rcb::campaign::{find, run_campaign, CampaignConfig};

    let scenario = find("multi-hop").expect("multi-hop scenario registered");
    let spec = (scenario.build)();
    let json_at = |threads: usize| {
        run_campaign(
            &spec,
            &CampaignConfig {
                seed: 41,
                trials_per_cell: 3,
                threads,
                max_slots: Some(2_000_000),
                ..Default::default()
            },
        )
        .to_json()
    };
    let reference = json_at(1);
    assert!(reference.contains("\"schema_version\": 5"));
    assert!(reference.contains("\"topology\": \"line\""));
    assert!(reference.contains("\"topology\": \"dynamic\""));
    assert_eq!(reference, json_at(4), "1 vs 4 threads");
}
