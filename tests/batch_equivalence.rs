//! Batch-lane equivalence: the trial-batched SoA engine
//! ([`rcb::sim::BatchSimulation`], reached through
//! [`rcb::harness::run_trial_batch`]) against the scalar per-trial path.
//!
//! Contract, in two tiers:
//!
//! * **Width 1 is byte-identical.** A single-lane batch delegates to the
//!   scalar `Simulation`, so outcome, RNG draw counts, observer-event
//!   tally — every telemetry counter — must equal
//!   [`run_trial_telemetry`] on the same spec, field for field. (The
//!   full observer trace path *is* the scalar one by construction at
//!   width 1; `observer_events` equality pins the event stream.)
//! * **Width > 1 lanes replicate scalar trials exactly.** Each lane of a
//!   wide batch must match the scalar run of the same (spec, seed):
//!   same `TrialResult`, same `EngineTelemetry`. This is stronger than
//!   the aggregate-tolerance gate the batch lane minimally owes — the
//!   lockstep cursor, joint idle skip, and pending-span accounting are
//!   designed to reproduce per-trial scalar semantics bit for bit, and
//!   this matrix is what keeps that true. The aggregate gate is still
//!   asserted separately (`batch_aggregates_match_scalar`) so a future
//!   relaxation of per-lane identity has an explicit tolerance to meet.
//!
//! Plus the satellite invariants: per-lane telemetry conservation
//! (slot and jam-budget splits, histogram closure) in the batch lane,
//! and the `batch_supported` scope predicate.

use rcb::harness::{
    batch_supported, run_trial_batch, run_trial_telemetry, AdversaryKind, ProtocolKind,
    ScheduleEventKind, ScheduleSpec, TopologyKind, TrialOptions, TrialSpec,
};
use rcb::sim::{EngineConfig, EngineTelemetry};

const SEEDS: [u64; 3] = [11, 22, 33];
const CAP: u64 = 60_000;

fn protos() -> Vec<(&'static str, ProtocolKind)> {
    vec![
        (
            "MultiCastCore",
            ProtocolKind::Core {
                n: 16,
                t: 30_000,
                params: Default::default(),
            },
        ),
        (
            "MultiCast",
            ProtocolKind::MultiCast {
                n: 16,
                params: Default::default(),
            },
        ),
        (
            "MultiCast(C)",
            ProtocolKind::MultiCastC {
                n: 16,
                c: 4,
                params: Default::default(),
            },
        ),
        (
            "MultiCastAdv",
            ProtocolKind::Adv {
                n: 16,
                params: Default::default(),
            },
        ),
        (
            "NaiveEpidemic",
            ProtocolKind::Naive {
                n: 16,
                act_prob: 0.2,
            },
        ),
    ]
}

fn advs() -> Vec<(&'static str, AdversaryKind)> {
    vec![
        ("silent", AdversaryKind::Silent),
        (
            "uniform",
            AdversaryKind::Uniform {
                t: 30_000,
                frac: 0.6,
            },
        ),
        (
            "sweep",
            AdversaryKind::Sweep {
                t: 30_000,
                width: 3,
                step: 2,
            },
        ),
    ]
}

fn spec(p: &ProtocolKind, a: &AdversaryKind, seed: u64) -> TrialSpec {
    TrialSpec::new(p.clone(), a.clone(), seed).with_max_slots(CAP)
}

/// Width 1: the batch entry point must be byte-identical to the scalar
/// trial path — same distilled result, same telemetry, across the full
/// protocol × adversary × seed matrix.
#[test]
fn batch_width_one_is_byte_identical_to_scalar() {
    for (pname, p) in protos() {
        for (aname, a) in advs() {
            for seed in SEEDS {
                let label = format!("{pname} vs {aname} seed {seed}");
                let s = spec(&p, &a, seed);
                let batch = run_trial_batch(&s, &[seed], EngineConfig::default());
                assert_eq!(batch.len(), 1, "{label}");
                let (scalar_r, scalar_tel) = run_trial_telemetry(&s, TrialOptions::default());
                assert_eq!(
                    format!("{:?}", batch[0].0),
                    format!("{scalar_r:?}"),
                    "{label}: width-1 result diverged from the scalar path"
                );
                assert_eq!(
                    batch[0].1, scalar_tel,
                    "{label}: width-1 telemetry diverged from the scalar path"
                );
            }
        }
    }
}

/// Width > 1: every lane of a wide batch equals the scalar run of the same
/// (spec, seed) — outcome and telemetry, including RNG draw counts and the
/// observer-event tally. Lane seeds are deliberately ragged (not the
/// spec's own seed) to pin that each lane runs under its own entry.
#[test]
fn batch_lanes_replicate_scalar_trials_exactly() {
    let lane_seeds: Vec<u64> = (0..8).map(|i| 1000 + 17 * i).collect();
    for (pname, p) in protos() {
        for (aname, a) in advs() {
            let s = spec(&p, &a, lane_seeds[0]);
            let batch = run_trial_batch(&s, &lane_seeds, EngineConfig::default());
            assert_eq!(batch.len(), lane_seeds.len());
            for (lane, &seed) in batch.iter().zip(&lane_seeds) {
                let label = format!("{pname} vs {aname} lane seed {seed}");
                let (scalar_r, scalar_tel) =
                    run_trial_telemetry(&spec(&p, &a, seed), TrialOptions::default());
                assert_eq!(
                    format!("{:?}", lane.0),
                    format!("{scalar_r:?}"),
                    "{label}: lane result diverged from the scalar trial"
                );
                assert_eq!(
                    lane.1, scalar_tel,
                    "{label}: lane telemetry diverged from the scalar trial"
                );
            }
        }
    }
}

/// The aggregate gate the batch lane minimally owes: batched means must
/// stay within tolerance of scalar means. Per-lane identity (above) makes
/// the deltas exactly zero today; the tolerance is the contract a future
/// per-lane relaxation would have to meet.
#[test]
fn batch_aggregates_match_scalar() {
    const TOL: f64 = 1e-9;
    let lane_seeds: Vec<u64> = (0..8).map(|i| 2000 + 23 * i).collect();
    for (pname, p) in protos() {
        let a = AdversaryKind::Uniform {
            t: 30_000,
            frac: 0.6,
        };
        let s = spec(&p, &a, lane_seeds[0]);
        let batch = run_trial_batch(&s, &lane_seeds, EngineConfig::default());
        let scalar: Vec<_> = lane_seeds
            .iter()
            .map(|&seed| run_trial_telemetry(&spec(&p, &a, seed), TrialOptions::default()))
            .collect();
        let mean = |it: &mut dyn Iterator<Item = f64>| {
            let (sum, n) = it.fold((0.0, 0u32), |(s, n), x| (s + x, n + 1));
            sum / n as f64
        };
        let b_slots = mean(&mut batch.iter().map(|(r, _)| r.slots as f64));
        let s_slots = mean(&mut scalar.iter().map(|(r, _)| r.slots as f64));
        let b_cost = mean(&mut batch.iter().map(|(r, _)| r.max_cost as f64));
        let s_cost = mean(&mut scalar.iter().map(|(r, _)| r.max_cost as f64));
        let b_done = batch.iter().filter(|(r, _)| r.completed).count();
        let s_done = scalar.iter().filter(|(r, _)| r.completed).count();
        assert!(
            (b_slots - s_slots).abs() <= TOL * s_slots.max(1.0),
            "{pname}: mean slots diverged ({b_slots} vs {s_slots})"
        );
        assert!(
            (b_cost - s_cost).abs() <= TOL * s_cost.max(1.0),
            "{pname}: mean max cost diverged ({b_cost} vs {s_cost})"
        );
        assert_eq!(b_done, s_done, "{pname}: completion count diverged");
    }
}

/// Satellite invariant: the batch lane's per-lane telemetry is
/// conservation-correct — every covered slot is stepped or fast-forwarded,
/// Eve's ledger splits exactly across the per-slot and span charge paths,
/// the span histogram closes, and untimed lanes leave the wall-clock
/// phases as hard zeros.
#[test]
fn batch_lane_telemetry_conserves() {
    let lane_seeds: Vec<u64> = (0..8).map(|i| 3000 + 31 * i).collect();
    for (pname, p) in protos() {
        for (aname, a) in advs() {
            let s = spec(&p, &a, lane_seeds[0]);
            for (r, tel) in run_trial_batch(&s, &lane_seeds, EngineConfig::default()) {
                let label = format!("{pname} vs {aname} lane seed {}", r.seed);
                check_conservation(&label, r.slots, r.eve_spent, &tel);
            }
        }
    }
}

fn check_conservation(label: &str, slots: u64, eve_spent: u64, tel: &EngineTelemetry) {
    assert_eq!(
        tel.slots_stepped + tel.slots_fast_forwarded,
        slots,
        "{label}: stepped + fast-forwarded must cover every slot"
    );
    assert_eq!(
        tel.jam_spent_stepped + tel.jam_spent_spans,
        eve_spent,
        "{label}: jam-budget split must conserve Eve's ledger"
    );
    assert_eq!(
        tel.span_len_hist.iter().sum::<u64>(),
        tel.spans,
        "{label}: histogram must account for every span exactly once"
    );
    assert_eq!(
        tel.phases.total(),
        0,
        "{label}: phases timed without opt-in"
    );
}

/// The scope predicate: single-hop, unscheduled, single-message specs are
/// in; explicit non-complete topologies, nemesis schedules, and
/// multi-message trials fall back to the scalar path.
#[test]
fn batch_supported_scopes_the_lane() {
    let base = TrialSpec::new(
        ProtocolKind::MultiCast {
            n: 16,
            params: Default::default(),
        },
        AdversaryKind::Silent,
        7,
    );
    assert!(batch_supported(&base));
    assert!(batch_supported(
        &base.clone().with_topology(TopologyKind::Complete)
    ));
    assert!(!batch_supported(
        &base.clone().with_topology(TopologyKind::Line)
    ));
    assert!(!batch_supported(&base.clone().with_schedule(
        ScheduleSpec::new().at(0, ScheduleEventKind::CrashNodes { nodes: vec![1] })
    )));
    assert!(!batch_supported(&TrialSpec::new(
        ProtocolKind::MultiMessage {
            n: 16,
            k: 2,
            channels: 4,
            p: 0.2,
        },
        AdversaryKind::Silent,
        7,
    )));
}
