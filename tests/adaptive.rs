//! Integration tests for the adaptive-adversary extension (Section 8 model).

use rcb::adversary::{HotspotJammer, ReactiveJammer, UniformFraction};
use rcb::core::MultiCast;
use rcb::harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};
use rcb::sim::Simulation;

#[test]
fn protocols_remain_safe_under_adaptive_jamming() {
    let n = 32u64;
    let t = 100_000u64;
    let mut specs = Vec::new();
    for adv in [
        AdversaryKind::Reactive {
            t,
            max_channels: 16,
        },
        AdversaryKind::Hotspot {
            t,
            k: 8,
            decay: 0.8,
        },
    ] {
        for proto in [
            ProtocolKind::Core {
                n,
                t,
                params: Default::default(),
            },
            ProtocolKind::MultiCast {
                n,
                params: Default::default(),
            },
            ProtocolKind::MultiCastC {
                n,
                c: 4,
                params: Default::default(),
            },
        ] {
            for seed in 0..3u64 {
                specs.push(TrialSpec::new(proto.clone(), adv.clone(), 900 + seed));
            }
        }
    }
    for r in run_trials(&specs, 0) {
        assert_eq!(r.safety_violations, 0, "{} vs {}", r.protocol, r.adversary);
        assert!(
            r.completed,
            "{} vs {} did not complete",
            r.protocol, r.adversary
        );
        assert!(r.all_informed);
        assert!(r.eve_spent <= t);
    }
}

/// The structural argument behind the Section 8 conjecture: because nodes
/// hop to fresh uniform channels every slot, a reactive jammer's energy is
/// statistically equivalent to an oblivious jammer's of the same per-slot
/// spend. Compare a hotspot jammer (k of C channels, adaptively chosen)
/// against a uniform jammer (same k/C fraction, obliviously chosen).
#[test]
fn adaptive_jamming_is_no_stronger_than_spend_matched_oblivious() {
    let n = 32u64;
    let t = 200_000u64;
    let seeds = 5u64;
    let mut adaptive_cost = 0.0;
    let mut oblivious_cost = 0.0;
    for seed in 0..seeds {
        let mut p1 = MultiCast::new(n);
        let mut hotspot = HotspotJammer::new(t, 8, 0.8, seed);
        let a = Simulation::new(&mut p1)
            .adaptive(&mut hotspot)
            .run(40 + seed);
        assert!(a.all_halted && a.all_informed);
        assert_eq!(a.safety_violations(), 0);
        adaptive_cost += a.max_cost() as f64;

        let mut p2 = MultiCast::new(n);
        let mut uniform = UniformFraction::new(t, 0.5, seed); // 8 of 16 channels
        let o = Simulation::new(&mut p2)
            .adversary(&mut uniform)
            .run(40 + seed);
        assert!(o.all_halted && o.all_informed);
        oblivious_cost += o.max_cost() as f64;
    }
    let ratio = adaptive_cost / oblivious_cost;
    assert!(
        (0.8..1.25).contains(&ratio),
        "adaptive jamming should be statistically equivalent to oblivious \
         jamming of equal spend (got cost ratio {ratio:.3})"
    );
}

/// A pure reactive jammer barely spends against channel-hopping protocols:
/// it can only jam channels that were busy last slot, and last slot's busy
/// set is tiny under sparse action probabilities.
#[test]
fn reactive_jammer_cannot_spend_its_budget() {
    let n = 32u64;
    let t = 1_000_000u64;
    let mut proto = MultiCast::new(n);
    let mut eve = ReactiveJammer::new(t, 64);
    let out = Simulation::new(&mut proto).adaptive(&mut eve).run(77);
    assert!(out.all_halted && out.all_informed);
    // Expected busy channels per slot ≈ n·p = 0.5; over the ~first-iteration
    // run she can burn only a tiny sliver of a million-unit budget.
    assert!(
        out.eve_spent < t / 10,
        "reactive spend {} should be far below budget {t}",
        out.eve_spent
    );
}
