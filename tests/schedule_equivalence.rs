//! Soundness gates for the nemesis layer (`WorldSchedule`):
//!
//! 1. **Empty-schedule byte-identity** — mounting `.schedule(&empty)` on
//!    the `Simulation` builder changes *nothing*: outcome, full event
//!    trace (including idle spans), and engine telemetry (RNG draw counts
//!    included) are byte-identical to the unscheduled engine, across a
//!    5-protocol × {oblivious, adaptive} matrix.
//! 2. **Events land on span boundaries** — every applied event's
//!    `applied_at` is at or after its `scheduled_at` and never strictly
//!    inside a fast-forwarded idle span, so a scheduled run is still a
//!    sound span-batched execution (see `docs/NEMESIS.md`).
//! 3. **No-op events are outcome-inert** — a `Heal` with no partition and
//!    a `Recover` with no crash may only add timeline markers; every other
//!    `RunOutcome` field matches the unscheduled run even though the
//!    schedule forces span clipping and the per-listener delivery path.
//!
//! Runs as a CI gate in the bench-smoke job alongside `fast_forward.rs`
//! and `simulation_api_equivalence.rs`.

use rcb::adversary::{ReactiveJammer, UniformFraction};
use rcb::core::{McParams, MultiCast, MultiCastAdv, MultiCastC, MultiCastCore, MultiHopCast};
use rcb::sim::{
    derive_seed, EngineConfig, EngineTelemetry, Eve, Observer, Protocol, RunOutcome, Simulation,
    SlotProfile, SlotStats, Topology, WorldEvent, WorldSchedule,
};

const PROTOCOLS: [&str; 5] = ["core", "multicast", "multicast-c", "adv", "multihop"];
const EVES: [&str; 2] = ["oblivious", "adaptive"];

/// Records the complete observable surface of a run: a running FNV-1a hash
/// of every event (informed / halted / boundary / per-slot stats) plus the
/// idle-span list, which test 2 inspects directly. `RecordingObserver`
/// does not capture idle spans, and byte-identity must cover them.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Probe {
    hash: u64,
    spans: Vec<(u64, u64)>,
}

impl Probe {
    fn new() -> Self {
        Self {
            hash: 0xcbf2_9ce4_8422_2325,
            spans: Vec::new(),
        }
    }

    fn eat(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl Observer for Probe {
    fn on_informed(&mut self, node: u32, slot: u64) {
        self.eat(&format!("i{node},{slot};"));
    }
    fn on_halted(&mut self, node: u32, slot: u64) {
        self.eat(&format!("h{node},{slot};"));
    }
    fn on_boundary(&mut self, slot: u64, profile: &SlotProfile, active: u32, informed: u32) {
        self.eat(&format!(
            "b{slot},{},{},{},{active},{informed};",
            profile.seg_major, profile.seg_minor, profile.step
        ));
    }
    fn on_slot(&mut self, slot: u64, stats: &SlotStats) {
        self.eat(&format!("s{slot},{stats:?};"));
    }
    fn on_idle_span(&mut self, slot: u64, len: u64, jammed: u64) {
        self.eat(&format!("f{slot},{len},{jammed};"));
        self.spans.push((slot, len));
    }
}

/// One matrix cell through the `Simulation` builder. `schedule: None`
/// means the builder method is not called at all (the unscheduled engine).
fn run_cell(
    proto_name: &str,
    eve_name: &str,
    schedule: Option<&WorldSchedule>,
    seed: u64,
) -> (RunOutcome, EngineTelemetry, Probe) {
    let cfg = EngineConfig {
        stop_when_all_informed: proto_name == "multihop",
        ..EngineConfig::capped(300_000)
    };
    let adv_seed = derive_seed(seed, 1_000_003);
    let mut uniform;
    let mut reactive;
    let eve = match eve_name {
        "oblivious" => {
            uniform = UniformFraction::new(6_000, 0.5, adv_seed);
            Eve::Oblivious(&mut uniform)
        }
        "adaptive" => {
            reactive = ReactiveJammer::with_params(6_000, 4, 2, 1);
            Eve::Adaptive(&mut reactive)
        }
        other => panic!("unknown adversary model {other}"),
    };
    // Multi-hop runs over a line so partitions and link loss bite; the
    // single-hop protocols run on the default complete connectivity.
    let topo = (proto_name == "multihop").then_some(&Topology::Line);

    fn go<'a, P: Protocol>(
        p: &'a mut P,
        eve: Eve<'a>,
        topo: Option<&'a Topology>,
        schedule: Option<&'a WorldSchedule>,
        cfg: EngineConfig,
        probe: &'a mut Probe,
        seed: u64,
    ) -> (RunOutcome, EngineTelemetry) {
        let mut sim = Simulation::new(p).eve(eve).topology(topo).config(cfg);
        if let Some(sched) = schedule {
            sim = sim.schedule(sched);
        }
        sim.observer(probe).run_with_telemetry(seed)
    }

    let mut probe = Probe::new();
    let (out, tel) = match proto_name {
        "core" => go(
            &mut MultiCastCore::new(16, 6_000),
            eve,
            topo,
            schedule,
            cfg,
            &mut probe,
            seed,
        ),
        "multicast" => go(
            &mut MultiCast::with_params(16, McParams::default()),
            eve,
            topo,
            schedule,
            cfg,
            &mut probe,
            seed,
        ),
        "multicast-c" => go(
            &mut MultiCastC::new(16, 4),
            eve,
            topo,
            schedule,
            cfg,
            &mut probe,
            seed,
        ),
        "adv" => go(
            &mut MultiCastAdv::new(16),
            eve,
            topo,
            schedule,
            cfg,
            &mut probe,
            seed,
        ),
        "multihop" => go(
            &mut MultiHopCast::with_config(16, 4, 0.25),
            eve,
            topo,
            schedule,
            cfg,
            &mut probe,
            seed,
        ),
        other => panic!("unknown protocol {other}"),
    };
    (out, tel, probe)
}

/// Gate 1: `.schedule(&WorldSchedule::new())` is byte-identical to not
/// mounting a schedule — outcome, trace, idle spans, telemetry — for every
/// protocol × adversary-model × seed cell.
#[test]
fn empty_schedule_is_byte_identical_to_unscheduled_engine() {
    let empty = WorldSchedule::new();
    for proto in PROTOCOLS {
        for eve in EVES {
            for seed in 1..=3u64 {
                let bare = run_cell(proto, eve, None, seed);
                let scheduled = run_cell(proto, eve, Some(&empty), seed);
                assert_eq!(
                    bare, scheduled,
                    "empty schedule perturbed the run: {proto} / {eve} / seed {seed}"
                );
            }
        }
    }
}

/// A schedule exercising the crash / partition / heal / recover /
/// link-loss families at small slots, so even fast-completing protocols
/// reach several events.
fn nemesis_schedule() -> WorldSchedule {
    WorldSchedule::new()
        .at(
            64,
            WorldEvent::CrashNodes {
                nodes: vec![12, 13],
            },
        )
        .at(
            128,
            WorldEvent::Partition {
                groups: vec![(0..8).collect()],
            },
        )
        .at(256, WorldEvent::Heal)
        .at(
            512,
            WorldEvent::RecoverNodes {
                nodes: vec![12, 13],
            },
        )
        .at(1_024, WorldEvent::SetLinkLoss { p: 0.1 })
        .at(2_048, WorldEvent::SetLinkLoss { p: 0.0 })
}

/// Gate 2: every applied event lands at or after its scheduled slot and
/// never strictly inside a fast-forwarded idle span — the engine clips
/// spans at pending events, so event application is always a span
/// boundary.
#[test]
fn every_applied_event_lands_on_a_span_boundary() {
    let sched = nemesis_schedule();
    for proto in PROTOCOLS {
        for eve in EVES {
            for seed in 1..=3u64 {
                let (out, _, probe) = run_cell(proto, eve, Some(&sched), seed);
                assert!(
                    !out.timeline.is_empty(),
                    "{proto} / {eve} / seed {seed}: no event applied before the run ended"
                );
                assert!(out.timeline.len() <= sched.len());
                for marker in &out.timeline {
                    assert!(
                        marker.applied_at >= marker.scheduled_at,
                        "{proto} / {eve} / seed {seed}: {marker:?} applied early"
                    );
                    for &(start, len) in &probe.spans {
                        assert!(
                            !(start < marker.applied_at && marker.applied_at < start + len),
                            "{proto} / {eve} / seed {seed}: {marker:?} applied strictly \
                             inside the idle span [{start}, {})",
                            start + len
                        );
                    }
                }
                // Markers keep spec order (prefix property).
                for pair in out.timeline.windows(2) {
                    assert!(pair[0].applied_at <= pair[1].applied_at);
                }
            }
        }
    }
}

/// Gate 3: no-op events (heal with no partition, recover with no crash,
/// link loss set to 0) may only add timeline markers — every other
/// outcome field matches the unscheduled run, even though the schedule
/// forces span clipping and the per-listener delivery path.
#[test]
fn noop_events_only_add_timeline_markers() {
    let noop = WorldSchedule::new()
        .at(64, WorldEvent::Heal)
        .at(
            128,
            WorldEvent::RecoverNodes {
                nodes: vec![12, 13],
            },
        )
        .at(256, WorldEvent::SetLinkLoss { p: 0.0 })
        .at(512, WorldEvent::Heal);
    for proto in PROTOCOLS {
        for eve in EVES {
            for seed in 1..=3u64 {
                let (bare, _, _) = run_cell(proto, eve, None, seed);
                let (mut scheduled, _, _) = run_cell(proto, eve, Some(&noop), seed);
                for marker in &scheduled.timeline {
                    assert!(marker.applied_at >= marker.scheduled_at);
                }
                scheduled.timeline.clear();
                assert_eq!(
                    bare, scheduled,
                    "no-op events changed the outcome: {proto} / {eve} / seed {seed}"
                );
            }
        }
    }
}
