//! Lemma-level integration tests: the paper's supporting lemmas, each as a
//! statistical check on full protocol executions.

use rcb::adversary::UniformFraction;
use rcb::core::{AdvParams, MultiCastAdv, MultiCastCore};
use rcb::harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};
use rcb::sim::{EngineConfig, RecordingObserver, Simulation};

/// Lemma 4.1: if for at least ten percent of an iteration's slots Eve jams
/// at most ninety percent of the channels, the epidemic completes within
/// that iteration. We give Eve *more* than that — 90% of channels in every
/// slot — and the first MultiCastCore iteration must still inform everyone
/// (it cannot *halt* anyone: the noise keeps everyone awake).
#[test]
fn lemma_4_1_epidemic_completes_inside_one_iteration_under_90pct_jam() {
    let n = 64u64;
    let t = u64::MAX / 2;
    for seed in 0..5 {
        let mut proto = MultiCastCore::new(n, 100_000_000);
        let r = proto.iteration_len();
        let mut eve = UniformFraction::new(t, 0.9, seed + 1);
        let mut trace = RecordingObserver::new();
        // One iteration plus slack; stop as soon as everyone knows m.
        let cfg = EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(2 * r)
        };
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(cfg)
            .observer(&mut trace)
            .run(seed);
        assert!(out.all_informed, "seed {seed}: epidemic blocked");
        let done = out.all_informed_at.expect("informed");
        // The lemma's premise gives Eve only 90% of channels on 90% of
        // slots; this test jams 90% of *every* slot, where the measured
        // completion distribution peaks right at one iteration (worst of 30
        // seeds: 1.07·R). Allow that stress overshoot.
        assert!(
            done < r + r / 4,
            "seed {seed}: epidemic took {done} slots, more than ~one iteration ({r})"
        );
        // Growth curve is monotone (informed set never shrinks).
        for w in trace.growth.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }
}

/// Lemma 4.3 (and the Theorem 4.4 wrap-up): if Eve jams at most twenty
/// percent of channels for at least eighty percent of the slots of an
/// iteration, every active node halts at its end. A 15%-of-the-band jammer
/// with an enormous budget must not keep MultiCastCore awake past its first
/// iteration.
#[test]
fn lemma_4_3_weak_jamming_cannot_prevent_halting() {
    let n = 64u64;
    for seed in 0..5 {
        let mut proto = MultiCastCore::new(n, 10_000_000);
        let r = proto.iteration_len();
        let mut eve = UniformFraction::new(u64::MAX / 2, 0.15, seed + 11);
        let out = Simulation::new(&mut proto)
            .adversary(&mut eve)
            .config(EngineConfig::capped(10 * r))
            .run(seed);
        assert!(
            out.all_halted,
            "seed {seed}: weak jamming should not block halting"
        );
        assert_eq!(
            out.last_halt().expect("halted") + 1,
            r,
            "seed {seed}: halting should happen at the first boundary"
        );
        assert!(out.all_informed);
        assert_eq!(out.safety_violations(), 0);
    }
}

/// The two-stage termination invariants of Section 6 (Lemmas 6.4/6.5):
/// (a) when a helper exists, every node is informed; (b) when any node has
/// halted, every node reached helper status. Verified on completed runs:
/// every node must hold a recorded helper phase and have been informed.
#[test]
fn lemmas_6_4_6_5_two_stage_termination_invariants() {
    let n = 16u64;
    let params = AdvParams {
        alpha: 0.24,
        ..AdvParams::default()
    };
    let specs: Vec<TrialSpec> = (0..3u64)
        .map(|s| {
            TrialSpec::new(
                ProtocolKind::Adv { n, params },
                AdversaryKind::Uniform {
                    t: 100_000,
                    frac: 0.4,
                },
                5_100 + s,
            )
        })
        .collect();
    for r in run_trials(&specs, 0) {
        assert!(r.completed, "seed {}", r.seed);
        // (b): all nodes halted ⇒ all reached helper first.
        assert_eq!(r.helper_phases.len(), n as usize, "seed {}", r.seed);
        // (a): helpers existed ⇒ everyone informed (and nobody halted blind).
        assert!(r.all_informed);
        assert_eq!(r.safety_violations, 0);
    }
}

/// Lemma 6.9 direction: once Eve's budget is spent, helpers wind down and
/// halt within a bounded number of epochs — the run must terminate not long
/// after a finite-budget jammer goes quiet, rather than drift on.
#[test]
fn adv_terminates_soon_after_eve_is_bankrupt() {
    let n = 16u64;
    let params = AdvParams {
        alpha: 0.24,
        ..AdvParams::default()
    };
    // Baseline: silent run length.
    let silent = run_trials(
        &[TrialSpec::new(
            ProtocolKind::Adv { n, params },
            AdversaryKind::Silent,
            77,
        )],
        0,
    );
    let baseline = silent[0].completion_time();
    // Jammed run with a budget that dies early (epoch ~8-9 era).
    let jammed = run_trials(
        &[TrialSpec::new(
            ProtocolKind::Adv { n, params },
            AdversaryKind::Uniform {
                t: 50_000,
                frac: 0.5,
            },
            77,
        )],
        0,
    );
    let jammed_time = jammed[0].completion_time();
    assert!(jammed[0].completed);
    // A 50k budget is spent long before the ~4.5M-slot baseline completes;
    // the run must not stretch far past the baseline epoch structure (one
    // extra epoch ≈ 1.6x at alpha = 0.24).
    assert!(
        jammed_time <= baseline * 2,
        "bankrupt Eve should not stretch the run: {jammed_time} vs baseline {baseline}"
    );
}

/// The Section 7 cut-off consistency: MultiCastAdv(C) with C ≥ n/2 has the
/// same good phase as plain MultiCastAdv (Theorem 7.2's C > n/2 case —
/// "MultiCastAdv(C) provides the same guarantee as MultiCastAdv").
#[test]
fn adv_with_loose_channel_cap_behaves_like_uncapped() {
    let n = 16u64;
    let alpha = 0.24;
    let uncapped = AdvParams {
        alpha,
        ..AdvParams::default()
    };
    // C = 32 > n/2 = 8: the cap never binds before phase lg n − 1.
    let capped = AdvParams {
        alpha,
        channel_cap: Some(32),
        ..AdvParams::default()
    };
    let mut p1 = MultiCastAdv::with_params(n, uncapped);
    let mut p2 = MultiCastAdv::with_params(n, capped);
    let o1 = Simulation::new(&mut p1)
        .adversary(&mut rcb::sim::NoAdversary)
        .run(9);
    let o2 = Simulation::new(&mut p2)
        .adversary(&mut rcb::sim::NoAdversary)
        .run(9);
    assert!(o1.all_halted && o2.all_halted);
    for (a, b) in o1.nodes.iter().zip(&o2.nodes) {
        assert_eq!(
            a.extra.get("helper_phase"),
            b.extra.get("helper_phase"),
            "helper phases must agree when the cap is loose"
        );
    }
    // The loose cap only prunes phases above lg C = 5 > lg n − 1 = 3, which
    // exist only in epochs i > 6; runtimes stay close (identical schedules
    // through the epochs that matter for termination).
    let ratio = o1.slots as f64 / o2.slots as f64;
    assert!((0.5..2.0).contains(&ratio), "runtime ratio {ratio}");
}
