//! Idle fast-forward equivalence: the engine's span-batched fast path must
//! be **byte-identical** to the slot-by-slot reference path.
//!
//! Two layers, mirroring the Sparse/DensePerNode cross-validation contract:
//!
//! * An outcome matrix over all five paper protocols × the span-exact
//!   adversaries: `fast_forward: true` vs `false` must produce equal
//!   [`RunOutcome`]s field-for-field at several seeds.
//! * A seeded randomized interleaving check of `jam_span` against per-slot
//!   `jam` charging (including bankruptcy mid-span) for every span-exact
//!   strategy.
//!
//! `GilbertElliott` is the one distribution-only strategy; its statistical
//! cross-validation lives in `rcb-adversary`'s unit tests, and here we only
//! smoke-test that fast-forwarded runs against it stay safe.

use rcb::adversary::{
    FullBandBurst, GilbertElliott, JamSpan, PeriodicPulse, RandomSubset, Silent, SpanJammer, Sweep,
    UniformFraction,
};
use rcb::core::{AdvParams, MultiCast, MultiCastAdv, MultiCastC, MultiCastCore};
use rcb::sim::{Adversary, EngineConfig, Protocol, RunOutcome, Simulation, Xoshiro256};

/// Run protocol `p` (by index) against adversary `a` (by index) in the
/// given engine mode. Indices rather than closures so each combination
/// constructs fresh, identically-seeded instances.
fn run_combo(proto: usize, adv: usize, seed: u64, fast_forward: bool) -> RunOutcome {
    let cfg = EngineConfig {
        fast_forward,
        ..EngineConfig::capped(60_000)
    };
    let t = 30_000u64;
    let mut adversary: Box<dyn Adversary> = match adv {
        0 => Box::new(Silent),
        1 => Box::new(UniformFraction::new(t, 0.6, seed + 100)),
        2 => Box::new(FullBandBurst::new(t, 500)),
        3 => Box::new(PeriodicPulse::new(t, 37, 11, 0.5, seed + 101)),
        4 => Box::new(Sweep::new(t, 3, 2)),
        5 => Box::new(RandomSubset::new(t, 3, seed + 102)),
        6 => Box::new(SpanJammer::from_spans(
            t,
            (0..60)
                .map(|k| JamSpan::new(k * 1000, k * 1000 + 250, 0.8))
                .collect(),
            seed + 103,
        )),
        _ => unreachable!(),
    };
    fn go<P: Protocol>(
        mut p: P,
        a: &mut dyn Adversary,
        seed: u64,
        cfg: &EngineConfig,
    ) -> RunOutcome {
        Simulation::new(&mut p)
            .adversary(a)
            .config(*(cfg))
            .run(seed)
    }
    let n = 16u64;
    match proto {
        0 => go(MultiCastCore::new(n, t), adversary.as_mut(), seed, &cfg),
        1 => go(MultiCast::new(n), adversary.as_mut(), seed, &cfg),
        2 => go(MultiCastC::new(n, 4), adversary.as_mut(), seed, &cfg),
        3 => go(MultiCastAdv::new(n), adversary.as_mut(), seed, &cfg),
        4 => go(
            MultiCastAdv::with_channel_cap(n, 4, AdvParams::default()),
            adversary.as_mut(),
            seed,
            &cfg,
        ),
        _ => unreachable!(),
    }
}

/// The acceptance matrix: {all five protocols} × {span-exact adversaries}
/// × three seeds, fast path vs reference path, field-for-field equality.
#[test]
fn fast_forward_outcome_equals_reference_across_protocols_and_adversaries() {
    const PROTOS: [&str; 5] = [
        "MultiCastCore",
        "MultiCast",
        "MultiCast(C)",
        "MultiCastAdv",
        "MultiCastAdv(C)",
    ];
    const ADVS: [&str; 7] = [
        "silent",
        "uniform-fraction",
        "full-band-burst",
        "periodic-pulse",
        "sweep",
        "random-subset",
        "span-targeted",
    ];
    for (pi, pname) in PROTOS.iter().enumerate() {
        for (ai, aname) in ADVS.iter().enumerate() {
            for seed in [11u64, 22, 33] {
                let fast = run_combo(pi, ai, seed, true);
                let slow = run_combo(pi, ai, seed, false);
                assert_eq!(
                    fast, slow,
                    "{pname} vs {aname} at seed {seed}: fast-forward diverged"
                );
            }
        }
    }
}

/// Fast-forwarded complete runs (no slot cap pressure) stay equal too —
/// halting, informed times, and energy ledgers all line up.
#[test]
fn fast_forward_preserves_complete_runs() {
    for seed in [1u64, 2, 3] {
        let run_mode = |fast_forward: bool| {
            let mut proto = MultiCast::new(16);
            let mut eve = UniformFraction::new(400_000, 0.9, 7);
            let cfg = EngineConfig {
                fast_forward,
                ..EngineConfig::default()
            };
            Simulation::new(&mut proto)
                .adversary(&mut eve)
                .config(cfg)
                .run(seed)
        };
        let fast = run_mode(true);
        assert_eq!(fast, run_mode(false), "seed {seed}");
        assert!(
            fast.all_halted && fast.all_informed,
            "seed {seed}: {fast:?}"
        );
        assert_eq!(fast.safety_violations(), 0);
        assert!(fast.eve_spent > 0);
    }
}

/// Randomized `jam_span` vs per-slot charging for every span-exact
/// adversary: alternate per-slot chunks (jam sets compared one by one) with
/// batched chunks (charges compared), on one shared budget ledger.
#[test]
fn jam_span_equals_per_slot_charging_under_interleaving() {
    type Builder = fn(u64, u64) -> Box<dyn Adversary>;
    let builders: [(&str, Builder); 7] = [
        ("silent", |_, _| Box::new(Silent)),
        ("uniform", |t, s| Box::new(UniformFraction::new(t, 0.45, s))),
        ("burst", |t, _| Box::new(FullBandBurst::new(t, 700))),
        ("pulse", |t, s| {
            Box::new(PeriodicPulse::new(t, 53, 17, 0.7, s))
        }),
        ("sweep", |t, _| Box::new(Sweep::new(t, 4, 3))),
        ("subset", |t, s| Box::new(RandomSubset::new(t, 5, s))),
        ("spans", |t, s| {
            Box::new(SpanJammer::from_spans(
                t,
                (0..200)
                    .map(|k| JamSpan::new(k * 97, k * 97 + 40, 0.6))
                    .collect(),
                s,
            ))
        }),
    ];
    for (name, build) in builders {
        for seed in [5u64, 6, 7, 8] {
            // Budgets chosen to hit bankruptcy mid-exercise at some seeds
            // and never at others.
            for budget in [1_500u64, u64::MAX / 2] {
                let channels = 8 + (seed % 3) * 4;
                let mut per_slot = build(budget, 900 + seed);
                let mut batched = build(budget, 900 + seed);
                let mut rng = Xoshiro256::seeded(seed * 31 + 1);
                let mut remaining = budget;
                let mut slot = 0u64;
                'chunks: for chunk in 0..40 {
                    let len = 1 + rng.gen_range(120);
                    if chunk % 2 == 0 {
                        // Both per-slot: jam sets must agree exactly.
                        for s in slot..slot + len {
                            if remaining == 0 {
                                break 'chunks;
                            }
                            let ja = per_slot.jam(s, channels);
                            let jb = batched.jam(s, channels);
                            assert_eq!(ja, jb, "{name} seed {seed} slot {s}");
                            remaining -= ja.count(channels).min(remaining);
                        }
                    } else {
                        // Reference per-slot charging (the engine's budget
                        // rule) vs one jam_span call.
                        if remaining == 0 {
                            break 'chunks;
                        }
                        let mut ref_spent = 0u64;
                        let mut ref_remaining = remaining;
                        for s in slot..slot + len {
                            if ref_remaining == 0 {
                                break;
                            }
                            let take = per_slot.jam(s, channels).count(channels).min(ref_remaining);
                            ref_remaining -= take;
                            ref_spent += take;
                        }
                        let charge = batched.jam_span(slot, len, channels, remaining);
                        assert_eq!(
                            charge.spent,
                            ref_spent,
                            "{name} seed {seed} span [{slot}, {})",
                            slot + len
                        );
                        remaining -= charge.spent;
                    }
                    slot += len;
                }
            }
        }
    }
}

/// Gilbert–Elliott is distribution-equivalent only; fast-forwarded runs
/// against it must still be safe and budget-sound.
#[test]
fn gilbert_elliott_fast_forward_smoke() {
    for seed in [4u64, 5] {
        let mut proto = MultiCast::new(16);
        let mut eve = GilbertElliott::new(20_000, 0.05, 0.2, 0.6, 9);
        let out = Simulation::new(&mut proto).adversary(&mut eve).run(seed);
        assert!(out.all_halted && out.all_informed, "seed {seed}: {out:?}");
        assert_eq!(out.safety_violations(), 0);
        assert!(out.eve_spent <= 20_000);
    }
}
