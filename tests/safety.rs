//! Safety: no node ever halts without knowing the message.
//!
//! This is the property behind Lemmas 4.2, 5.2 and 6.4/6.5 of the paper:
//! across every protocol and every adversary strategy, a node that decides
//! to terminate must already be informed, w.h.p. We sweep the full protocol
//! × adversary matrix over a batch of seeds and require zero violations.

use rcb::harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};

fn protocols(n: u64, t: u64) -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::Core {
            n,
            t,
            params: Default::default(),
        },
        ProtocolKind::MultiCast {
            n,
            params: Default::default(),
        },
        ProtocolKind::MultiCastC {
            n,
            c: 4,
            params: Default::default(),
        },
        ProtocolKind::SingleChannel {
            n,
            params: Default::default(),
        },
    ]
}

fn adversaries(t: u64) -> Vec<AdversaryKind> {
    vec![
        AdversaryKind::Silent,
        AdversaryKind::Uniform { t, frac: 0.5 },
        AdversaryKind::Uniform { t, frac: 0.95 },
        AdversaryKind::Burst { t, start: 0 },
        AdversaryKind::Pulse {
            t,
            period: 128,
            duty: 64,
            frac: 0.9,
        },
        AdversaryKind::Sweep {
            t,
            width: 10,
            step: 1,
        },
        AdversaryKind::RandomSubset { t, k: 10 },
        AdversaryKind::GilbertElliott {
            t,
            p_gb: 0.05,
            p_bg: 0.05,
            frac: 0.9,
        },
    ]
}

#[test]
fn no_protocol_halts_uninformed_under_any_adversary() {
    let n = 32;
    let t = 100_000;
    let mut specs = Vec::new();
    for proto in protocols(n, t) {
        for adv in adversaries(t) {
            for seed in 0..3u64 {
                specs.push(TrialSpec::new(proto.clone(), adv.clone(), 100 + seed));
            }
        }
    }
    let results = run_trials(&specs, 0);
    for r in &results {
        assert_eq!(
            r.safety_violations, 0,
            "{} vs {} (seed {}): node halted uninformed",
            r.protocol, r.adversary, r.seed
        );
        assert!(
            r.completed,
            "{} vs {} (seed {}): did not complete within the slot cap",
            r.protocol, r.adversary, r.seed
        );
        assert!(
            r.all_informed,
            "{} vs {} (seed {}): finished with uninformed nodes",
            r.protocol, r.adversary, r.seed
        );
    }
}

#[test]
fn multicast_adv_is_safe_and_identifies_n() {
    // MultiCastAdv is expensive, so it gets its own smaller matrix.
    // Beyond safety, check the E9 property: every helper promotion happened
    // in phase j = lg n − 1 (the protocol's implicit estimate of n).
    let n = 16u64;
    let t = 50_000;
    let params = rcb::core::AdvParams {
        alpha: 0.24,
        ..Default::default()
    };
    let mut specs = Vec::new();
    for adv in [
        AdversaryKind::Silent,
        AdversaryKind::Uniform { t, frac: 0.5 },
        AdversaryKind::Burst { t, start: 0 },
    ] {
        for seed in 0..2u64 {
            specs.push(TrialSpec::new(
                ProtocolKind::Adv { n, params },
                adv.clone(),
                400 + seed,
            ));
        }
    }
    let results = run_trials(&specs, 0);
    let want_phase = 3; // lg 16 − 1
    for r in &results {
        assert_eq!(
            r.safety_violations, 0,
            "adv vs {} seed {}",
            r.adversary, r.seed
        );
        assert!(
            r.completed,
            "adv vs {} seed {} incomplete",
            r.adversary, r.seed
        );
        assert!(r.all_informed);
        assert_eq!(
            r.helper_phases.len(),
            n as usize,
            "every node became a helper"
        );
        for &(i, j) in &r.helper_phases {
            assert_eq!(
                j, want_phase,
                "helper at phase {j}, epoch {i} (want {want_phase})"
            );
            assert!(i > 4, "helpers cannot appear before epoch lg n");
        }
    }
}
