//! Resource competitiveness (Definition 3.1): max node cost must be
//! sub-linear in Eve's spend, with the `√T`-shaped growth of Theorem 5.4.

use rcb::harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};
use rcb::stats::fit_power_law;

/// As Eve's budget quadruples, the node-to-Eve cost ratio must fall — the
/// "bankrupt the jammer" property.
#[test]
fn node_to_eve_cost_ratio_shrinks_with_budget() {
    let n = 16u64;
    let budgets = [400_000u64, 1_600_000, 6_400_000];
    let specs: Vec<TrialSpec> = budgets
        .iter()
        .map(|&t| {
            TrialSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.9 },
                4242 + t,
            )
        })
        .collect();
    let results = run_trials(&specs, 0);
    let mut prev_ratio = f64::MAX;
    for r in &results {
        assert!(r.completed && r.all_informed, "budget {}", r.budget);
        let ratio = r.max_cost as f64 / r.eve_spent.max(1) as f64;
        assert!(
            ratio < 0.05,
            "budget {}: node cost {} is not << Eve's spend {}",
            r.budget,
            r.max_cost,
            r.eve_spent
        );
        assert!(
            ratio < prev_ratio,
            "budget {}: competitive ratio must shrink as T grows",
            r.budget
        );
        prev_ratio = ratio;
    }
}

/// The scaling exponent of max node cost vs T must sit near 1/2
/// (Theorem 5.4's `√(T/n)·√lg T·lg n`; the polylog factor pushes the
/// measured exponent slightly above 0.5).
#[test]
fn multicast_cost_scales_like_sqrt_t() {
    let n = 16u64;
    let budgets = [400_000u64, 1_600_000, 6_400_000, 35_000_000];
    let mut specs = Vec::new();
    for &t in &budgets {
        for seed in 0..2u64 {
            specs.push(TrialSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.9 },
                7_000 + t + seed,
            ));
        }
    }
    let results = run_trials(&specs, 0);
    let points: Vec<(f64, f64)> = budgets
        .iter()
        .map(|&t| {
            let batch: Vec<_> = results.iter().filter(|r| r.budget == t).collect();
            let mean = batch.iter().map(|r| r.max_cost).sum::<u64>() as f64 / batch.len() as f64;
            (t as f64, mean)
        })
        .collect();
    let (_, beta, r2) = fit_power_law(&points);
    assert!(
        (0.35..=0.75).contains(&beta),
        "cost exponent {beta:.2} (r²={r2:.2}) is not √T-shaped: {points:?}"
    );
}

/// Time, by contrast, is linear in T (Theorem 5.4: `O(T/n + lg²n)`).
#[test]
fn multicast_time_scales_linearly_in_t() {
    let n = 16u64;
    let budgets = [400_000u64, 1_600_000, 6_400_000, 35_000_000];
    let specs: Vec<TrialSpec> = budgets
        .iter()
        .map(|&t| {
            TrialSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.9 },
                9_000 + t,
            )
        })
        .collect();
    let results = run_trials(&specs, 0);
    let points: Vec<(f64, f64)> = results
        .iter()
        .map(|r| (r.budget as f64, r.completion_time() as f64))
        .collect();
    let (_, beta, r2) = fit_power_law(&points);
    assert!(
        (0.75..=1.3).contains(&beta),
        "time exponent {beta:.2} (r²={r2:.2}) is not linear: {points:?}"
    );
}

/// Eve never spends more than her budget, under any strategy.
#[test]
fn eve_budget_is_always_enforced() {
    let n = 32u64;
    let t = 12_345u64;
    let adversaries = vec![
        AdversaryKind::Uniform { t, frac: 1.0 },
        AdversaryKind::Burst { t, start: 3 },
        AdversaryKind::Sweep {
            t,
            width: 100,
            step: 7,
        },
        AdversaryKind::Pulse {
            t,
            period: 10,
            duty: 10,
            frac: 1.0,
        },
        AdversaryKind::GilbertElliott {
            t,
            p_gb: 1.0,
            p_bg: 0.0,
            frac: 1.0,
        },
    ];
    let specs: Vec<TrialSpec> = adversaries
        .into_iter()
        .map(|adv| {
            TrialSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: Default::default(),
                },
                adv,
                5,
            )
        })
        .collect();
    for r in run_trials(&specs, 0) {
        assert!(
            r.eve_spent <= t,
            "{}: Eve spent {} over budget {t}",
            r.adversary,
            r.eve_spent
        );
        // These maximal strategies should exhaust the budget exactly.
        assert_eq!(r.eve_spent, t, "{}: expected full spend", r.adversary);
    }
}
