//! Property-based invariants over randomized configurations.
//!
//! These check *structural* engine/protocol invariants that must hold for
//! every parameter combination and seed — not statistical performance
//! claims (those live in `competitive.rs` and the experiment harness).
//!
//! Originally written against the `proptest` crate; this build environment
//! has no crates.io access, so the same properties run as deterministic
//! seeded randomized tests driven by the simulator's own RNG. Case counts
//! match the original configs (48 per property).

use rcb::core::{CoreParams, McParams, MultiCast, MultiCastC, MultiCastCore};
use rcb::harness::{run_trial, AdversaryKind, ProtocolKind, TrialSpec};
use rcb::sim::{run, EngineConfig, NoAdversary, Xoshiro256};

const CASES: u64 = 48;

/// Small, fast parameter spaces: tiny iteration constants are fine because
/// the invariants under test do not depend on epidemic completion.
fn small_core(n: u64, t: u64) -> MultiCastCore {
    MultiCastCore::with_params(
        n,
        t,
        CoreParams {
            a: 64.0,
            ..CoreParams::default()
        },
    )
}

fn small_mc_params() -> McParams {
    McParams {
        a: 4.0,
        ..McParams::default()
    }
}

/// The engine's energy ledger balances: summed per-node listen/broadcast
/// costs equal the aggregate totals, and every listen produced exactly
/// one feedback.
#[test]
fn energy_ledger_balances() {
    let mut draw = Xoshiro256::seeded(0x1E41);
    for _ in 0..CASES {
        let n = 1u64 << (2 + draw.gen_range(4)); // n = 4..32
        let seed = draw.gen_range(5000);
        let cap = 500 + draw.gen_range(4_500);
        let mut proto = small_core(n, 1000);
        let out = run(
            &mut proto,
            &mut NoAdversary,
            seed,
            &EngineConfig::capped(cap),
        );
        let listens: u64 = out.nodes.iter().map(|x| x.listen_cost).sum();
        let bcasts: u64 = out.nodes.iter().map(|x| x.broadcast_cost).sum();
        assert_eq!(listens, out.totals.listens);
        assert_eq!(bcasts, out.totals.broadcasts);
        let heard = out.totals.heard_silence + out.totals.heard_message + out.totals.heard_noise;
        assert_eq!(heard, out.totals.listens);
    }
}

/// Same spec + same seed ⇒ bit-identical outcome.
#[test]
fn runs_are_deterministic() {
    let mut draw = Xoshiro256::seeded(0x1E42);
    for _ in 0..CASES {
        let n = 1u64 << (2 + draw.gen_range(4));
        let seed = draw.gen_range(5000);
        let run_once = |s: u64| {
            let mut proto = MultiCast::with_params(n, small_mc_params());
            let out = run(
                &mut proto,
                &mut NoAdversary,
                s,
                &EngineConfig::capped(20_000),
            );
            (out.slots, out.max_cost(), out.totals)
        };
        assert_eq!(run_once(seed), run_once(seed));
    }
}

/// Eve can never spend more than her budget, for any uniform-strategy
/// budget/fraction combination.
#[test]
fn adversary_budget_invariant() {
    let mut draw = Xoshiro256::seeded(0x1E43);
    for _ in 0..CASES {
        let n = 1u64 << (2 + draw.gen_range(4));
        let t = draw.gen_range(50_000);
        let frac = draw.next_f64();
        let seed = draw.gen_range(1000);
        let spec = TrialSpec::new(
            ProtocolKind::Core {
                n,
                t,
                params: CoreParams {
                    a: 64.0,
                    ..CoreParams::default()
                },
            },
            AdversaryKind::Uniform { t, frac },
            seed,
        )
        .with_max_slots(20_000);
        let r = run_trial(&spec);
        assert!(r.eve_spent <= t, "spent {} of budget {}", r.eve_spent, t);
    }
}

/// The source never becomes uninformed, and `informed_at` is always 0
/// for it; every node's halt slot (if any) is within the executed range.
#[test]
fn outcome_fields_are_consistent() {
    let mut draw = Xoshiro256::seeded(0x1E44);
    for _ in 0..CASES {
        let n = 1u64 << (2 + draw.gen_range(4));
        let seed = draw.gen_range(5000);
        let mut proto = small_core(n, 500);
        let out = run(
            &mut proto,
            &mut NoAdversary,
            seed,
            &EngineConfig::capped(30_000),
        );
        assert_eq!(out.nodes[0].informed_at, Some(0));
        for node in &out.nodes {
            if let Some(h) = node.halted_at {
                assert!(h < out.slots);
                // A halted node's informed status was captured at halt time.
                assert_eq!(node.halted_informed, node.informed_at.is_some());
            }
            if let Some(i) = node.informed_at {
                assert!(i < out.slots.max(1));
            }
            assert_eq!(node.cost(), node.listen_cost + node.broadcast_cost);
        }
        // informed_count never exceeds n and includes the source.
        assert!(out.informed_count() >= 1);
        assert!(out.informed_count() <= n as usize);
    }
}

/// MultiCast(C) round geometry: executed slots are always a whole number
/// of rounds, and per-node cost can never exceed the number of rounds
/// (one action per round max).
#[test]
fn round_geometry_invariants() {
    let mut draw = Xoshiro256::seeded(0x1E45);
    for _ in 0..CASES {
        let n = 1u64 << (3 + draw.gen_range(3)); // n = 8..32
        let c = (1u64 << draw.gen_range(3)).min(n / 2);
        let seed = draw.gen_range(2000);
        let mut proto = MultiCastC::with_params(n, c, small_mc_params());
        let round_len = proto.round_len();
        let cap = 50_000 - (50_000 % round_len.max(1));
        let out = run(
            &mut proto,
            &mut NoAdversary,
            seed,
            &EngineConfig::capped(cap),
        );
        let rounds = out.slots / round_len;
        assert_eq!(out.slots % round_len, 0, "partial rounds executed");
        for node in &out.nodes {
            assert!(
                node.cost() <= rounds,
                "node cost {} exceeds {} rounds",
                node.cost(),
                rounds
            );
        }
    }
}

/// Non-proptest sanity anchor for the randomized file: invariants also hold
/// on the default (production-size) parameters.
#[test]
fn ledger_balances_on_default_params() {
    let mut proto = MultiCastCore::new(32, 1_000);
    let out = run(&mut proto, &mut NoAdversary, 99, &EngineConfig::default());
    assert!(out.all_halted);
    let listens: u64 = out.nodes.iter().map(|x| x.listen_cost).sum();
    assert_eq!(listens, out.totals.listens);
}
