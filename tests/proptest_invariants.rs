//! Property-based invariants over randomized configurations.
//!
//! These check *structural* engine/protocol invariants that must hold for
//! every parameter combination and seed — not statistical performance
//! claims (those live in `competitive.rs` and the experiment harness).
//!
//! Originally written against the `proptest` crate; this build environment
//! has no crates.io access, so the same properties run as deterministic
//! seeded randomized tests driven by the simulator's own RNG. Case counts
//! match the original configs (48 per property).

use rcb::core::{CoreParams, McParams, MultiCast, MultiCastC, MultiCastCore, MultiHopCast};
use rcb::harness::{run_trial, AdversaryKind, ProtocolKind, TrialSpec};
use rcb::sim::{
    EngineConfig, RecordingObserver, Simulation, Topology, TopologyView, TraceEvent, Xoshiro256,
};

const CASES: u64 = 48;

/// Small, fast parameter spaces: tiny iteration constants are fine because
/// the invariants under test do not depend on epidemic completion.
fn small_core(n: u64, t: u64) -> MultiCastCore {
    MultiCastCore::with_params(
        n,
        t,
        CoreParams {
            a: 64.0,
            ..CoreParams::default()
        },
    )
}

fn small_mc_params() -> McParams {
    McParams {
        a: 4.0,
        ..McParams::default()
    }
}

/// The engine's energy ledger balances: summed per-node listen/broadcast
/// costs equal the aggregate totals, and every listen produced exactly
/// one feedback.
#[test]
fn energy_ledger_balances() {
    let mut draw = Xoshiro256::seeded(0x1E41);
    for _ in 0..CASES {
        let n = 1u64 << (2 + draw.gen_range(4)); // n = 4..32
        let seed = draw.gen_range(5000);
        let cap = 500 + draw.gen_range(4_500);
        let mut proto = small_core(n, 1000);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(cap))
            .run(seed);
        let listens: u64 = out.nodes.iter().map(|x| x.listen_cost).sum();
        let bcasts: u64 = out.nodes.iter().map(|x| x.broadcast_cost).sum();
        assert_eq!(listens, out.totals.listens);
        assert_eq!(bcasts, out.totals.broadcasts);
        let heard = out.totals.heard_silence + out.totals.heard_message + out.totals.heard_noise;
        assert_eq!(heard, out.totals.listens);
    }
}

/// Same spec + same seed ⇒ bit-identical outcome.
#[test]
fn runs_are_deterministic() {
    let mut draw = Xoshiro256::seeded(0x1E42);
    for _ in 0..CASES {
        let n = 1u64 << (2 + draw.gen_range(4));
        let seed = draw.gen_range(5000);
        let run_once = |s: u64| {
            let mut proto = MultiCast::with_params(n, small_mc_params());
            let out = Simulation::new(&mut proto)
                .config(EngineConfig::capped(20_000))
                .run(s);
            (out.slots, out.max_cost(), out.totals)
        };
        assert_eq!(run_once(seed), run_once(seed));
    }
}

/// Eve can never spend more than her budget, for any uniform-strategy
/// budget/fraction combination.
#[test]
fn adversary_budget_invariant() {
    let mut draw = Xoshiro256::seeded(0x1E43);
    for _ in 0..CASES {
        let n = 1u64 << (2 + draw.gen_range(4));
        let t = draw.gen_range(50_000);
        let frac = draw.next_f64();
        let seed = draw.gen_range(1000);
        let spec = TrialSpec::new(
            ProtocolKind::Core {
                n,
                t,
                params: CoreParams {
                    a: 64.0,
                    ..CoreParams::default()
                },
            },
            AdversaryKind::Uniform { t, frac },
            seed,
        )
        .with_max_slots(20_000);
        let r = run_trial(&spec);
        assert!(r.eve_spent <= t, "spent {} of budget {}", r.eve_spent, t);
    }
}

/// The source never becomes uninformed, and `informed_at` is always 0
/// for it; every node's halt slot (if any) is within the executed range.
#[test]
fn outcome_fields_are_consistent() {
    let mut draw = Xoshiro256::seeded(0x1E44);
    for _ in 0..CASES {
        let n = 1u64 << (2 + draw.gen_range(4));
        let seed = draw.gen_range(5000);
        let mut proto = small_core(n, 500);
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(30_000))
            .run(seed);
        assert_eq!(out.nodes[0].informed_at, Some(0));
        for node in &out.nodes {
            if let Some(h) = node.halted_at {
                assert!(h < out.slots);
                // A halted node's informed status was captured at halt time.
                assert_eq!(node.halted_informed, node.informed_at.is_some());
            }
            if let Some(i) = node.informed_at {
                assert!(i < out.slots.max(1));
            }
            assert_eq!(node.cost(), node.listen_cost + node.broadcast_cost);
        }
        // informed_count never exceeds n and includes the source.
        assert!(out.informed_count() >= 1);
        assert!(out.informed_count() <= n as usize);
    }
}

/// MultiCast(C) round geometry: executed slots are always a whole number
/// of rounds, and per-node cost can never exceed the number of rounds
/// (one action per round max).
#[test]
fn round_geometry_invariants() {
    let mut draw = Xoshiro256::seeded(0x1E45);
    for _ in 0..CASES {
        let n = 1u64 << (3 + draw.gen_range(3)); // n = 8..32
        let c = (1u64 << draw.gen_range(3)).min(n / 2);
        let seed = draw.gen_range(2000);
        let mut proto = MultiCastC::with_params(n, c, small_mc_params());
        let round_len = proto.round_len();
        let cap = 50_000 - (50_000 % round_len.max(1));
        let out = Simulation::new(&mut proto)
            .config(EngineConfig::capped(cap))
            .run(seed);
        let rounds = out.slots / round_len;
        assert_eq!(out.slots % round_len, 0, "partial rounds executed");
        for node in &out.nodes {
            assert!(
                node.cost() <= rounds,
                "node cost {} exceeds {} rounds",
                node.cost(),
                rounds
            );
        }
    }
}

/// Non-proptest sanity anchor for the randomized file: invariants also hold
/// on the default (production-size) parameters.
#[test]
fn ledger_balances_on_default_params() {
    let mut proto = MultiCastCore::new(32, 1_000);
    let out = Simulation::new(&mut proto).run(99);
    assert!(out.all_halted);
    let listens: u64 = out.nodes.iter().map(|x| x.listen_cost).sum();
    assert_eq!(listens, out.totals.listens);
}

// --- Topology generator invariants -----------------------------------------

/// Random geometric graphs at [`Topology::connectivity_radius`] are
/// connected for every sampled (n, seed): the radius the `multi-hop`
/// scenario family relies on really is above the connectivity threshold.
#[test]
fn random_geometric_connected_at_the_chosen_radius() {
    let mut draw = Xoshiro256::seeded(0x1E46);
    for _ in 0..CASES {
        let n = 8 + draw.gen_range(160) as u32; // n = 8..168
        let seed = draw.gen_range(1 << 40);
        let radius = Topology::connectivity_radius(n);
        let view = TopologyView::build(&Topology::RandomGeometric { radius, seed }, n);
        assert!(
            view.is_connected(),
            "RGG(n={n}, r={radius:.3}, seed={seed}) disconnected"
        );
        assert_eq!(view.reachable_count(), n);
    }
}

/// Grid and line diameters match their closed forms: `rows + cols − 2` for
/// a full grid, `n − 1` for a line — the BFS diameter of the realized
/// adjacency agrees with the formula for every sampled shape.
#[test]
fn grid_and_line_diameters_match_formulas() {
    let mut draw = Xoshiro256::seeded(0x1E47);
    for _ in 0..CASES {
        let rows = 2 + draw.gen_range(6) as u32; // 2..8
        let cols = 2 + draw.gen_range(6) as u32;
        let n = rows * cols;
        let grid = TopologyView::build(&Topology::Grid { cols }, n);
        assert!(grid.is_connected());
        assert_eq!(
            grid.diameter(),
            Some((rows - 1) as u64 + (cols - 1) as u64),
            "grid {rows}x{cols}"
        );

        let line_n = 2 + draw.gen_range(62) as u32; // 2..64
        let line = TopologyView::build(&Topology::Line, line_n);
        assert_eq!(line.diameter(), Some(line_n as u64 - 1), "line n={line_n}");
        assert_eq!(line.base_edge_count(), line_n as usize - 1);
    }
}

/// Dynamic churn preserves the node count and reachable set (both judged
/// on the base graph) and only ever *removes* edges from the base — for
/// every sampled base shape, churn probability, and round.
#[test]
fn dynamic_churn_preserves_nodes_and_subsets_base() {
    let mut draw = Xoshiro256::seeded(0x1E48);
    for _ in 0..CASES {
        let n = 4 + draw.gen_range(28) as u32; // 4..32
        let base = match draw.gen_range(3) {
            0 => Topology::Line,
            1 => Topology::Grid {
                cols: 2 + draw.gen_range(4) as u32,
            },
            _ => Topology::RandomGeometric {
                radius: Topology::connectivity_radius(n),
                seed: draw.gen_range(1 << 40),
            },
        };
        let p_down = draw.next_f64();
        let base_view = TopologyView::build(&base, n);
        let churned = TopologyView::build(
            &Topology::Dynamic {
                base: Box::new(base.clone()),
                p_down,
                seed: draw.gen_range(1 << 40),
            },
            n,
        );
        assert_eq!(churned.num_nodes(), n, "churn must not change node count");
        assert_eq!(
            churned.reachable_count(),
            base_view.reachable_count(),
            "reachability is a base-graph property"
        );
        for round in [0u64, draw.gen_range(1 << 30)] {
            assert!(churned.active_edge_count(round) <= base_view.base_edge_count());
            for u in 0..n {
                for v in u + 1..n {
                    if churned.connected(u, v, round) {
                        assert!(base_view.connected(u, v, 0), "churn invented edge {u}-{v}");
                    }
                }
            }
        }
    }
}

// --- Multi-hop run invariants ----------------------------------------------

/// Over any sampled topology, the informed set is monotone (the growth
/// curve never decreases) and confined to the source's reachable
/// component; when the run completes, it is *exactly* that component.
#[test]
fn multihop_informed_set_is_monotone_and_confined() {
    let mut draw = Xoshiro256::seeded(0x1E49);
    for _ in 0..16 {
        let n = 1u64 << (2 + draw.gen_range(3)); // n = 4..16
        let topo = match draw.gen_range(4) {
            0 => Topology::Line,
            1 => Topology::Grid { cols: 4 },
            // Radius sampled across the connectivity threshold, so both
            // connected and disconnected graphs are exercised.
            2 => Topology::RandomGeometric {
                radius: 0.1 + 0.5 * draw.next_f64(),
                seed: draw.gen_range(1 << 40),
            },
            _ => Topology::Dynamic {
                base: Box::new(Topology::Line),
                p_down: 0.5 * draw.next_f64(),
                seed: draw.gen_range(1 << 40),
            },
        };
        let view = TopologyView::build(&topo, n as u32);
        let seed = draw.gen_range(5_000);
        let mut proto = MultiHopCast::with_config(n, (n / 2).max(2), 0.25);
        let mut obs = RecordingObserver::new();
        let cfg = EngineConfig {
            stop_when_all_informed: true,
            ..EngineConfig::capped(300_000)
        };
        let out = Simulation::new(&mut proto)
            .topology(&topo)
            .config(cfg)
            .observer(&mut obs)
            .run(seed);

        // Monotone growth curve, strictly increasing in informed count.
        for w in obs.growth.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1, "growth not monotone");
        }
        // Confinement: every informed node lies in the reachable component.
        for e in &obs.events {
            if let TraceEvent::Informed { node, .. } = e {
                assert!(
                    view.is_reachable(*node),
                    "unreachable node {node} got informed"
                );
            }
        }
        assert_eq!(out.reachable, view.reachable_count());
        // On completion the informed set is exactly the reachable set.
        if out.all_informed {
            assert_eq!(out.informed_count() as u32, view.reachable_count());
            for node in &out.nodes {
                assert_eq!(node.informed_at.is_some(), view.is_reachable(node.id));
            }
        }
    }
}
