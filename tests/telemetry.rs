//! Engine telemetry invariants over the full fast-forward acceptance
//! matrix ({five paper protocols} × {span-exact adversaries}):
//!
//! * **Slot conservation** — every slot the run covers is either executed
//!   by the slot loop or skipped by the fast-forward path:
//!   `slots_stepped + slots_fast_forwarded == outcome.slots`.
//! * **Jam-budget conservation** — Eve's ledger splits exactly into the
//!   per-slot and span-batched charge paths:
//!   `jam_spent_stepped + jam_spent_spans == outcome.eve_spent`.
//! * **Histogram closure** — the idle-span length histogram accounts for
//!   every span once.
//! * **Fast-forward off ⇒ the span counters are hard zeros** and the slot
//!   loop executes every covered slot.
//! * **Determinism** — telemetry is a pure function of (combo, seed), and
//!   collecting it never perturbs the run itself.
//! * **Observer accounting** — `observer_events` equals the invocation
//!   count a mounted observer actually sees, and mounting one changes
//!   neither the outcome nor the counters.

use rcb::adversary::{
    FullBandBurst, JamSpan, PeriodicPulse, RandomSubset, Silent, SpanJammer, Sweep, UniformFraction,
};
use rcb::core::{AdvParams, MultiCast, MultiCastAdv, MultiCastC, MultiCastCore};
use rcb::sim::{
    Adversary, EngineConfig, EngineTelemetry, NodeId, Observer, Protocol, RunOutcome, Simulation,
    SlotProfile, SlotStats,
};

const PROTOS: [&str; 5] = [
    "MultiCastCore",
    "MultiCast",
    "MultiCast(C)",
    "MultiCastAdv",
    "MultiCastAdv(C)",
];
const ADVS: [&str; 7] = [
    "silent",
    "uniform-fraction",
    "full-band-burst",
    "periodic-pulse",
    "sweep",
    "random-subset",
    "span-targeted",
];

/// Same combo grid as `tests/fast_forward.rs`, but returning the telemetry
/// alongside the outcome, with an optional observer mounted.
fn run_combo(
    proto: usize,
    adv: usize,
    seed: u64,
    fast_forward: bool,
    observer: Option<&mut dyn Observer>,
) -> (RunOutcome, EngineTelemetry) {
    let cfg = EngineConfig {
        fast_forward,
        ..EngineConfig::capped(60_000)
    };
    let t = 30_000u64;
    let mut adversary: Box<dyn Adversary> = match adv {
        0 => Box::new(Silent),
        1 => Box::new(UniformFraction::new(t, 0.6, seed + 100)),
        2 => Box::new(FullBandBurst::new(t, 500)),
        3 => Box::new(PeriodicPulse::new(t, 37, 11, 0.5, seed + 101)),
        4 => Box::new(Sweep::new(t, 3, 2)),
        5 => Box::new(RandomSubset::new(t, 3, seed + 102)),
        6 => Box::new(SpanJammer::from_spans(
            t,
            (0..60)
                .map(|k| JamSpan::new(k * 1000, k * 1000 + 250, 0.8))
                .collect(),
            seed + 103,
        )),
        _ => unreachable!(),
    };
    fn go<P: Protocol>(
        mut p: P,
        a: &mut dyn Adversary,
        seed: u64,
        cfg: &EngineConfig,
        observer: Option<&mut dyn Observer>,
    ) -> (RunOutcome, EngineTelemetry) {
        let sim = Simulation::new(&mut p).adversary(a).config(*cfg);
        match observer {
            Some(obs) => sim.observer(obs).run_with_telemetry(seed),
            None => sim.run_with_telemetry(seed),
        }
    }
    let n = 16u64;
    match proto {
        0 => go(
            MultiCastCore::new(n, t),
            adversary.as_mut(),
            seed,
            &cfg,
            observer,
        ),
        1 => go(MultiCast::new(n), adversary.as_mut(), seed, &cfg, observer),
        2 => go(
            MultiCastC::new(n, 4),
            adversary.as_mut(),
            seed,
            &cfg,
            observer,
        ),
        3 => go(
            MultiCastAdv::new(n),
            adversary.as_mut(),
            seed,
            &cfg,
            observer,
        ),
        4 => go(
            MultiCastAdv::with_channel_cap(n, 4, AdvParams::default()),
            adversary.as_mut(),
            seed,
            &cfg,
            observer,
        ),
        _ => unreachable!(),
    }
}

fn check_invariants(label: &str, out: &RunOutcome, tel: &EngineTelemetry, fast_forward: bool) {
    assert_eq!(
        tel.slots_stepped + tel.slots_fast_forwarded,
        out.slots,
        "{label}: stepped + fast-forwarded must cover every slot"
    );
    assert_eq!(
        tel.jam_spent_stepped + tel.jam_spent_spans,
        out.eve_spent,
        "{label}: jam-budget split must conserve Eve's ledger"
    );
    assert_eq!(
        tel.span_len_hist.iter().sum::<u64>(),
        tel.spans,
        "{label}: histogram must account for every span exactly once"
    );
    if !fast_forward {
        assert_eq!(tel.spans, 0, "{label}: no spans without fast-forward");
        assert_eq!(tel.slots_fast_forwarded, 0, "{label}");
        assert_eq!(tel.jam_spent_spans, 0, "{label}");
        assert_eq!(tel.slots_stepped, out.slots, "{label}");
    }
    // Untimed runs must leave the wall-clock leaves as hard zeros — this is
    // what keeps default artifacts byte-deterministic.
    assert_eq!(
        tel.phases.total(),
        0,
        "{label}: phases timed without opt-in"
    );
}

/// The acceptance matrix: slot conservation, jam-budget conservation, and
/// histogram closure for every protocol × adversary × mode, plus telemetry
/// determinism across repeated identical runs.
#[test]
fn telemetry_invariants_across_protocols_and_adversaries() {
    for (pi, pname) in PROTOS.iter().enumerate() {
        for (ai, aname) in ADVS.iter().enumerate() {
            for seed in [11u64, 22] {
                for ff in [true, false] {
                    let label = format!("{pname} vs {aname} seed {seed} ff={ff}");
                    let (out, tel) = run_combo(pi, ai, seed, ff, None);
                    check_invariants(&label, &out, &tel, ff);
                    let (out2, tel2) = run_combo(pi, ai, seed, ff, None);
                    assert_eq!(out, out2, "{label}: outcome not deterministic");
                    assert_eq!(tel, tel2, "{label}: telemetry not deterministic");
                }
            }
        }
    }
}

/// Counts every Observer invocation, mirroring the engine's internal
/// accounting for `EngineTelemetry::observer_events`.
#[derive(Default)]
struct TallyObserver {
    calls: u64,
}

impl Observer for TallyObserver {
    fn on_informed(&mut self, _: NodeId, _: u64) {
        self.calls += 1;
    }
    fn on_halted(&mut self, _: NodeId, _: u64) {
        self.calls += 1;
    }
    fn on_boundary(&mut self, _: u64, _: &SlotProfile, _: u32, _: u32) {
        self.calls += 1;
    }
    fn on_slot(&mut self, _: u64, _: &SlotStats) {
        self.calls += 1;
    }
    fn on_idle_span(&mut self, _: u64, _: u64, _: u64) {
        self.calls += 1;
    }
}

/// `observer_events` equals what a mounted observer actually sees, and the
/// observer seat never perturbs the run or its counters.
#[test]
fn observer_events_match_mounted_observer_and_do_not_perturb() {
    for (pi, ai, seed) in [(1usize, 1usize, 11u64), (3, 6, 22), (0, 0, 33)] {
        let label = format!("{} vs {} seed {seed}", PROTOS[pi], ADVS[ai]);
        let (out_plain, tel_plain) = run_combo(pi, ai, seed, true, None);
        let mut tally = TallyObserver::default();
        let (out_obs, tel_obs) = run_combo(pi, ai, seed, true, Some(&mut tally));
        assert_eq!(out_plain, out_obs, "{label}: observer perturbed the run");
        assert_eq!(
            tel_plain, tel_obs,
            "{label}: observer perturbed the telemetry"
        );
        assert_eq!(
            tel_obs.observer_events, tally.calls,
            "{label}: engine count disagrees with the observer itself"
        );
        // Sanity: a capped run steps slots, so events must have fired.
        assert!(tally.calls > 0, "{label}: no events at all");
    }
}

/// The same conservation invariants hold lane by lane in the trial-batched
/// execution path: each lane's telemetry splits its slots and Eve's ledger
/// exactly, closes its span histogram, and leaves wall-clock phases zero.
/// (`tests/batch_equivalence.rs` pins lane telemetry *equal* to the scalar
/// trial's; this pins the invariants independently of that identity.)
#[test]
fn batch_lane_telemetry_obeys_the_same_invariants() {
    use rcb::harness::{run_trial_batch, AdversaryKind, ProtocolKind, TrialSpec};

    let lane_seeds: Vec<u64> = (0..8).map(|i| 4000 + 13 * i).collect();
    for adversary in [
        AdversaryKind::Silent,
        AdversaryKind::Uniform {
            t: 30_000,
            frac: 0.6,
        },
        AdversaryKind::Sweep {
            t: 30_000,
            width: 3,
            step: 2,
        },
    ] {
        let spec = TrialSpec::new(
            ProtocolKind::MultiCast {
                n: 16,
                params: Default::default(),
            },
            adversary,
            lane_seeds[0],
        )
        .with_max_slots(60_000);
        for (r, tel) in run_trial_batch(&spec, &lane_seeds, EngineConfig::default()) {
            let label = format!("batch lane seed {} vs {}", r.seed, r.adversary);
            assert_eq!(
                tel.slots_stepped + tel.slots_fast_forwarded,
                r.slots,
                "{label}: stepped + fast-forwarded must cover every slot"
            );
            assert_eq!(
                tel.jam_spent_stepped + tel.jam_spent_spans,
                r.eve_spent,
                "{label}: jam-budget split must conserve Eve's ledger"
            );
            assert_eq!(
                tel.span_len_hist.iter().sum::<u64>(),
                tel.spans,
                "{label}: histogram must account for every span exactly once"
            );
            assert_eq!(
                tel.phases.total(),
                0,
                "{label}: phases timed without opt-in"
            );
        }
    }
}

/// The derived ratios agree with the raw counters they summarize.
#[test]
fn derived_ratios_are_consistent() {
    let (out, tel) = run_combo(1, 1, 11, true, None);
    assert_eq!(tel.slots_total(), out.slots);
    let expect_ratio = tel.slots_fast_forwarded as f64 / out.slots as f64;
    assert!((tel.ff_skip_ratio() - expect_ratio).abs() < 1e-12);
    if tel.spans > 0 {
        let expect_mean = tel.slots_fast_forwarded as f64 / tel.spans as f64;
        assert!((tel.mean_span_len() - expect_mean).abs() < 1e-9);
    }
    // RNG accounting: a real protocol run draws from both stream classes.
    assert!(tel.rng_engine_draws > 0);
    assert!(tel.rng_node_draws > 0);
}
