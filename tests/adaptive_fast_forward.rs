//! Adaptive-adversary idle fast-forward equivalence: `run_adaptive` with the
//! span-batched fast path (`EngineConfig { fast_forward: true }`) must be
//! **byte-identical** to the slot-by-slot reference — outcomes *and* full
//! event traces.
//!
//! The soundness argument being gated: a span is skipped only when provably
//! no node acts in it, so the band is silent and an adaptive Eve observes
//! nothing she could react to. [`AdaptiveAdversary::jam_span`] receives the
//! pre-span observation for the span's first slot and the silent observation
//! for the rest — exactly the observation stream the per-slot path delivers
//! — so an exact implementation (the default loop, or the reactive family's
//! window-drain closed form) reproduces both Eve's spend and her state.
//!
//! Matrix: 4 reactive parameterizations (windows 1/4/16, caps 2–8,
//! thresholds 1–3) + the stateful hotspot tracker (exercising the default
//! per-slot `jam_span` loop), × 3 protocols × 3 seeds. This file runs as a
//! CI gate in the bench-smoke job alongside `fast_forward.rs` (oblivious)
//! and `topology_equivalence.rs`.

use rcb::adversary::{HotspotJammer, ReactiveJammer};
use rcb::core::{MultiCast, MultiCastAdv, MultiCastCore};
use rcb::sim::{
    AdaptiveAdversary, EngineConfig, Observer, Protocol, RunOutcome, Simulation, SlotProfile,
    SlotStats, TraceEvent,
};

/// Records the full informational trace plus slot/span coverage counters.
#[derive(Default)]
struct FullTrace {
    /// Informed/halted/boundary events — must match the reference exactly.
    events: Vec<TraceEvent>,
    executed_slots: u64,
    spans: u64,
    span_slots: u64,
    span_jammed: u64,
}

impl Observer for FullTrace {
    fn on_informed(&mut self, node: u32, slot: u64) {
        self.events.push(TraceEvent::Informed { node, slot });
    }
    fn on_halted(&mut self, node: u32, slot: u64) {
        self.events.push(TraceEvent::Halted { node, slot });
    }
    fn on_boundary(&mut self, slot: u64, profile: &SlotProfile, active: u32, informed: u32) {
        self.events.push(TraceEvent::Boundary {
            slot,
            seg_major: profile.seg_major,
            seg_minor: profile.seg_minor,
            step: profile.step,
            active,
            informed,
        });
    }
    fn on_slot(&mut self, _slot: u64, _stats: &SlotStats) {
        self.executed_slots += 1;
    }
    fn on_idle_span(&mut self, _slot: u64, len: u64, jammed: u64) {
        self.spans += 1;
        self.span_slots += len;
        self.span_jammed += jammed;
    }
}

const PROTOS: [&str; 3] = ["MultiCastCore", "MultiCast", "MultiCastAdv"];
const ADVS: [&str; 5] = [
    "reactive w=1 cap=8",
    "reactive w=4 cap=4",
    "reactive w=16 cap=8 threshold=3",
    "reactive w=8 cap=2 threshold=2",
    "hotspot (default-loop jam_span)",
];
const T: u64 = 40_000;

fn adversary(adv: usize, seed: u64) -> Box<dyn AdaptiveAdversary> {
    match adv {
        0 => Box::new(ReactiveJammer::new(T, 8)),
        1 => Box::new(ReactiveJammer::with_params(T, 4, 4, 1)),
        2 => Box::new(ReactiveJammer::with_params(T, 16, 8, 3)),
        3 => Box::new(ReactiveJammer::with_params(T, 8, 2, 2)),
        4 => Box::new(HotspotJammer::new(T, 4, 0.9, seed + 500)),
        _ => unreachable!(),
    }
}

fn run_combo(proto: usize, adv: usize, seed: u64, fast_forward: bool) -> (RunOutcome, FullTrace) {
    let cfg = EngineConfig {
        fast_forward,
        ..EngineConfig::capped(400_000)
    };
    let mut eve = adversary(adv, seed);
    let mut trace = FullTrace::default();
    fn go<P: Protocol>(
        mut p: P,
        eve: &mut dyn AdaptiveAdversary,
        seed: u64,
        cfg: &EngineConfig,
        trace: &mut FullTrace,
    ) -> RunOutcome {
        Simulation::new(&mut p)
            .adaptive(eve)
            .config(*(cfg))
            .observer(trace)
            .run(seed)
    }
    let n = 16u64;
    let out = match proto {
        0 => go(
            MultiCastCore::new(n, T),
            eve.as_mut(),
            seed,
            &cfg,
            &mut trace,
        ),
        1 => go(MultiCast::new(n), eve.as_mut(), seed, &cfg, &mut trace),
        2 => go(MultiCastAdv::new(n), eve.as_mut(), seed, &cfg, &mut trace),
        _ => unreachable!(),
    };
    (out, trace)
}

/// The acceptance matrix: outcomes field-for-field, traces event-for-event,
/// and coverage accounting (executed + skipped slots partition the run).
#[test]
fn adaptive_fast_forward_equals_reference_across_matrix() {
    let mut total_span_slots = 0u64;
    for (pi, pname) in PROTOS.iter().enumerate() {
        for (ai, aname) in ADVS.iter().enumerate() {
            for seed in [21u64, 22, 23] {
                let (fast_out, fast_tr) = run_combo(pi, ai, seed, true);
                let (slow_out, slow_tr) = run_combo(pi, ai, seed, false);
                assert_eq!(
                    fast_out, slow_out,
                    "{pname} vs {aname} at seed {seed}: outcome diverged"
                );
                assert_eq!(
                    fast_tr.events, slow_tr.events,
                    "{pname} vs {aname} at seed {seed}: trace diverged"
                );
                // The reference executes every slot and never emits spans;
                // the fast path's executed + skipped slots must cover the
                // run exactly, with span jamming accounted in the outcome.
                assert_eq!(slow_tr.span_slots, 0);
                assert_eq!(slow_tr.executed_slots, slow_out.slots);
                assert_eq!(
                    fast_tr.executed_slots + fast_tr.span_slots,
                    fast_out.slots,
                    "{pname} vs {aname} at seed {seed}: coverage gap"
                );
                assert_eq!(fast_out.safety_violations(), 0);
                total_span_slots += fast_tr.span_slots;
            }
        }
    }
    assert!(
        total_span_slots > 0,
        "the matrix must actually exercise the adaptive fast path"
    );
}

/// A big-budget hotspot jammer drives `MultiCast` into its sparse late
/// iterations — the signature fast-forward workload — so adaptive runs must
/// visibly engage the span path, not just match by never fast-forwarding.
#[test]
fn adaptive_runs_fast_forward_meaningfully() {
    let mut span_slots = 0u64;
    let mut slots = 0u64;
    for seed in [31u64, 32, 33] {
        let (out, tr) = {
            let cfg = EngineConfig::capped(20_000_000);
            let mut eve = HotspotJammer::new(1_000_000, 7, 0.9, seed);
            let mut trace = FullTrace::default();
            let mut p = MultiCast::new(16);
            let out = Simulation::new(&mut p)
                .adaptive(&mut eve)
                .config(cfg)
                .observer(&mut trace)
                .run(seed);
            (out, trace)
        };
        assert!(out.all_halted && out.all_informed, "seed {seed}");
        assert_eq!(out.eve_spent, 1_000_000, "she must exhaust her budget");
        span_slots += tr.span_slots;
        slots += out.slots;
    }
    assert!(
        span_slots * 5 > slots,
        "expected >20% of slots skipped, got {span_slots} of {slots}"
    );
}

/// Bankruptcy inside a span: a hotspot jammer burning k channels every slot
/// goes broke mid-run; the fast path must charge exactly to zero and stay
/// byte-identical through and past the bankruptcy point.
#[test]
fn adaptive_fast_forward_survives_mid_span_bankruptcy() {
    for seed in [41u64, 42] {
        let run_mode = |fast_forward: bool| {
            let cfg = EngineConfig {
                fast_forward,
                ..EngineConfig::capped(2_000_000)
            };
            let mut eve = HotspotJammer::new(5_000, 4, 0.8, seed);
            let mut p = MultiCast::new(16);
            let mut trace = FullTrace::default();
            let out = Simulation::new(&mut p)
                .adaptive(&mut eve)
                .config(cfg)
                .observer(&mut trace)
                .run(seed);
            (out, trace)
        };
        let (fast_out, fast_tr) = run_mode(true);
        let (slow_out, slow_tr) = run_mode(false);
        assert_eq!(fast_out, slow_out, "seed {seed}");
        assert_eq!(fast_tr.events, slow_tr.events, "seed {seed}");
        assert_eq!(fast_out.eve_spent, 5_000, "she must go bankrupt");
    }
}
