//! Kill-anywhere resume equivalence: the campaign service
//! ([`rcb::campaign::run_campaign_service`]) must reproduce the
//! uninterrupted artifact **byte for byte** no matter where a run is
//! killed, how many times it is killed, how many threads drain the
//! trial queue, or how wide the batch lanes are.
//!
//! Contract, in three tiers:
//!
//! * **Kill anywhere, resume once.** For every kill point `k` in
//!   `1..total` the sequence "run until `k` trials are simulated, exit,
//!   resume" yields an artifact byte-identical to the uninterrupted
//!   run — across a {1,4}-thread × {1,8}-batch-width matrix, and with
//!   the resume leg running under a *different* thread count than the
//!   killed leg (checkpoints must not encode scheduling).
//! * **Kill repeatedly.** A chain of kills (resume legs themselves
//!   killed) converges to the same bytes; checkpoints written by a
//!   resumed run are as good as first-generation ones.
//! * **Grow incrementally.** Raising `--trials` on a completed state
//!   directory simulates only the new replicates per cell and produces
//!   the same bytes as a fresh run at the larger trial count — the
//!   two-level [`rcb::harness::cell_trial_seed`] derivation makes each
//!   cell's seed stream independent of the trial budget.
//!
//! Plus the failure-path satellites: a truncated or bit-flipped
//! checkpoint must surface a [`rcb::campaign::ServiceError`] with
//! `file: message` context (never a panic, never a silent recompute),
//! and the store-backed warm path must do zero simulation work.

use rcb::campaign::{
    checkpoint_path, run_campaign, run_campaign_service, CampaignConfig, CampaignSpec, CellSpec,
    ServiceConfig, ServiceRun,
};
use rcb::harness::{AdversaryKind, ProtocolKind};
use std::path::PathBuf;

/// Process-unique scratch directory; removed by each test on success so
/// reruns start clean (a leftover dir from a failed run is harmless —
/// the name is pid-scoped and recreated fresh).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcb-resume-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three deliberately heterogeneous cells (epoch protocol vs naive,
/// jammed vs silent, different slot caps) so checkpoints carry
/// non-trivial sketches, histograms, and telemetry in every cell.
fn spec() -> CampaignSpec {
    CampaignSpec {
        name: "resume-itest".into(),
        description: "resume equivalence fixture".into(),
        cells: vec![
            CellSpec::new(
                ProtocolKind::Naive {
                    n: 16,
                    act_prob: 1.0,
                },
                AdversaryKind::Silent,
            )
            .with_max_slots(50_000),
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n: 16,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t: 500, frac: 0.5 },
            )
            .with_max_slots(500_000),
            CellSpec::new(
                ProtocolKind::Naive {
                    n: 32,
                    act_prob: 0.5,
                },
                AdversaryKind::Silent,
            )
            .with_max_slots(50_000),
        ],
    }
}

fn cfg(trials: u64, threads: usize, batch_width: u64) -> CampaignConfig {
    CampaignConfig {
        seed: 2019,
        trials_per_cell: trials,
        threads,
        batch_width,
        ..Default::default()
    }
}

fn service(state_dir: &std::path::Path, resume: bool, kill: Option<u64>) -> ServiceConfig {
    ServiceConfig {
        state_dir: Some(state_dir.to_path_buf()),
        resume,
        checkpoint_every: 2,
        kill_after_trials: kill,
        ..Default::default()
    }
}

fn complete_json(run: Result<ServiceRun, rcb::campaign::ServiceError>) -> String {
    match run.expect("service run failed") {
        ServiceRun::Complete { report, .. } => report.to_json(),
        ServiceRun::Killed { simulated_trials } => {
            panic!("unexpected kill after {simulated_trials} trials")
        }
    }
}

/// The headline matrix: every kill point × {1,4} threads × {1,8} batch
/// widths, with the resume leg on a different thread count than the
/// killed leg.
#[test]
fn kill_anywhere_resume_is_byte_identical() {
    let spec = spec();
    let trials = 4u64;
    let total = spec.cells.len() as u64 * trials;
    let reference = run_campaign(&spec, &cfg(trials, 1, 1)).to_json();

    for &(threads, width) in &[(1usize, 1u64), (1, 8), (4, 1), (4, 8)] {
        // The uninterrupted service run under this schedule shape must
        // already match the plain-engine reference.
        assert_eq!(
            reference,
            complete_json(run_campaign_service(
                &spec,
                &cfg(trials, threads, width),
                &ServiceConfig::default(),
            )),
            "threads={threads} width={width}: uninterrupted service run diverged"
        );

        for kill in 1..total {
            let dir = scratch(&format!("kill-{threads}-{width}-{kill}"));
            let killed = run_campaign_service(
                &spec,
                &cfg(trials, threads, width),
                &service(&dir, false, Some(kill)),
            )
            .expect("killed leg failed");
            match killed {
                ServiceRun::Killed { simulated_trials } => assert!(
                    simulated_trials >= kill,
                    "kill hook fired early: {simulated_trials} < {kill}"
                ),
                ServiceRun::Complete { .. } => panic!("kill at {kill} of {total} did not fire"),
            }

            // Resume under the *other* thread count: checkpoints must
            // not bake in any scheduling detail.
            let other = if threads == 1 { 4 } else { 1 };
            let resumed = complete_json(run_campaign_service(
                &spec,
                &cfg(trials, other, width),
                &service(&dir, true, None),
            ));
            assert_eq!(
                reference, resumed,
                "threads={threads}->{other} width={width} kill={kill}: resumed artifact diverged"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A resumed run that is itself killed leaves checkpoints a second
/// resume completes from — multi-generation checkpoints are
/// indistinguishable from first-generation ones.
#[test]
fn chained_kills_converge_to_the_same_bytes() {
    let spec = spec();
    let trials = 4u64;
    let reference = run_campaign(&spec, &cfg(trials, 2, 1)).to_json();
    let dir = scratch("chain");

    // `kill_after_trials` counts trials simulated *in that leg*, and a
    // kill can lose up to `checkpoint_every - 1` trials per cell past
    // the last boundary — keep each leg's kill below the work remaining.
    for (leg, kill) in [(0u32, Some(3)), (1, Some(4)), (2, Some(2))] {
        let run = run_campaign_service(&spec, &cfg(trials, 2, 1), &service(&dir, leg > 0, kill))
            .expect("chained leg failed");
        assert!(
            matches!(run, ServiceRun::Killed { .. }),
            "leg {leg} should have been killed"
        );
    }
    let final_json = complete_json(run_campaign_service(
        &spec,
        &cfg(trials, 2, 1),
        &service(&dir, true, None),
    ));
    assert_eq!(
        reference, final_json,
        "triple-killed run diverged on final resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Growing `--trials` on a checkpointed state directory runs only the
/// new replicates and matches a fresh run at the larger count.
#[test]
fn incremental_trials_extend_checkpoints_in_place() {
    let spec = spec();
    let dir = scratch("grow");
    let cells = spec.cells.len() as u64;

    // Complete a 3-trial campaign with checkpointing on.
    let first = run_campaign_service(&spec, &cfg(3, 2, 1), &service(&dir, false, None))
        .expect("seed run failed");
    assert!(matches!(first, ServiceRun::Complete { .. }));

    // Grow to 5 trials: exactly 2 more per cell are simulated.
    let grown = run_campaign_service(&spec, &cfg(5, 2, 1), &service(&dir, true, None))
        .expect("grow run failed");
    let ServiceRun::Complete {
        report,
        resumed_trials,
        simulated_trials,
        ..
    } = grown
    else {
        panic!("grow run was killed")
    };
    assert_eq!(resumed_trials, cells * 3);
    assert_eq!(simulated_trials, cells * 2);
    assert_eq!(
        report.to_json(),
        run_campaign(&spec, &cfg(5, 1, 1)).to_json(),
        "incrementally grown artifact diverged from a fresh 5-trial run"
    );

    // Shrinking is refused with checkpoint-file context, not silently
    // truncated.
    let err = run_campaign_service(&spec, &cfg(2, 2, 1), &service(&dir, true, None))
        .expect_err("shrinking trials must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("never shrink") && msg.contains("cell-0000.ckpt.json"),
        "unexpected shrink error: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt checkpoints are detected (checksum), reported with
/// `file: message` context, and never panic or silently recompute.
#[test]
fn corrupt_and_truncated_checkpoints_are_rejected_with_context() {
    let spec = spec();
    let dir = scratch("corrupt");
    run_campaign_service(&spec, &cfg(3, 2, 1), &service(&dir, false, None))
        .expect("seed run failed");
    let path = checkpoint_path(&dir, 0);
    let pristine = std::fs::read_to_string(&path).expect("checkpoint exists");

    // Truncation: not even valid JSON.
    std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
    let err = run_campaign_service(&spec, &cfg(3, 2, 1), &service(&dir, true, None))
        .expect_err("truncated checkpoint must fail");
    assert!(
        err.to_string().starts_with(&path.display().to_string()),
        "error lacks file context: {err}"
    );

    // Bit flip inside the serialized state: valid JSON, bad checksum.
    let tampered = pristine.replace("\"trials_done\": 3", "\"trials_done\": 2");
    assert_ne!(tampered, pristine, "fixture no longer matches the format");
    std::fs::write(&path, tampered).unwrap();
    let err = run_campaign_service(&spec, &cfg(3, 2, 1), &service(&dir, true, None))
        .expect_err("tampered checkpoint must fail");
    let msg = err.to_string();
    assert!(
        msg.starts_with(&path.display().to_string()),
        "error lacks file context: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm store hits restore every cell bit-identically with zero
/// simulation work; a seed change is a clean miss.
#[test]
fn warm_store_does_zero_simulation_work() {
    let spec = spec();
    let store = scratch("store");
    let svc = ServiceConfig {
        store_dir: Some(store.clone()),
        ..Default::default()
    };
    let cold = run_campaign_service(&spec, &cfg(3, 2, 1), &svc).expect("cold run failed");
    let ServiceRun::Complete {
        report: cold_report,
        simulated_trials: cold_sim,
        store_hits: cold_hits,
        ..
    } = cold
    else {
        panic!("cold run was killed")
    };
    assert_eq!(cold_hits, 0);
    assert_eq!(cold_sim, spec.cells.len() as u64 * 3);

    let warm = run_campaign_service(&spec, &cfg(3, 4, 1), &svc).expect("warm run failed");
    let ServiceRun::Complete {
        report: warm_report,
        simulated_trials: warm_sim,
        store_hits: warm_hits,
        ..
    } = warm
    else {
        panic!("warm run was killed")
    };
    assert_eq!(warm_hits, spec.cells.len() as u64);
    assert_eq!(warm_sim, 0, "warm store re-run must simulate nothing");
    assert_eq!(
        cold_report.to_json(),
        warm_report.to_json(),
        "store round-trip is not bit-identical"
    );

    // Any seed change misses the store entirely.
    let mut other = cfg(3, 2, 1);
    other.seed = 2020;
    let miss = run_campaign_service(&spec, &other, &svc).expect("miss run failed");
    let ServiceRun::Complete {
        store_hits: miss_hits,
        simulated_trials: miss_sim,
        ..
    } = miss
    else {
        panic!("miss run was killed")
    };
    assert_eq!(miss_hits, 0, "a different seed must not hit the store");
    assert_eq!(miss_sim, spec.cells.len() as u64 * 3);
    let _ = std::fs::remove_dir_all(&store);
}
