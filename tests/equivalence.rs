//! Cross-implementation equivalence checks.
//!
//! * `MultiCast(C)` at `C = n/2` must degenerate to plain `MultiCast`
//!   (round length 1), and at smaller `C` must preserve the *virtual*-slot
//!   behaviour exactly: same iteration count to termination, same energy
//!   distribution, only wall-clock slots stretched by `n/(2C)`.
//! * The engine's sparse (geometric-skip) actor sampling must agree
//!   statistically with the dense per-node reference sampling.

use rcb::core::{McParams, MultiCast, MultiCastC};
use rcb::sim::{EngineConfig, Sampling, Simulation};

#[test]
fn multicast_c_at_half_n_has_identical_schedule_shape() {
    let n = 32u64;
    let mut full = MultiCast::new(n);
    let mut limited = MultiCastC::new(n, n / 2);
    let out_full = Simulation::new(&mut full).run(11);
    let out_lim = Simulation::new(&mut limited).run(11);
    assert!(out_full.all_halted && out_lim.all_halted);
    // Identical seed, identical schedule (round_len == 1) — identical runs.
    assert_eq!(out_full.slots, out_lim.slots);
    assert_eq!(out_full.max_cost(), out_lim.max_cost());
    assert_eq!(out_full.totals, out_lim.totals);
}

#[test]
fn round_simulation_stretches_time_but_preserves_rounds_and_energy() {
    let n = 32u64;
    let seeds = 0..8u64;
    let mut virt_slots_full = Vec::new();
    let mut virt_slots_c4 = Vec::new();
    let mut cost_full = Vec::new();
    let mut cost_c4 = Vec::new();
    for seed in seeds {
        let mut full = MultiCast::new(n);
        let of = Simulation::new(&mut full).run(seed);
        assert!(of.all_halted);
        virt_slots_full.push(of.slots as f64);
        cost_full.push(of.mean_cost());

        let mut limited = MultiCastC::new(n, 4);
        let ol = Simulation::new(&mut limited).run(seed);
        assert!(ol.all_halted);
        // 4 physical slots per round (n/2 = 16 virtual channels / 4).
        assert_eq!(ol.slots % 4, 0);
        virt_slots_c4.push(ol.slots as f64 / 4.0);
        cost_c4.push(ol.mean_cost());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Virtual-time and energy distributions agree across the simulation
    // (different RNG interleavings, so compare means, not per-seed values).
    let vt_ratio = mean(&virt_slots_full) / mean(&virt_slots_c4);
    assert!(
        (0.9..1.1).contains(&vt_ratio),
        "virtual slot counts diverge: {vt_ratio}"
    );
    let cost_ratio = mean(&cost_full) / mean(&cost_c4);
    assert!(
        (0.9..1.1).contains(&cost_ratio),
        "energy diverges: {cost_ratio}"
    );
}

#[test]
fn sparse_and_dense_sampling_agree_on_protocol_outcomes() {
    let n = 32u64;
    let trials = 6u64;
    let run_mode = |sampling: Sampling| -> (f64, f64) {
        let mut slots = 0.0;
        let mut cost = 0.0;
        for seed in 0..trials {
            let params = McParams::default();
            let mut proto = MultiCast::with_params(n, params);
            let cfg = EngineConfig {
                sampling,
                ..EngineConfig::default()
            };
            let out = Simulation::new(&mut proto).config(cfg).run(300 + seed);
            assert!(out.all_halted && out.all_informed);
            slots += out.slots as f64;
            cost += out.mean_cost();
        }
        (slots / trials as f64, cost / trials as f64)
    };
    let (slots_sparse, cost_sparse) = run_mode(Sampling::Sparse);
    let (slots_dense, cost_dense) = run_mode(Sampling::DensePerNode);
    // Without jamming both modes halt at the first boundary: identical time.
    assert_eq!(slots_sparse, slots_dense);
    let ratio = cost_sparse / cost_dense;
    assert!(
        (0.93..1.07).contains(&ratio),
        "energy distributions diverge: sparse {cost_sparse} vs dense {cost_dense}"
    );
}
