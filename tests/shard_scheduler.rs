//! Work-stealing shard scheduler equivalence: a campaign driven by N
//! independent workers over a shared state directory
//! ([`rcb::campaign::shard_work`]) and folded by
//! [`rcb::campaign::shard_merge`] must reproduce the single-process
//! artifact **byte for byte** — at any worker count, any batch width, and
//! under mid-cell worker death with lease stealing.
//!
//! Contract, in three tiers:
//!
//! * **Any fleet size.** {1,2,4} workers × {1,8} batch widths all merge
//!   to the bytes of a plain `run_campaign` of the same spec/config. The
//!   workers race each other for cells through atomic lease claims; who
//!   wins which cell must be invisible in the artifact.
//! * **Kill one worker mid-cell.** A worker hard-killed between
//!   checkpoints (`max_trials` leaves its lease in place, exactly like
//!   `kill -9`) hands its cell to the fleet via staleness: another worker
//!   steals the lease, resumes from the watermark, and the merged bytes
//!   are unchanged. Merge sweeps all scheduler residue (leases, tmp
//!   files).
//! * **Warm fleet.** A second plan over the same campaign backed by the
//!   same store completes with **zero** simulated trials — the shard
//!   path and the store compose.
//!
//! The lease primitives themselves (double-claim impossibility,
//! single-winner steal, heartbeat fencing, plan codec) are unit-tested in
//! `crates/campaign/src/shard.rs`; this file covers the multi-worker
//! end-to-end contract.

use rcb::campaign::{
    run_campaign, shard_merge, shard_status, shard_work, write_plan, CampaignConfig, CampaignSpec,
    CellSpec, CellState, PlanOptions, WorkerOptions, WorkerOutcome,
};
use rcb::harness::{AdversaryKind, ProtocolKind};
use std::path::{Path, PathBuf};

/// Process-unique scratch directory; removed by each test on success so
/// reruns start clean (a leftover dir from a failed run is harmless —
/// the name is pid-scoped and recreated fresh).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcb-shard-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three deliberately heterogeneous cells (epoch protocol vs naive,
/// jammed vs silent, different slot caps) so stolen checkpoints carry
/// non-trivial sketches, histograms, and telemetry.
fn spec() -> CampaignSpec {
    CampaignSpec {
        name: "shard-itest".into(),
        description: "shard scheduler fixture".into(),
        cells: vec![
            CellSpec::new(
                ProtocolKind::Naive {
                    n: 16,
                    act_prob: 1.0,
                },
                AdversaryKind::Silent,
            )
            .with_max_slots(50_000),
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n: 16,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t: 500, frac: 0.5 },
            )
            .with_max_slots(500_000),
            CellSpec::new(
                ProtocolKind::Naive {
                    n: 32,
                    act_prob: 0.5,
                },
                AdversaryKind::Silent,
            )
            .with_max_slots(50_000),
        ],
    }
}

fn cfg(trials: u64, batch_width: u64) -> CampaignConfig {
    CampaignConfig {
        seed: 2019,
        trials_per_cell: trials,
        threads: 1,
        batch_width,
        ..Default::default()
    }
}

fn worker(id: &str) -> WorkerOptions {
    WorkerOptions {
        worker_id: id.into(),
        threads: 1,
        ..Default::default()
    }
}

/// Run `n` workers concurrently until the plan is complete; returns each
/// worker's outcome.
fn run_fleet(spec: &CampaignSpec, state_dir: &Path, n: usize) -> Vec<WorkerOutcome> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                scope.spawn(move || {
                    shard_work(spec, state_dir, &worker(&format!("w{i}"))).expect("worker")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

fn assert_no_scheduler_residue(state_dir: &Path) {
    for entry in std::fs::read_dir(state_dir).expect("state dir") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            !name.starts_with("lease-") && !name.ends_with(".tmp"),
            "scheduler residue after merge: {name}"
        );
    }
}

/// The headline matrix: {1,2,4} workers × {1,8} batch widths, every
/// combination merging to the single-process bytes.
#[test]
fn merge_is_byte_identical_across_worker_and_batch_matrix() {
    let spec = spec();
    for &batch_width in &[1u64, 8] {
        let cfg = cfg(5, batch_width);
        let reference = run_campaign(&spec, &cfg).to_json();
        for &workers in &[1usize, 2, 4] {
            let dir = scratch(&format!("matrix-w{workers}-b{batch_width}"));
            write_plan(&spec, &cfg, &dir, &PlanOptions::default()).expect("plan");
            let outcomes = run_fleet(&spec, &dir, workers);
            let completed: u64 = outcomes
                .iter()
                .map(|o| match o {
                    WorkerOutcome::Finished {
                        cells_completed, ..
                    } => *cells_completed,
                    WorkerOutcome::Killed { .. } => panic!("no kill switch in this test"),
                })
                .sum();
            assert_eq!(
                completed, 3,
                "every cell completed exactly once across the fleet \
                 (workers={workers}, batch={batch_width})"
            );
            let merged = shard_merge(&spec, &dir).expect("merge");
            assert_eq!(
                merged.report.to_json(),
                reference,
                "merge bytes diverged at workers={workers}, batch={batch_width}"
            );
            assert_no_scheduler_residue(&dir);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Kill-one-worker-mid-cell: the dead worker's lease goes stale, the
/// fleet steals it, resumes the cell from its checkpoint watermark, and
/// the merged artifact is still byte-identical — for both batch widths.
#[test]
fn killed_worker_is_stolen_from_and_merge_bytes_are_unchanged() {
    let spec = spec();
    for &batch_width in &[1u64, 8] {
        let cfg = cfg(5, batch_width);
        let reference = run_campaign(&spec, &cfg).to_json();
        let dir = scratch(&format!("kill-b{batch_width}"));
        write_plan(
            &spec,
            &cfg,
            &dir,
            &PlanOptions {
                stale_after_ms: 60, // quick staleness so the test stays fast
                ..Default::default()
            },
        )
        .expect("plan");

        // One worker dies mid-cell: 3 of the cell's 5 trials ingested,
        // lease left in place exactly as a hard kill would.
        let dead = shard_work(
            &spec,
            &dir,
            &WorkerOptions {
                max_trials: Some(3),
                ..worker("doomed")
            },
        )
        .expect("killed worker");
        let WorkerOutcome::Killed { trials_simulated } = dead else {
            panic!("kill switch did not fire: {dead:?}")
        };
        assert_eq!(trials_simulated, 3);
        let status =
            shard_status(&dir, &rcb::campaign::load_plan(&dir).expect("plan")).expect("status");
        let victim: Vec<_> = status
            .iter()
            .filter(|s| s.owner.as_deref() == Some("doomed"))
            .collect();
        assert_eq!(victim.len(), 1, "the dead worker's lease is still held");
        assert!(
            victim[0].watermark > 0,
            "mid-cell: progress was checkpointed"
        );
        assert!(victim[0].watermark < 5, "mid-cell: the cell is unfinished");

        // The fleet steals the stale lease and finishes everything.
        let outcomes = run_fleet(&spec, &dir, 2);
        let stolen: u64 = outcomes
            .iter()
            .map(|o| match o {
                WorkerOutcome::Finished { cells_stolen, .. } => *cells_stolen,
                WorkerOutcome::Killed { .. } => panic!("fleet workers have no kill switch"),
            })
            .sum();
        assert_eq!(stolen, 1, "exactly one steal: the dead worker's cell");

        let merged = shard_merge(&spec, &dir).expect("merge");
        assert_eq!(
            merged.report.to_json(),
            reference,
            "steal-and-resume changed bytes at batch={batch_width}"
        );
        assert_no_scheduler_residue(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Status transitions: available → claimed (fresh lease) → done, and a
/// stale lease reads as stealable.
#[test]
fn status_tracks_the_lease_lifecycle() {
    let spec = spec();
    let cfg = cfg(2, 1);
    let dir = scratch("status");
    let plan = write_plan(
        &spec,
        &cfg,
        &dir,
        &PlanOptions {
            stale_after_ms: 50,
            ..Default::default()
        },
    )
    .expect("plan");

    let fresh = shard_status(&dir, &plan).expect("status");
    assert!(fresh.iter().all(|s| s.state == CellState::Available));
    assert!(fresh.iter().all(|s| s.watermark == 0 && s.owner.is_none()));

    // Kill a worker on its first cell, then watch the lease go stale.
    shard_work(
        &spec,
        &dir,
        &WorkerOptions {
            max_trials: Some(1),
            ..worker("brief")
        },
    )
    .expect("killed worker");
    let held = shard_status(&dir, &plan).expect("status");
    let claimed: Vec<_> = held
        .iter()
        .filter(|s| s.state == CellState::Claimed || s.state == CellState::Stealable)
        .collect();
    assert_eq!(claimed.len(), 1);
    assert_eq!(claimed[0].owner.as_deref(), Some("brief"));
    std::thread::sleep(std::time::Duration::from_millis(80));
    let stale = shard_status(&dir, &plan).expect("status");
    assert!(
        stale.iter().any(|s| s.state == CellState::Stealable),
        "the dead worker's lease must read stealable after stale_after_ms"
    );

    run_fleet(&spec, &dir, 1);
    let done = shard_status(&dir, &plan).expect("status");
    assert!(done.iter().all(|s| s.state == CellState::Done));
    assert!(done.iter().all(|s| s.watermark == 2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store composition: a fleet that completed once populates the store; a
/// fresh plan over the same campaign completes with zero simulation.
#[test]
fn second_fleet_is_fully_warm_through_the_store() {
    let spec = spec();
    let cfg = cfg(3, 1);
    let store_dir = scratch("warm-store");
    let opts = PlanOptions {
        store_dir: Some(store_dir.clone()),
        ..Default::default()
    };

    let cold_dir = scratch("warm-cold");
    write_plan(&spec, &cfg, &cold_dir, &opts).expect("plan");
    run_fleet(&spec, &cold_dir, 2);
    let cold = shard_merge(&spec, &cold_dir).expect("merge");

    let warm_dir = scratch("warm-warm");
    write_plan(&spec, &cfg, &warm_dir, &opts).expect("plan");
    let outcomes = run_fleet(&spec, &warm_dir, 2);
    let (simulated, hits): (u64, u64) = outcomes
        .iter()
        .map(|o| match o {
            WorkerOutcome::Finished {
                trials_simulated,
                store_hits,
                ..
            } => (*trials_simulated, *store_hits),
            WorkerOutcome::Killed { .. } => panic!("no kill switch in this test"),
        })
        .fold((0, 0), |(s, h), (ds, dh)| (s + ds, h + dh));
    assert_eq!(simulated, 0, "warm fleet must simulate nothing");
    assert_eq!(hits, 3, "every cell served from the store");
    let warm = shard_merge(&spec, &warm_dir).expect("merge");
    assert_eq!(warm.report.to_json(), cold.report.to_json());

    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_dir_all(&store_dir);
}
