//! # rcb — resource-competitive broadcast in multi-channel radio networks
//!
//! A full reproduction of **Chen & Zheng, *Fast and Resource Competitive
//! Broadcast in Multi-channel Radio Networks*, SPAA 2019** as a Rust
//! workspace:
//!
//! * [`sim`] — the slot-synchronous multi-channel radio simulator (the
//!   paper's Section 3 model, implemented exactly);
//! * [`adversary`] — oblivious jamming strategies for Eve, budget-enforced;
//! * [`core`](mod@core) — the protocols: `MultiCastCore`, `MultiCast`,
//!   `MultiCastAdv`, `MultiCast(C)`, `MultiCastAdv(C)`, plus baselines;
//! * [`stats`] — summary statistics, streaming aggregation, and the
//!   log-log fits the experiments use to verify scaling exponents;
//! * [`harness`] — a declarative, parallel Monte-Carlo trial runner;
//! * [`campaign`] — a named scenario catalog plus a parallel campaign
//!   engine with streaming aggregation and schema-versioned JSON
//!   artifacts (the `rcb` binary).
//!
//! This facade crate re-exports everything and hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! ## The paper in one paragraph
//!
//! A source must broadcast a message to `n − 1` other nodes over a
//! multi-channel radio network while an adversary ("Eve") with an energy
//! budget `T` jams. Sending, listening, or jamming one channel for one slot
//! all cost one energy unit. A *resource-competitive* algorithm guarantees
//! each node spends `o(T)` — so jammers go bankrupt long before the
//! protocol does. The paper shows multiple channels buy *time*: `MultiCast`
//! finishes in `Õ(T/n)` slots at `Õ(√(T/n))` energy per node (the best
//! single-channel algorithms need `Õ(T + n)` time at the same energy), and
//! variants handle unknown `n` and limited channel counts.
//!
//! ## Quick start
//!
//! ```
//! use rcb::core::MultiCast;
//! use rcb::adversary::UniformFraction;
//! use rcb::sim::Simulation;
//!
//! // 64 nodes (the protocol uses n/2 = 32 channels); Eve holds 20k energy
//! // and jams half the band every slot until she is broke.
//! let mut protocol = MultiCast::new(64);
//! let mut eve = UniformFraction::new(20_000, 0.5, 7);
//! let outcome = Simulation::new(&mut protocol).adversary(&mut eve).run(42);
//!
//! assert!(outcome.all_informed && outcome.all_halted);
//! assert_eq!(outcome.safety_violations(), 0);
//! // Eve outspends every node by an order of magnitude:
//! assert!(outcome.max_cost() * 2 < outcome.eve_spent);
//! ```

pub use rcb_adversary as adversary;
pub use rcb_campaign as campaign;
pub use rcb_core as core;
pub use rcb_harness as harness;
pub use rcb_sim as sim;
pub use rcb_stats as stats;

/// Crate version, for examples that print a banner.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
