//! Bursty environmental interference via a Gilbert–Elliott channel model.

use crate::frac_to_count;
use rcb_sim::{Adversary, JamSet, Xoshiro256};

/// A two-state Markov interference source: in the **good** state nothing is
/// jammed; in the **bad** state a fraction of the band is. Transitions
/// good→bad with probability `p_gb` and bad→good with probability `p_bg`
/// per slot, giving geometrically distributed burst and gap lengths — the
/// classic Gilbert–Elliott model of bursty channel noise.
///
/// The paper folds environmental noise and malicious jamming into the same
/// adversary ("Eve, which captures environmental noise and potentially
/// malicious interference"); this strategy instantiates the environmental
/// end of that spectrum. The chain's evolution uses only private randomness
/// and the slot index, so it remains oblivious.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    t: u64,
    p_gb: f64,
    p_bg: f64,
    frac_bad: f64,
    bad: bool,
    rng: Xoshiro256,
    last_slot: Option<u64>,
}

impl GilbertElliott {
    /// `p_gb`: per-slot probability of entering a burst; `p_bg`: per-slot
    /// probability of leaving one; `frac_bad`: fraction of channels disturbed
    /// while in a burst.
    pub fn new(t: u64, p_gb: f64, p_bg: f64, frac_bad: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_gb) && (0.0..=1.0).contains(&p_bg));
        assert!((0.0..=1.0).contains(&frac_bad));
        Self {
            t,
            p_gb,
            p_bg,
            frac_bad,
            bad: false,
            rng: Xoshiro256::seeded(seed),
            last_slot: None,
        }
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        }
    }

    fn step(&mut self) {
        let flip = if self.bad { self.p_bg } else { self.p_gb };
        if self.rng.gen_bool(flip) {
            self.bad = !self.bad;
        }
    }
}

impl Adversary for GilbertElliott {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        // Advance the chain by the number of elapsed slots (robust to the
        // engine skipping calls after bankruptcy).
        let steps = match self.last_slot {
            None => 1,
            Some(last) => slot.saturating_sub(last),
        };
        self.last_slot = Some(slot);
        for _ in 0..steps {
            self.step();
        }
        if !self.bad {
            return JamSet::Empty;
        }
        let k = frac_to_count(self.frac_bad, channels);
        if k == 0 {
            JamSet::Empty
        } else if k >= channels {
            JamSet::All
        } else {
            let start = self.rng.gen_range(channels);
            JamSet::Window { start, len: k }
        }
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn name(&self) -> &'static str {
        "gilbert-elliott"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_fraction_matches_theory() {
        let mut adv = GilbertElliott::new(u64::MAX, 0.02, 0.08, 1.0, 7);
        let slots = 200_000u64;
        let mut bad_slots = 0u64;
        for slot in 0..slots {
            if adv.jam(slot, 8) != JamSet::Empty {
                bad_slots += 1;
            }
        }
        let measured = bad_slots as f64 / slots as f64;
        let expected = adv.stationary_bad(); // 0.2
        assert!(
            (measured - expected).abs() < 0.03,
            "measured {measured:.3} vs stationary {expected:.3}"
        );
    }

    #[test]
    fn bursts_are_bursty() {
        // With small transition probabilities, consecutive slots should be
        // highly correlated: count state flips, which should be far fewer
        // than for i.i.d. slots.
        let mut adv = GilbertElliott::new(u64::MAX, 0.01, 0.01, 1.0, 9);
        let slots = 50_000u64;
        let mut prev = false;
        let mut flips = 0u64;
        for slot in 0..slots {
            let bad = adv.jam(slot, 8) != JamSet::Empty;
            if bad != prev {
                flips += 1;
            }
            prev = bad;
        }
        // i.i.d. with p = 0.5 would flip ~25_000 times; the chain flips
        // ~ slots * 0.01 = 500 times.
        assert!(flips < 2_000, "flips = {flips}, interference is not bursty");
    }

    #[test]
    fn zero_transition_never_jams() {
        let mut adv = GilbertElliott::new(100, 0.0, 0.5, 1.0, 1);
        for slot in 0..100 {
            assert_eq!(adv.jam(slot, 8), JamSet::Empty);
        }
        assert_eq!(adv.stationary_bad(), 0.0);
    }

    #[test]
    fn partial_fraction_in_bad_state() {
        let mut adv = GilbertElliott::new(u64::MAX, 1.0, 0.0, 0.5, 3);
        // p_gb = 1 means we enter the bad state immediately and stay.
        for slot in 0..10 {
            assert_eq!(adv.jam(slot, 16).count(16), 8);
        }
    }
}
