//! Bursty environmental interference via a Gilbert–Elliott channel model.

use crate::{frac_to_count, slot_offset};
use rcb_sim::{derive_seed, geometric_gap, Adversary, JamSet, SpanCharge, Xoshiro256};

/// A two-state Markov interference source: in the **good** state nothing is
/// jammed; in the **bad** state a fraction of the band is. Transitions
/// good→bad with probability `p_gb` and bad→good with probability `p_bg`
/// per slot, giving geometrically distributed burst and gap lengths — the
/// classic Gilbert–Elliott model of bursty channel noise.
///
/// The paper folds environmental noise and malicious jamming into the same
/// adversary ("Eve, which captures environmental noise and potentially
/// malicious interference"); this strategy instantiates the environmental
/// end of that spectrum. The chain's evolution uses only private randomness
/// and the slot index, so it remains oblivious.
///
/// # Span batching is statistical, not per-seed
///
/// The chain is the one genuinely sequential strategy in this crate, so its
/// [`jam_span`](Adversary::jam_span) override cannot replay the per-slot
/// draw sequence. Instead it advances the chain by **geometric sojourn
/// jumps** (`O(#state flips)` per span instead of `O(len)`): by the
/// memorylessness of per-slot flips, the sampled (occupancy, end-state) pair
/// has *exactly* the per-slot distribution, but realizations differ per
/// seed. Fast-forwarded runs against this strategy are therefore equivalent
/// to the reference path in distribution only — the cross-validation mirrors
/// the Sparse/DensePerNode sampling contract.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    t: u64,
    p_gb: f64,
    p_bg: f64,
    frac_bad: f64,
    bad: bool,
    rng: Xoshiro256,
    offset_seed: u64,
    last_slot: Option<u64>,
}

impl GilbertElliott {
    /// `p_gb`: per-slot probability of entering a burst; `p_bg`: per-slot
    /// probability of leaving one; `frac_bad`: fraction of channels disturbed
    /// while in a burst.
    pub fn new(t: u64, p_gb: f64, p_bg: f64, frac_bad: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_gb) && (0.0..=1.0).contains(&p_bg));
        assert!((0.0..=1.0).contains(&frac_bad));
        Self {
            t,
            p_gb,
            p_bg,
            frac_bad,
            bad: false,
            rng: Xoshiro256::seeded(derive_seed(seed, 1)),
            offset_seed: derive_seed(seed, 2),
            last_slot: None,
        }
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        }
    }

    fn step(&mut self) {
        let flip = if self.bad { self.p_bg } else { self.p_gb };
        if self.rng.gen_bool(flip) {
            self.bad = !self.bad;
        }
    }

    /// Steps until (and including) the next flip out of the current state:
    /// `1 + Geometric(flip probability)`, saturating to "never".
    fn sojourn(&mut self, flip: f64) -> u64 {
        if flip >= 1.0 {
            return 1;
        }
        geometric_gap(&mut self.rng, (1.0 - flip).ln()).saturating_add(1)
    }

    /// Advance the chain `k` steps via sojourn jumps, counting how many of
    /// the `k` post-step states are bad.
    fn advance_steps(&mut self, mut k: u64) -> u64 {
        let mut bad_states: u64 = 0;
        while k > 0 {
            let flip = if self.bad { self.p_bg } else { self.p_gb };
            if flip <= 0.0 {
                // The current state is absorbing.
                if self.bad {
                    bad_states += k;
                }
                return bad_states;
            }
            let s = self.sojourn(flip);
            if s > k {
                // No flip within the remaining steps; the discarded sojourn
                // residual is free by memorylessness.
                if self.bad {
                    bad_states += k;
                }
                return bad_states;
            }
            // s − 1 steps in the current state, then the flip lands step s.
            if self.bad {
                bad_states += s - 1;
            }
            self.bad = !self.bad;
            if self.bad {
                bad_states += 1;
            }
            k -= s;
        }
        bad_states
    }
}

impl Adversary for GilbertElliott {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        // Advance the chain by the number of elapsed slots (robust to the
        // engine skipping calls after bankruptcy).
        let steps = match self.last_slot {
            None => 1,
            Some(last) => slot.saturating_sub(last),
        };
        self.last_slot = Some(slot);
        for _ in 0..steps {
            self.step();
        }
        if !self.bad {
            return JamSet::Empty;
        }
        let k = frac_to_count(self.frac_bad, channels);
        if k == 0 {
            JamSet::Empty
        } else if k >= channels {
            JamSet::All
        } else {
            let start = slot_offset(self.offset_seed, slot, channels);
            JamSet::Window { start, len: k }
        }
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn jam_span(&mut self, start: u64, len: u64, channels: u64, budget: u64) -> SpanCharge {
        if len == 0 {
            return SpanCharge::default();
        }
        // Unqueried catch-up steps (per-slot `jam` advances slot − last
        // steps on its first call of a gap), then one queried step per slot.
        let catch_up = match self.last_slot {
            None => 0,
            Some(last) => start.saturating_sub(last).saturating_sub(1),
        };
        self.advance_steps(catch_up);
        let bad_slots = self.advance_steps(len);
        self.last_slot = Some(start.saturating_add(len) - 1);
        let want = bad_slots as u128 * frac_to_count(self.frac_bad, channels) as u128;
        SpanCharge {
            spent: want.min(budget as u128) as u64,
        }
    }

    fn name(&self) -> &'static str {
        "gilbert-elliott"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_fraction_matches_theory() {
        let mut adv = GilbertElliott::new(u64::MAX, 0.02, 0.08, 1.0, 7);
        let slots = 200_000u64;
        let mut bad_slots = 0u64;
        for slot in 0..slots {
            if adv.jam(slot, 8) != JamSet::Empty {
                bad_slots += 1;
            }
        }
        let measured = bad_slots as f64 / slots as f64;
        let expected = adv.stationary_bad(); // 0.2
        assert!(
            (measured - expected).abs() < 0.03,
            "measured {measured:.3} vs stationary {expected:.3}"
        );
    }

    #[test]
    fn bursts_are_bursty() {
        // With small transition probabilities, consecutive slots should be
        // highly correlated: count state flips, which should be far fewer
        // than for i.i.d. slots.
        let mut adv = GilbertElliott::new(u64::MAX, 0.01, 0.01, 1.0, 9);
        let slots = 50_000u64;
        let mut prev = false;
        let mut flips = 0u64;
        for slot in 0..slots {
            let bad = adv.jam(slot, 8) != JamSet::Empty;
            if bad != prev {
                flips += 1;
            }
            prev = bad;
        }
        // i.i.d. with p = 0.5 would flip ~25_000 times; the chain flips
        // ~ slots * 0.01 = 500 times.
        assert!(flips < 2_000, "flips = {flips}, interference is not bursty");
    }

    #[test]
    fn zero_transition_never_jams() {
        let mut adv = GilbertElliott::new(100, 0.0, 0.5, 1.0, 1);
        for slot in 0..100 {
            assert_eq!(adv.jam(slot, 8), JamSet::Empty);
        }
        assert_eq!(adv.stationary_bad(), 0.0);
    }

    /// The sojourn-jump span must match per-slot stepping in distribution:
    /// same mean occupancy (hence mean charge) over many seeds.
    #[test]
    fn jam_span_matches_per_slot_distribution() {
        let (p_gb, p_bg, channels, span) = (0.03, 0.07, 8u64, 4_000u64);
        let seeds = 400u64;
        let mut per_slot_total = 0u64;
        let mut span_total = 0u64;
        for seed in 0..seeds {
            let mut a = GilbertElliott::new(u64::MAX / 2, p_gb, p_bg, 1.0, seed);
            for slot in 0..span {
                per_slot_total += a.jam(slot, channels).count(channels);
            }
            let mut b = GilbertElliott::new(u64::MAX / 2, p_gb, p_bg, 1.0, seed + 10_000);
            span_total += b.jam_span(0, span, channels, u64::MAX / 2).spent;
        }
        let a_mean = per_slot_total as f64 / seeds as f64;
        let b_mean = span_total as f64 / seeds as f64;
        let rel = (a_mean - b_mean).abs() / a_mean;
        assert!(
            rel < 0.05,
            "per-slot {a_mean:.0} vs sojourn {b_mean:.0} diverge by {rel:.3}"
        );
        // And both sit near the stationary expectation.
        let expect = span as f64 * p_gb / (p_gb + p_bg) * channels as f64;
        assert!(
            (a_mean - expect).abs() / expect < 0.1,
            "{a_mean} vs {expect}"
        );
    }

    /// After a span, subsequent per-slot queries must pick up from a valid
    /// chain state (no double-advancing through the catch-up logic).
    #[test]
    fn jam_span_then_per_slot_remains_consistent() {
        let mut adv = GilbertElliott::new(u64::MAX / 2, 1.0, 0.0, 1.0, 3);
        // p_gb = 1, p_bg = 0: enters bad at the first step and stays.
        // The first step already flips to bad (p_gb = 1), exactly like the
        // per-slot path where `jam(0)` steps once before querying.
        let c = adv.jam_span(0, 100, 8, u64::MAX / 2);
        assert_eq!(c.spent, 8 * 100);
        for slot in 100..110 {
            assert_eq!(adv.jam(slot, 8), JamSet::All, "slot {slot}");
        }
        // Budget cap applies.
        let mut capped = GilbertElliott::new(10, 1.0, 0.0, 1.0, 4);
        assert_eq!(capped.jam_span(0, 100, 8, 10).spent, 10);
    }

    #[test]
    fn partial_fraction_in_bad_state() {
        let mut adv = GilbertElliott::new(u64::MAX, 1.0, 0.0, 0.5, 3);
        // p_gb = 1 means we enter the bad state immediately and stay.
        for slot in 0..10 {
            assert_eq!(adv.jam(slot, 16).count(16), 8);
        }
    }
}
