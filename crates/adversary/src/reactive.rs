//! Adaptive (reactive) jamming strategies — the Section 8 future-work model
//! and the reactivity spectrum of the follow-up paper (arXiv:2001.03936).
//!
//! These implement [`AdaptiveAdversary`]: unlike every strategy in the rest
//! of this crate, they may condition on the band activity of previous slots.
//! The paper conjectures its protocols survive such adversaries essentially
//! unchanged; experiment E13 and the `adaptive-grid` scenario measure it.
//! The structural reason the conjecture holds for *these* protocols is
//! simple and worth stating: every node picks a **fresh uniformly random
//! channel every slot**, so yesterday's busy set carries zero information
//! about today's — reactive energy is spent exactly like random energy.
//!
//! [`ReactiveJammer`] is a **parameterized family** spanning the reactivity
//! axes the follow-up work sweeps: a reactivity *window* `w` (how many past
//! slots of sensing she aggregates), a per-slot *channel cap* `c` (how much
//! of the band she can blanket at once), and a *trigger threshold* (how much
//! observed activity it takes to wake her). `w = 1, threshold = 1` recovers
//! the classic "re-jam last slot's busy set" reactive jammer of Richa et al.

use rcb_sim::{AdaptiveAdversary, BandObservation, JamSet, SpanCharge, Xoshiro256};
use std::collections::VecDeque;

/// The parameterized reactive family: jams, each slot, the channels that
/// carried a transmission within the last `window` observed slots (capped at
/// `max_channels` per slot, lowest-indexed first), but only while at least
/// `threshold` distinct in-range channels are busy within the window.
///
/// [`ReactiveJammer::new`] builds the classic full-band reactive jammer
/// (`window = 1`, `threshold = 1`: re-jam exactly last slot's busy set);
/// [`ReactiveJammer::with_params`] opens the full `w × c × threshold` grid
/// that the `adaptive-grid` scenario sweeps.
#[derive(Clone, Debug)]
pub struct ReactiveJammer {
    t: u64,
    window: u64,
    max_channels: u64,
    threshold: u64,
    /// Busy sets of the last `window` observations, oldest first. Kept raw
    /// (unfiltered) because the in-use channel count can change between
    /// segments; filtering happens at jam time.
    history: VecDeque<Vec<u64>>,
}

impl ReactiveJammer {
    /// Classic reactive jammer: re-jam the previous slot's busy set
    /// (reactivity window 1, trigger threshold 1).
    pub fn new(t: u64, max_channels: u64) -> Self {
        Self::with_params(t, 1, max_channels, 1)
    }

    /// The full family: remember the last `window ≥ 1` observations, jam up
    /// to `max_channels ≥ 1` per slot, and only act while the window holds
    /// at least `threshold ≥ 1` distinct busy channels.
    pub fn with_params(t: u64, window: u64, max_channels: u64, threshold: u64) -> Self {
        assert!(window > 0, "reactivity window must be at least 1");
        assert!(max_channels > 0, "channel cap must be at least 1");
        assert!(threshold > 0, "trigger threshold must be at least 1");
        Self {
            t,
            window,
            max_channels,
            threshold,
            history: VecDeque::with_capacity(window.min(64) as usize),
        }
    }

    /// Slide one observation into the window.
    fn observe(&mut self, busy: &[u64]) {
        if self.history.len() as u64 == self.window {
            self.history.pop_front();
        }
        self.history.push_back(busy.to_vec());
    }

    /// Sorted, distinct, in-range channels busy anywhere in the window.
    fn hot_channels(&self, channels: u64) -> Vec<u64> {
        let mut hot: Vec<u64> = self
            .history
            .iter()
            .flatten()
            .copied()
            .filter(|&ch| ch < channels)
            .collect();
        hot.sort_unstable();
        hot.dedup();
        hot
    }
}

impl AdaptiveAdversary for ReactiveJammer {
    fn jam(&mut self, _slot: u64, channels: u64, prev: &BandObservation) -> JamSet {
        self.observe(&prev.busy);
        let hot = self.hot_channels(channels);
        if (hot.len() as u64) < self.threshold {
            return JamSet::Empty;
        }
        JamSet::from_channels(
            hot.into_iter()
                .take(self.max_channels as usize)
                .collect::<Vec<u64>>(),
        )
    }

    fn budget(&self) -> u64 {
        self.t
    }

    /// Closed form over an idle span: only the span's first `window` slots
    /// can still draw on pre-span activity — after that the window holds
    /// nothing but silence, so the rest of the span charges zero. O(window)
    /// instead of O(len), and exactly equal (charge *and* window state) to
    /// the per-slot loop.
    fn jam_span(
        &mut self,
        start: u64,
        len: u64,
        channels: u64,
        budget: u64,
        first_prev: &BandObservation,
    ) -> SpanCharge {
        let silent = BandObservation {
            channels,
            busy: Vec::new(),
        };
        let active = len.min(self.window);
        let mut remaining = budget;
        let mut spent = 0u64;
        for slot in start..start + active {
            if remaining == 0 {
                // Bankrupt: the per-slot rule stops calling `jam`, so the
                // window state freezes here too.
                return SpanCharge { spent };
            }
            let prev = if slot == start { first_prev } else { &silent };
            let take = self
                .jam(slot, channels, prev)
                .count(channels)
                .min(remaining);
            remaining -= take;
            spent += take;
        }
        if remaining > 0 {
            // The tail's per-slot calls would each push a silent observation;
            // after `window` pushes the state is saturated, so `min(tail,
            // window)` pushes reproduce it exactly.
            for _ in 0..(len - active).min(self.window) {
                self.observe(&[]);
            }
        }
        SpanCharge { spent }
    }

    fn name(&self) -> &'static str {
        "reactive"
    }
}

/// A reactive jammer with memory: maintains an activity score per channel
/// (exponential decay + bump on observed traffic) and jams the `k`
/// currently hottest channels. Models a sensing jammer that tries to learn
/// favoured frequencies; against uniform channel hopping there is nothing to
/// learn, which is the point of E13.
///
/// Keeps the default (per-slot loop) [`AdaptiveAdversary::jam_span`]: its
/// score decay and tie-break RNG advance every slot, so an idle span costs
/// O(len) here — exact, just not accelerated.
#[derive(Clone, Debug)]
pub struct HotspotJammer {
    t: u64,
    k: u64,
    decay: f64,
    scores: Vec<f64>,
    rng: Xoshiro256,
}

impl HotspotJammer {
    /// `k`: channels jammed per slot; `decay ∈ (0, 1)`: per-slot score decay.
    pub fn new(t: u64, k: u64, decay: f64, seed: u64) -> Self {
        assert!(k > 0);
        assert!((0.0..1.0).contains(&decay));
        Self {
            t,
            k,
            decay,
            scores: Vec::new(),
            rng: Xoshiro256::seeded(seed),
        }
    }
}

impl AdaptiveAdversary for HotspotJammer {
    fn jam(&mut self, _slot: u64, channels: u64, prev: &BandObservation) -> JamSet {
        let c = channels as usize;
        if self.scores.len() < c {
            self.scores.resize(c, 0.0);
        }
        for s in &mut self.scores[..c] {
            *s *= self.decay;
        }
        for &ch in &prev.busy {
            if (ch as usize) < c {
                self.scores[ch as usize] += 1.0;
            }
        }
        // Pick the k hottest channels (ties broken randomly so the jammer
        // does not degenerate to a fixed prefix on a cold board).
        let mut order: Vec<u64> = (0..channels).collect();
        self.rng.shuffle(&mut order);
        order.sort_by(|&a, &b| {
            self.scores[b as usize]
                .partial_cmp(&self.scores[a as usize])
                .expect("scores are finite")
        });
        order.truncate(self.k.min(channels) as usize);
        JamSet::from_channels(order)
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn name(&self) -> &'static str {
        "hotspot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(channels: u64, busy: &[u64]) -> BandObservation {
        BandObservation {
            channels,
            busy: busy.to_vec(),
        }
    }

    #[test]
    fn reactive_jams_exactly_previous_busy_set() {
        let mut adv = ReactiveJammer::new(1000, 64);
        let set = adv.jam(1, 8, &obs(8, &[2, 5]));
        assert!(set.contains(2, 8) && set.contains(5, 8));
        assert_eq!(set.count(8), 2);
    }

    #[test]
    fn reactive_is_silent_on_quiet_band() {
        let mut adv = ReactiveJammer::new(1000, 64);
        assert_eq!(adv.jam(0, 8, &obs(8, &[])), JamSet::Empty);
    }

    #[test]
    fn reactive_respects_channel_cap_and_band_bounds() {
        let mut adv = ReactiveJammer::new(1000, 2);
        // Channel 9 is out of range for a 8-channel slot; cap keeps 2 lowest.
        let set = adv.jam(1, 8, &obs(16, &[1, 3, 6, 9]));
        assert_eq!(set.count(8), 2);
        assert!(set.contains(1, 8) && set.contains(3, 8));
        assert!(!set.contains(6, 8) && !set.contains(9, 8));
    }

    #[test]
    fn window_remembers_past_busy_sets() {
        let mut adv = ReactiveJammer::with_params(1000, 3, 64, 1);
        adv.jam(0, 8, &obs(8, &[2]));
        adv.jam(1, 8, &obs(8, &[5]));
        // Slot 2 sees silence, but channels 2 and 5 are still in the window.
        let set = adv.jam(2, 8, &obs(8, &[]));
        assert!(set.contains(2, 8) && set.contains(5, 8));
        assert_eq!(set.count(8), 2);
        // Two more silent slots flush the window (3 observations deep).
        adv.jam(3, 8, &obs(8, &[]));
        assert_eq!(adv.jam(4, 8, &obs(8, &[])), JamSet::Empty);
    }

    #[test]
    fn window_one_matches_the_classic_jammer() {
        // `new` and `with_params(w=1, θ=1)` must behave identically.
        let mut classic = ReactiveJammer::new(1000, 4);
        let mut family = ReactiveJammer::with_params(1000, 1, 4, 1);
        for (slot, busy) in [vec![3u64, 7], vec![], vec![1, 2, 5, 6, 7]]
            .iter()
            .enumerate()
        {
            let o = obs(8, busy);
            assert_eq!(
                classic.jam(slot as u64, 8, &o),
                family.jam(slot as u64, 8, &o)
            );
        }
    }

    #[test]
    fn threshold_gates_the_trigger() {
        let mut adv = ReactiveJammer::with_params(1000, 2, 64, 3);
        // One then two distinct busy channels in the window: below threshold.
        assert_eq!(adv.jam(0, 8, &obs(8, &[4])), JamSet::Empty);
        assert_eq!(adv.jam(1, 8, &obs(8, &[6])), JamSet::Empty);
        // Third distinct channel arrives; window now holds {4 (evicted), 6, 1, 3}?
        // Window is 2 deep: holds {6} and {1, 3} -> 3 distinct, triggers.
        let set = adv.jam(2, 8, &obs(8, &[1, 3]));
        assert_eq!(set.count(8), 3);
        assert!(set.contains(1, 8) && set.contains(3, 8) && set.contains(6, 8));
    }

    /// The closed-form `jam_span` must equal the per-slot reference loop —
    /// spend and subsequent behaviour — under randomized interleavings of
    /// executed slots (random observations) and silent spans.
    #[test]
    fn jam_span_equals_per_slot_loop_under_interleaving() {
        let params: [(u64, u64, u64); 4] = [(1, 8, 1), (4, 4, 1), (16, 8, 3), (3, 2, 2)];
        for (window, cap, threshold) in params {
            for seed in [11u64, 12, 13] {
                for budget in [60u64, 1_000_000] {
                    let channels = 8u64;
                    let mut rng = Xoshiro256::seeded(seed * 97 + window);
                    let mut a = ReactiveJammer::with_params(budget, window, cap, threshold);
                    let mut b = ReactiveJammer::with_params(budget, window, cap, threshold);
                    let (mut rem_a, mut rem_b) = (budget, budget);
                    let mut slot = 0u64;
                    let mut last = BandObservation::default();
                    for chunk in 0..30 {
                        if chunk % 2 == 0 {
                            // Executed slots with random observations: both
                            // adversaries step per-slot and must agree.
                            for _ in 0..1 + rng.gen_range(6) {
                                let mut busy: Vec<u64> =
                                    (0..channels).filter(|_| rng.gen_bool(0.3)).collect();
                                busy.sort_unstable();
                                let o = BandObservation {
                                    channels,
                                    busy: busy.clone(),
                                };
                                if rem_a > 0 {
                                    let ja = a.jam(slot, channels, &o);
                                    let jb = b.jam(slot, channels, &o);
                                    assert_eq!(ja, jb, "w={window} slot {slot}");
                                    let take = ja.count(channels).min(rem_a);
                                    rem_a -= take;
                                    rem_b -= take;
                                }
                                last = o;
                                slot += 1;
                            }
                        } else {
                            // A silent span: `a` takes the per-slot reference
                            // (default-loop semantics), `b` the closed form.
                            let len = 1 + rng.gen_range(80);
                            let silent = BandObservation {
                                channels,
                                busy: Vec::new(),
                            };
                            let mut ref_spent = 0u64;
                            for s in slot..slot + len {
                                if rem_a == 0 {
                                    break;
                                }
                                let prev = if s == slot { &last } else { &silent };
                                let take = a.jam(s, channels, prev).count(channels).min(rem_a);
                                rem_a -= take;
                                ref_spent += take;
                            }
                            let charge = b.jam_span(slot, len, channels, rem_b, &last);
                            assert_eq!(charge.spent, ref_spent, "w={window} span at {slot}");
                            rem_b -= charge.spent;
                            assert_eq!(rem_a, rem_b);
                            slot += len;
                            last = silent;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn jam_span_freezes_state_at_bankruptcy() {
        // Budget covers only the first span slot; the window must stop
        // sliding exactly where the per-slot rule would stop calling `jam`.
        let make = || ReactiveJammer::with_params(2, 4, 64, 1);
        let first = obs(8, &[0, 1]);
        let silent = obs(8, &[]);
        let mut by_span = make();
        let charge = by_span.jam_span(0, 100, 8, 2, &first);
        let mut by_slot = make();
        let mut rem = 2u64;
        for s in 0..100u64 {
            if rem == 0 {
                break;
            }
            let prev = if s == 0 { &first } else { &silent };
            rem -= by_slot.jam(s, 8, prev).count(8).min(rem);
        }
        assert_eq!(charge.spent, 2);
        assert_eq!(rem, 0);
        // Both must now behave identically on the next observed slot.
        let next = obs(8, &[3]);
        assert_eq!(by_span.jam(100, 8, &next), by_slot.jam(100, 8, &next));
        assert_eq!(by_span.history, by_slot.history);
    }

    #[test]
    fn hotspot_tracks_recurring_traffic() {
        let mut adv = HotspotJammer::new(1000, 1, 0.5, 7);
        // Channel 4 is busy repeatedly; after a few slots it must be the
        // jammed one.
        for slot in 0..5 {
            adv.jam(slot, 8, &obs(8, &[4]));
        }
        let set = adv.jam(5, 8, &obs(8, &[4]));
        assert!(set.contains(4, 8), "hotspot should lock onto channel 4");
        assert_eq!(set.count(8), 1);
    }

    #[test]
    fn hotspot_jams_k_channels() {
        let mut adv = HotspotJammer::new(1000, 3, 0.9, 8);
        let set = adv.jam(0, 16, &obs(16, &[]));
        assert_eq!(set.count(16), 3, "cold board still burns k channels");
    }
}
