//! Adaptive (reactive) jamming strategies — the Section 8 future-work model.
//!
//! These implement [`AdaptiveAdversary`]: unlike every strategy in the rest
//! of this crate, they may condition on the band activity of previous slots.
//! The paper conjectures its protocols survive such adversaries essentially
//! unchanged; experiment E13 measures it. The structural reason the
//! conjecture holds for *these* protocols is simple and worth stating: every
//! node picks a **fresh uniformly random channel every slot**, so yesterday's
//! busy set carries zero information about today's — reactive energy is
//! spent exactly like random energy.

use rcb_sim::{AdaptiveAdversary, BandObservation, JamSet, Xoshiro256};

/// Jams, in each slot, every channel that carried a transmission in the
/// previous slot (capped at `max_channels` per slot, lowest first) — the
/// classic full-band reactive jammer.
#[derive(Clone, Debug)]
pub struct ReactiveJammer {
    t: u64,
    max_channels: u64,
}

impl ReactiveJammer {
    pub fn new(t: u64, max_channels: u64) -> Self {
        assert!(max_channels > 0);
        Self { t, max_channels }
    }
}

impl AdaptiveAdversary for ReactiveJammer {
    fn jam(&mut self, _slot: u64, channels: u64, prev: &BandObservation) -> JamSet {
        if prev.busy.is_empty() {
            return JamSet::Empty;
        }
        let take: Vec<u64> = prev
            .busy
            .iter()
            .copied()
            .filter(|&ch| ch < channels)
            .take(self.max_channels as usize)
            .collect();
        JamSet::from_channels(take)
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn name(&self) -> &'static str {
        "reactive"
    }
}

/// A reactive jammer with memory: maintains an activity score per channel
/// (exponential decay + bump on observed traffic) and jams the `k`
/// currently hottest channels. Models a sensing jammer that tries to learn
/// favoured frequencies; against uniform channel hopping there is nothing to
/// learn, which is the point of E13.
#[derive(Clone, Debug)]
pub struct HotspotJammer {
    t: u64,
    k: u64,
    decay: f64,
    scores: Vec<f64>,
    rng: Xoshiro256,
}

impl HotspotJammer {
    /// `k`: channels jammed per slot; `decay ∈ (0, 1)`: per-slot score decay.
    pub fn new(t: u64, k: u64, decay: f64, seed: u64) -> Self {
        assert!(k > 0);
        assert!((0.0..1.0).contains(&decay));
        Self {
            t,
            k,
            decay,
            scores: Vec::new(),
            rng: Xoshiro256::seeded(seed),
        }
    }
}

impl AdaptiveAdversary for HotspotJammer {
    fn jam(&mut self, _slot: u64, channels: u64, prev: &BandObservation) -> JamSet {
        let c = channels as usize;
        if self.scores.len() < c {
            self.scores.resize(c, 0.0);
        }
        for s in &mut self.scores[..c] {
            *s *= self.decay;
        }
        for &ch in &prev.busy {
            if (ch as usize) < c {
                self.scores[ch as usize] += 1.0;
            }
        }
        // Pick the k hottest channels (ties broken randomly so the jammer
        // does not degenerate to a fixed prefix on a cold board).
        let mut order: Vec<u64> = (0..channels).collect();
        self.rng.shuffle(&mut order);
        order.sort_by(|&a, &b| {
            self.scores[b as usize]
                .partial_cmp(&self.scores[a as usize])
                .expect("scores are finite")
        });
        order.truncate(self.k.min(channels) as usize);
        JamSet::from_channels(order)
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn name(&self) -> &'static str {
        "hotspot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(channels: u64, busy: &[u64]) -> BandObservation {
        BandObservation {
            channels,
            busy: busy.to_vec(),
        }
    }

    #[test]
    fn reactive_jams_exactly_previous_busy_set() {
        let mut adv = ReactiveJammer::new(1000, 64);
        let set = adv.jam(1, 8, &obs(8, &[2, 5]));
        assert!(set.contains(2, 8) && set.contains(5, 8));
        assert_eq!(set.count(8), 2);
    }

    #[test]
    fn reactive_is_silent_on_quiet_band() {
        let mut adv = ReactiveJammer::new(1000, 64);
        assert_eq!(adv.jam(0, 8, &obs(8, &[])), JamSet::Empty);
    }

    #[test]
    fn reactive_respects_channel_cap_and_band_bounds() {
        let mut adv = ReactiveJammer::new(1000, 2);
        // Channel 9 is out of range for a 8-channel slot; cap keeps 2 lowest.
        let set = adv.jam(1, 8, &obs(16, &[1, 3, 6, 9]));
        assert_eq!(set.count(8), 2);
        assert!(set.contains(1, 8) && set.contains(3, 8));
        assert!(!set.contains(6, 8) && !set.contains(9, 8));
    }

    #[test]
    fn hotspot_tracks_recurring_traffic() {
        let mut adv = HotspotJammer::new(1000, 1, 0.5, 7);
        // Channel 4 is busy repeatedly; after a few slots it must be the
        // jammed one.
        for slot in 0..5 {
            adv.jam(slot, 8, &obs(8, &[4]));
        }
        let set = adv.jam(5, 8, &obs(8, &[4]));
        assert!(set.contains(4, 8), "hotspot should lock onto channel 4");
        assert_eq!(set.count(8), 1);
    }

    #[test]
    fn hotspot_jams_k_channels() {
        let mut adv = HotspotJammer::new(1000, 3, 0.9, 8);
        let set = adv.jam(0, 16, &obs(16, &[]));
        assert_eq!(set.count(16), 3, "cold board still burns k channels");
    }
}
