//! Exact-k random-subset jamming.

use crate::constant_demand_charge;
use rcb_sim::{derive_seed, Adversary, JamSet, SpanCharge, Xoshiro256};

/// Jams exactly `k` distinct channels per slot, drawn uniformly at random
/// (Floyd's sampling algorithm) from a per-slot derived stream, until the
/// budget runs out.
///
/// Statistically this is the same per-slot damage as [`UniformFraction`]
/// (`frac = k/C`) against channel-hopping protocols, but the jammed set is
/// an arbitrary subset rather than a contiguous window — it exercises the
/// `List`/`Mask` jam-set paths and models frequency-agile jammers that can
/// retune each antenna independently. Each slot's subset comes from its own
/// `derive_seed(seed, slot)` stream, so the strategy carries no sequential
/// state and its constant-demand [`jam_span`](Adversary::jam_span) is exact.
///
/// [`UniformFraction`]: crate::UniformFraction
#[derive(Clone, Debug)]
pub struct RandomSubset {
    t: u64,
    k: u64,
    seed: u64,
    scratch: Vec<u64>,
}

impl RandomSubset {
    pub fn new(t: u64, k: u64, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            t,
            k,
            seed,
            scratch: Vec::with_capacity(k as usize),
        }
    }

    /// Floyd's algorithm: a uniform `k`-subset of `[0, c)` in `O(k)` draws
    /// from the slot's private stream.
    fn sample(&mut self, slot: u64, c: u64) -> Vec<u64> {
        let mut rng = Xoshiro256::seeded(derive_seed(self.seed, slot));
        let k = self.k.min(c);
        self.scratch.clear();
        for j in (c - k)..c {
            let t = rng.gen_range(j + 1);
            if self.scratch.contains(&t) {
                self.scratch.push(j);
            } else {
                self.scratch.push(t);
            }
        }
        self.scratch.clone()
    }
}

impl Adversary for RandomSubset {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        if self.k >= channels {
            return JamSet::All;
        }
        JamSet::from_channels(self.sample(slot, channels))
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn jam_span(&mut self, _start: u64, len: u64, channels: u64, budget: u64) -> SpanCharge {
        // Exact: always exactly `min(k, channels)` distinct channels.
        constant_demand_charge(self.k.min(channels), len, budget)
    }

    fn name(&self) -> &'static str {
        "random-subset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jams_exactly_k_channels() {
        let mut adv = RandomSubset::new(1000, 5, 1);
        for slot in 0..200 {
            assert_eq!(adv.jam(slot, 32).count(32), 5, "slot {slot}");
        }
    }

    #[test]
    fn k_at_least_c_is_all() {
        let mut adv = RandomSubset::new(1000, 64, 2);
        assert_eq!(adv.jam(0, 16), JamSet::All);
    }

    #[test]
    fn subsets_are_uniform_per_channel() {
        // Each channel should be hit with probability k/C.
        let (k, c) = (4u64, 16u64);
        let mut adv = RandomSubset::new(u64::MAX, k, 3);
        let trials = 40_000u64;
        let mut hits = vec![0u64; c as usize];
        for slot in 0..trials {
            let set = adv.jam(slot, c);
            for ch in 0..c {
                if set.contains(ch, c) {
                    hits[ch as usize] += 1;
                }
            }
        }
        let p = k as f64 / c as f64;
        let sd = (trials as f64 * p * (1.0 - p)).sqrt();
        for (ch, &h) in hits.iter().enumerate() {
            let z = (h as f64 - trials as f64 * p) / sd;
            assert!(z.abs() < 5.0, "channel {ch}: z = {z:.2}");
        }
    }

    #[test]
    fn subsets_vary_across_slots() {
        let mut adv = RandomSubset::new(1000, 3, 4);
        let a = format!("{:?}", adv.jam(0, 64));
        let distinct = (1..32)
            .map(|s| format!("{:?}", adv.jam(s, 64)))
            .filter(|x| *x != a)
            .count();
        assert!(distinct > 25, "subsets should differ across slots");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_k() {
        RandomSubset::new(10, 0, 0);
    }
}
