//! Schedule-targeted jamming: concentrate energy on designated slot spans.
//!
//! An oblivious adversary knows the algorithm, and the algorithms' schedules
//! (iteration boundaries of `MultiCast`, the `(i, j)`-phase map of
//! `MultiCastAdv`) are deterministic functions of the slot index. Eve can
//! therefore pre-compute *which* slots matter and jam only those — e.g. only
//! phase `j = lg n − 1` of each `MultiCastAdv` epoch, the single "good" phase
//! whose disruption Section 6.1 identifies as her best strategy. The
//! `SpanJammer` takes an iterator of [`JamSpan`]s (produced by
//! `rcb-harness` from a protocol's public schedule) and jams a fraction of
//! the band inside each span.

use crate::{frac_to_count, slot_offset};
use rcb_sim::{Adversary, JamSet, SpanCharge};

/// A half-open slot interval `[start, end)` to jam, with the fraction of
/// channels to jam inside it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JamSpan {
    pub start: u64,
    pub end: u64,
    pub frac: f64,
}

impl JamSpan {
    pub fn new(start: u64, end: u64, frac: f64) -> Self {
        assert!(start < end, "span must be non-empty");
        assert!((0.0..=1.0).contains(&frac));
        Self { start, end, frac }
    }
}

/// Jams only within the given spans (which must be sorted by `start` and
/// non-overlapping), a window of `frac · channels` at a per-slot offset
/// derived from `(seed, slot)`. The span source is an iterator so that
/// infinite schedules (every iteration of `MultiCast`, every epoch of
/// `MultiCastAdv`) can be targeted lazily. The only sequential state is the
/// span cursor, which [`jam_span`](Adversary::jam_span) advances exactly as
/// per-slot queries would — the batched charge is exact.
pub struct SpanJammer<I: Iterator<Item = JamSpan>> {
    t: u64,
    spans: I,
    current: Option<JamSpan>,
    seed: u64,
    last_slot: Option<u64>,
}

impl<I: Iterator<Item = JamSpan>> SpanJammer<I> {
    pub fn new(t: u64, spans: I, seed: u64) -> Self {
        Self {
            t,
            spans,
            current: None,
            seed,
            last_slot: None,
        }
    }

    /// Advance the cursor to the first span ending after `slot`, if any.
    fn seek(&mut self, slot: u64) -> Option<JamSpan> {
        loop {
            match self.current {
                Some(span) if span.end > slot => return Some(span),
                _ => match self.spans.next() {
                    Some(next) => self.current = Some(next),
                    None => {
                        self.current = None;
                        return None;
                    }
                },
            }
        }
    }
}

/// Convenience constructor from a finite list of spans.
impl SpanJammer<std::vec::IntoIter<JamSpan>> {
    pub fn from_spans(t: u64, spans: Vec<JamSpan>, seed: u64) -> Self {
        // Validate ordering once up front.
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start, "spans must be sorted and disjoint");
        }
        Self::new(t, spans.into_iter(), seed)
    }
}

impl<I: Iterator<Item = JamSpan>> Adversary for SpanJammer<I> {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        if let Some(last) = self.last_slot {
            debug_assert!(slot > last, "SpanJammer expects strictly increasing slots");
        }
        self.last_slot = Some(slot);
        let Some(span) = self.seek(slot) else {
            return JamSet::Empty;
        };
        if slot < span.start {
            return JamSet::Empty;
        }
        let k = frac_to_count(span.frac, channels);
        if k == 0 {
            JamSet::Empty
        } else if k >= channels {
            JamSet::All
        } else {
            let start = slot_offset(self.seed, slot, channels);
            JamSet::Window { start, len: k }
        }
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn jam_span(&mut self, start: u64, len: u64, channels: u64, budget: u64) -> SpanCharge {
        // Exact: walk the O(#overlapped spans) jam spans intersecting
        // [start, start + len), charging `frac · channels` per covered slot.
        // The cursor ends on the first span reaching past the range, exactly
        // where per-slot queries would leave it.
        let end = start.saturating_add(len);
        if let Some(last) = self.last_slot {
            debug_assert!(start > last, "SpanJammer expects strictly increasing slots");
        }
        if len == 0 {
            return SpanCharge::default();
        }
        self.last_slot = Some(end - 1);
        let mut want: u128 = 0;
        let mut cursor = start;
        while let Some(span) = self.seek(cursor) {
            if span.start >= end {
                break; // keep it current for future slots
            }
            let lo = span.start.max(cursor);
            let hi = span.end.min(end);
            want += (hi - lo) as u128 * frac_to_count(span.frac, channels) as u128;
            if span.end >= end {
                break;
            }
            cursor = span.end;
        }
        SpanCharge {
            spent: want.min(budget as u128) as u64,
        }
    }

    fn name(&self) -> &'static str {
        "span-targeted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jams_only_inside_spans() {
        let spans = vec![JamSpan::new(10, 20, 1.0), JamSpan::new(30, 35, 1.0)];
        let mut adv = SpanJammer::from_spans(1000, spans, 1);
        for slot in 0..50 {
            let jammed = adv.jam(slot, 8) != JamSet::Empty;
            let expect = (10..20).contains(&slot) || (30..35).contains(&slot);
            assert_eq!(jammed, expect, "slot {slot}");
        }
    }

    #[test]
    fn fraction_inside_span() {
        let spans = vec![JamSpan::new(0, 100, 0.5)];
        let mut adv = SpanJammer::from_spans(1000, spans, 2);
        assert_eq!(adv.jam(0, 16).count(16), 8);
        assert_eq!(adv.jam(1, 16).count(16), 8);
    }

    #[test]
    fn works_with_infinite_span_iterators() {
        // Every 100-slot window jams its first 10 slots, forever.
        let spans = (0u64..).map(|k| JamSpan {
            start: k * 100,
            end: k * 100 + 10,
            frac: 1.0,
        });
        let mut adv = SpanJammer::new(u64::MAX, spans, 3);
        let mut jammed_slots = 0;
        for slot in 0..1000 {
            if adv.jam(slot, 4) != JamSet::Empty {
                jammed_slots += 1;
            }
        }
        assert_eq!(jammed_slots, 100, "10 slots per 100, over 1000 slots");
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn rejects_overlapping_spans() {
        SpanJammer::from_spans(
            10,
            vec![JamSpan::new(0, 10, 1.0), JamSpan::new(5, 15, 1.0)],
            0,
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_span() {
        JamSpan::new(5, 5, 1.0);
    }
}
