//! Jam a fixed fraction of the band every slot.

use crate::{constant_demand_charge, frac_to_count, slot_offset};
use rcb_sim::{Adversary, JamSet, SpanCharge};

/// Jams `⌈frac · channels⌉` channels in every slot, as a contiguous window at
/// a per-slot random offset, until the budget is exhausted.
///
/// This is the canonical "effective disruption" shape of the paper's
/// analysis: Lemma 4.1 (and 5.1, 6.7) show epidemic broadcast survives unless
/// Eve jams more than ninety percent of channels for more than ninety percent
/// of slots, and Lemmas 4.3/5.3 show termination survives unless she jams
/// more than twenty percent of channels for more than twenty percent of
/// slots. Sweeping the `frac` knob across those thresholds is experiment E2.
///
/// The random offset (rather than a fixed prefix) removes any reliance on
/// protocols choosing channels uniformly — every channel is equally likely to
/// be jammed in every slot. The offset is a pure function of `(seed, slot)`
/// (no sequential stream), so the strategy is state-free: its closed-form
/// [`jam_span`](Adversary::jam_span) is **exact**, making it fully compatible
/// with the engine's byte-identical idle fast-forward.
///
/// ```
/// use rcb_adversary::UniformFraction;
/// use rcb_sim::Adversary;
///
/// let mut eve = UniformFraction::new(50_000, 0.9, 42);
/// let set = eve.jam(0, 32);
/// assert_eq!(set.count(32), 29); // 0.9 · 32 rounds to 29 channels
/// assert_eq!(eve.budget(), 50_000);
/// // Batched charging is closed-form: 29 channels × 100 slots.
/// assert_eq!(eve.jam_span(0, 100, 32, 50_000).spent, 2_900);
/// ```
#[derive(Clone, Debug)]
pub struct UniformFraction {
    t: u64,
    frac: f64,
    seed: u64,
}

impl UniformFraction {
    /// `t`: Eve's budget; `frac ∈ [0, 1]`: fraction of channels to jam each
    /// slot; `seed`: private randomness for the window offset.
    pub fn new(t: u64, frac: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "frac must be in [0, 1], got {frac}"
        );
        Self { t, frac, seed }
    }
}

impl Adversary for UniformFraction {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        let k = frac_to_count(self.frac, channels);
        if k == 0 {
            JamSet::Empty
        } else if k >= channels {
            JamSet::All
        } else {
            let start = slot_offset(self.seed, slot, channels);
            JamSet::Window { start, len: k }
        }
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn jam_span(&mut self, _start: u64, len: u64, channels: u64, budget: u64) -> SpanCharge {
        constant_demand_charge(frac_to_count(self.frac, channels), len, budget)
    }

    fn name(&self) -> &'static str {
        "uniform-fraction"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jams_requested_fraction() {
        let mut adv = UniformFraction::new(1_000, 0.9, 1);
        for slot in 0..100 {
            let set = adv.jam(slot, 64);
            assert_eq!(set.count(64), 58, "0.9 * 64 rounds to 58");
        }
    }

    #[test]
    fn zero_fraction_is_empty() {
        let mut adv = UniformFraction::new(1_000, 0.0, 1);
        assert_eq!(adv.jam(0, 64), JamSet::Empty);
    }

    #[test]
    fn full_fraction_is_all() {
        let mut adv = UniformFraction::new(1_000, 1.0, 1);
        assert_eq!(adv.jam(0, 64), JamSet::All);
    }

    #[test]
    fn offsets_vary_across_slots() {
        let mut adv = UniformFraction::new(1_000, 0.5, 2);
        let sets: Vec<JamSet> = (0..16).map(|s| adv.jam(s, 64)).collect();
        let distinct = sets
            .iter()
            .map(|s| format!("{s:?}"))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 4, "window offset should move around");
    }

    #[test]
    fn every_channel_gets_jammed_eventually() {
        let mut adv = UniformFraction::new(u64::MAX, 0.25, 3);
        let channels = 32u64;
        let mut hit = vec![false; channels as usize];
        for slot in 0..1000 {
            let set = adv.jam(slot, channels);
            for ch in 0..channels {
                if set.contains(ch, channels) {
                    hit[ch as usize] = true;
                }
            }
        }
        assert!(
            hit.iter().all(|&h| h),
            "uniform jamming covers the whole band"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_bad_fraction() {
        UniformFraction::new(10, 1.5, 0);
    }
}
