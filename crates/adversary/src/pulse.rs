//! Duty-cycled periodic jamming.

use crate::{frac_to_count, slot_offset};
use rcb_sim::{Adversary, JamSet, SpanCharge};

/// Jams `frac` of the band during the first `duty` slots of every `period`
/// slots — periodic pulsed interference (think microwave ovens at the
/// 2.4 GHz band, or a duty-cycle-limited jammer).
///
/// Interesting against the paper's protocols because the noisy-slot
/// termination criterion integrates over a whole iteration: a pulse that is
/// strong but brief must still average above the `R·p/2` threshold to keep
/// nodes awake, so Eve gains nothing by concentrating the same energy — which
/// is exactly what resource competitiveness predicts.
#[derive(Clone, Debug)]
pub struct PeriodicPulse {
    t: u64,
    period: u64,
    duty: u64,
    frac: f64,
    seed: u64,
}

impl PeriodicPulse {
    /// `period`: cycle length in slots; `duty`: jamming slots per cycle
    /// (`0 < duty ≤ period`); `frac`: fraction of channels jammed during the
    /// duty window.
    pub fn new(t: u64, period: u64, duty: u64, frac: f64, seed: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(duty > 0 && duty <= period, "duty must be in (0, period]");
        assert!((0.0..=1.0).contains(&frac));
        Self {
            t,
            period,
            duty,
            frac,
            seed,
        }
    }

    /// Number of duty slots in `[0, x)` — closed form.
    fn duty_slots_before(&self, x: u64) -> u128 {
        (x / self.period) as u128 * self.duty as u128 + (x % self.period).min(self.duty) as u128
    }
}

impl Adversary for PeriodicPulse {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        if slot % self.period >= self.duty {
            return JamSet::Empty;
        }
        let k = frac_to_count(self.frac, channels);
        if k == 0 {
            JamSet::Empty
        } else if k >= channels {
            JamSet::All
        } else {
            let start = slot_offset(self.seed, slot, channels);
            JamSet::Window { start, len: k }
        }
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn jam_span(&mut self, start: u64, len: u64, channels: u64, budget: u64) -> SpanCharge {
        // Exact: `k` channels on each duty slot of the span, none elsewhere.
        let end = start.saturating_add(len);
        let duty_slots = self.duty_slots_before(end) - self.duty_slots_before(start);
        let want = duty_slots * frac_to_count(self.frac, channels) as u128;
        SpanCharge {
            spent: want.min(budget as u128) as u64,
        }
    }

    fn name(&self) -> &'static str {
        "periodic-pulse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_pattern() {
        let mut adv = PeriodicPulse::new(1000, 10, 3, 1.0, 1);
        for slot in 0..30 {
            let jammed = adv.jam(slot, 8) != JamSet::Empty;
            assert_eq!(jammed, slot % 10 < 3, "slot {slot}");
        }
    }

    #[test]
    fn fraction_applied_during_duty() {
        let mut adv = PeriodicPulse::new(1000, 4, 4, 0.5, 2);
        for slot in 0..20 {
            assert_eq!(adv.jam(slot, 16).count(16), 8);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_period() {
        PeriodicPulse::new(10, 0, 1, 0.5, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_duty_exceeding_period() {
        PeriodicPulse::new(10, 4, 5, 0.5, 0);
    }
}
