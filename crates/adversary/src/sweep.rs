//! Sweeping-window jamming.

use crate::constant_demand_charge;
use rcb_sim::{Adversary, JamSet, SpanCharge};

/// Jams a contiguous window of `width` channels that advances by `step`
/// channels every slot, wrapping around the band — a model of swept-frequency
/// jammers and of narrowband interferers drifting through the spectrum.
///
/// Because the protocols pick a fresh uniformly random channel every slot,
/// a sweeping window of width `w` is statistically equivalent to jamming `w`
/// random channels — the experiments confirm that the *position* of the
/// jammed set is irrelevant and only its size matters, as the paper's
/// analysis assumes.
#[derive(Clone, Copy, Debug)]
pub struct Sweep {
    t: u64,
    width: u64,
    step: u64,
}

impl Sweep {
    /// `width`: window size in channels; `step`: channels advanced per slot.
    pub fn new(t: u64, width: u64, step: u64) -> Self {
        assert!(width > 0, "width must be positive");
        Self { t, width, step }
    }
}

impl Adversary for Sweep {
    fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
        if self.width >= channels {
            return JamSet::All;
        }
        let start = (slot.wrapping_mul(self.step)) % channels;
        JamSet::Window {
            start,
            len: self.width,
        }
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn jam_span(&mut self, _start: u64, len: u64, channels: u64, budget: u64) -> SpanCharge {
        // Exact: the window position is a pure function of the slot index
        // and only its (constant) width is ever charged.
        constant_demand_charge(self.width.min(channels), len, budget)
    }

    fn name(&self) -> &'static str {
        "sweep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_advances_each_slot() {
        let mut adv = Sweep::new(1000, 2, 1);
        assert!(adv.jam(0, 8).contains(0, 8));
        assert!(adv.jam(0, 8).contains(1, 8));
        assert!(!adv.jam(0, 8).contains(2, 8));
        assert!(adv.jam(1, 8).contains(1, 8));
        assert!(adv.jam(1, 8).contains(2, 8));
        assert!(!adv.jam(1, 8).contains(0, 8));
    }

    #[test]
    fn wraps_around_band() {
        let mut adv = Sweep::new(1000, 3, 1);
        let set = adv.jam(7, 8); // start = 7, covers 7, 0, 1
        assert!(set.contains(7, 8) && set.contains(0, 8) && set.contains(1, 8));
        assert_eq!(set.count(8), 3);
    }

    #[test]
    fn wide_window_is_all() {
        let mut adv = Sweep::new(1000, 100, 1);
        assert_eq!(adv.jam(5, 8), JamSet::All);
    }

    #[test]
    fn constant_energy_per_slot() {
        let mut adv = Sweep::new(1000, 5, 3);
        for slot in 0..50 {
            assert_eq!(adv.jam(slot, 32).count(32), 5);
        }
    }
}
