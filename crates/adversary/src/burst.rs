//! Full-band burst jamming.

use rcb_sim::{Adversary, JamSet, SpanCharge};

/// Jams **every** channel in every slot from `start_slot` onward, until the
/// budget runs out.
///
/// With `start_slot == 0` this is the *front-loaded* adversary: she blocks
/// all communication outright for roughly `T / C` slots (where `C` is the
/// channel count) and then goes bankrupt — the strategy that witnesses the
/// `Ω(T/C)` time lower bound mentioned at the end of Section 7. It is also
/// the cleanest way to measure the paper's fast-termination remark (Section
/// 4: once Eve stops, `MultiCastCore` finishes within one `Θ(lg T̂)`-slot
/// iteration): the jam end time is sharply defined.
#[derive(Clone, Copy, Debug)]
pub struct FullBandBurst {
    t: u64,
    start_slot: u64,
}

impl FullBandBurst {
    /// Burst starting at slot `start_slot` with budget `t`.
    pub fn new(t: u64, start_slot: u64) -> Self {
        Self { t, start_slot }
    }

    /// The front-loaded variant: burn the whole budget from slot 0.
    pub fn front_loaded(t: u64) -> Self {
        Self::new(t, 0)
    }
}

impl Adversary for FullBandBurst {
    fn jam(&mut self, slot: u64, _channels: u64) -> JamSet {
        if slot >= self.start_slot {
            JamSet::All
        } else {
            JamSet::Empty
        }
    }

    fn budget(&self) -> u64 {
        self.t
    }

    fn jam_span(&mut self, start: u64, len: u64, channels: u64, budget: u64) -> SpanCharge {
        // Exact: `channels` per slot from `start_slot` on, nothing before.
        let end = start.saturating_add(len);
        let first = self.start_slot.max(start);
        if first >= end {
            return SpanCharge::default();
        }
        let want = (end - first) as u128 * channels as u128;
        SpanCharge {
            spent: want.min(budget as u128) as u64,
        }
    }

    fn name(&self) -> &'static str {
        "full-band-burst"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_before_start() {
        let mut adv = FullBandBurst::new(100, 10);
        assert_eq!(adv.jam(9, 8), JamSet::Empty);
        assert_eq!(adv.jam(10, 8), JamSet::All);
        assert_eq!(adv.jam(11, 8), JamSet::All);
    }

    #[test]
    fn front_loaded_starts_at_zero() {
        let mut adv = FullBandBurst::front_loaded(100);
        assert_eq!(adv.jam(0, 8), JamSet::All);
        assert_eq!(adv.budget(), 100);
    }
}
