//! # rcb-adversary — oblivious jamming strategies for Eve
//!
//! The paper's adversary model (Section 3): Eve may jam any set of channels
//! in each slot at one unit of energy per channel-slot, limited only by her
//! total budget `T`. She is **oblivious** — she knows the algorithm and may
//! pursue an arbitrary pre-committed strategy, but cannot observe the
//! execution. Structurally, every strategy here is a function of the slot
//! index, the (publicly known) per-slot channel count, and the strategy's own
//! private randomness; the engine never passes execution state to it.
//!
//! The library covers the strategy space the paper's proofs quantify over:
//!
//! * [`Silent`] — no jamming (the `T = 0` baseline of every theorem).
//! * [`UniformFraction`] — jam a fixed fraction of channels every slot, at a
//!   rotating random offset. The "constant fraction of channels for a
//!   constant fraction of slots" shape that Lemmas 4.1/5.1 call *effective*
//!   disruption.
//! * [`FullBandBurst`] — jam *all* channels from a chosen slot until the
//!   budget runs out: the strongest possible burst, and the strategy behind
//!   the `Ω(T/C)` optimality remark of Section 7.
//! * [`PeriodicPulse`] — duty-cycled bursts (microwave-oven-style periodic
//!   interference).
//! * [`Sweep`] — a contiguous window sweeping across the band.
//! * [`SpanJammer`] — jam only designated slot spans (built by the harness
//!   from a protocol's public schedule: e.g. "jam phase `lg n − 1` of every
//!   epoch of `MultiCastAdv`", the worst case for resource competitiveness
//!   discussed in Section 6.1).
//! * [`GilbertElliott`] — a two-state Markov environmental-noise model, for
//!   realistic non-malicious interference.

pub mod burst;
pub mod gilbert_elliott;
pub mod pulse;
pub mod random_subset;
pub mod reactive;
pub mod spans;
pub mod sweep;
pub mod uniform;

pub use burst::FullBandBurst;
pub use gilbert_elliott::GilbertElliott;
pub use pulse::PeriodicPulse;
pub use random_subset::RandomSubset;
pub use reactive::{HotspotJammer, ReactiveJammer};
pub use spans::{JamSpan, SpanJammer};
pub use sweep::Sweep;
pub use uniform::UniformFraction;

use rcb_sim::{Adversary, JamSet, SpanCharge};

/// The absent adversary: never jams, budget zero.
///
/// Identical in behaviour to [`rcb_sim::protocol::NoAdversary`]; re-exported
/// here under the experiment-facing name so adversary line-ups in the harness
/// read uniformly.
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl Adversary for Silent {
    fn jam(&mut self, _slot: u64, _channels: u64) -> JamSet {
        JamSet::Empty
    }

    fn budget(&self) -> u64 {
        0
    }

    fn jam_span(&mut self, _start: u64, _len: u64, _channels: u64, _budget: u64) -> SpanCharge {
        SpanCharge::default()
    }

    fn name(&self) -> &'static str {
        "silent"
    }
}

/// Round `frac * channels` to a jam count, clamped to the band.
pub(crate) fn frac_to_count(frac: f64, channels: u64) -> u64 {
    if frac <= 0.0 {
        0
    } else if frac >= 1.0 {
        channels
    } else {
        ((frac * channels as f64).round() as u64).min(channels)
    }
}

/// Deterministic per-slot channel offset in `[0, channels)`, derived from a
/// strategy seed and the slot index alone — no sequential RNG state.
///
/// Making window/subset placement a pure function of `(seed, slot)` is what
/// lets the structured jammers implement **exact** closed-form
/// [`Adversary::jam_span`] charges: skipping a span of slots leaves no state
/// to advance, so the engine's idle fast-forward is byte-identical to the
/// slot-by-slot path. The mapping uses `derive_seed` mixing plus Lemire's
/// high-multiply range reduction (bias ≤ `channels / 2⁶⁴`, immaterial).
pub(crate) fn slot_offset(seed: u64, slot: u64, channels: u64) -> u64 {
    debug_assert!(channels > 0);
    let x = rcb_sim::derive_seed(seed, slot);
    ((x as u128 * channels as u128) >> 64) as u64
}

/// Exact aggregate charge for a constant per-slot demand: the engine charges
/// `min(want, remaining)` per slot, which over any span sums to
/// `min(total want, budget)` regardless of how the demand is distributed.
pub(crate) fn constant_demand_charge(want_per_slot: u64, slots: u64, budget: u64) -> SpanCharge {
    let want = want_per_slot as u128 * slots as u128;
    SpanCharge {
        spent: want.min(budget as u128) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_never_jams() {
        let mut s = Silent;
        assert_eq!(s.jam(0, 100), JamSet::Empty);
        assert_eq!(s.budget(), 0);
        assert_eq!(s.name(), "silent");
        assert_eq!(s.jam_span(0, 1 << 40, 100, u64::MAX / 2).spent, 0);
    }

    #[test]
    fn slot_offset_is_deterministic_in_range_and_spread() {
        let channels = 32u64;
        let mut hits = vec![0u64; channels as usize];
        for slot in 0..3200 {
            let a = slot_offset(7, slot, channels);
            assert_eq!(a, slot_offset(7, slot, channels));
            assert!(a < channels);
            hits[a as usize] += 1;
        }
        // Roughly uniform: every offset occurs, none dominates.
        assert!(hits.iter().all(|&h| h > 0));
        assert!(*hits.iter().max().unwrap() < 300);
        // Different seeds decorrelate.
        let same = (0..64).filter(|&s| slot_offset(1, s, channels) == slot_offset(2, s, channels));
        assert!(same.count() < 10);
    }

    #[test]
    fn constant_demand_charge_caps_at_budget() {
        assert_eq!(constant_demand_charge(3, 10, 1000).spent, 30);
        assert_eq!(constant_demand_charge(3, 10, 7).spent, 7);
        assert_eq!(constant_demand_charge(0, 10, 7).spent, 0);
        // No overflow at extreme spans.
        assert_eq!(
            constant_demand_charge(u64::MAX, u64::MAX, u64::MAX).spent,
            u64::MAX
        );
    }

    #[test]
    fn frac_rounding() {
        assert_eq!(frac_to_count(0.0, 10), 0);
        assert_eq!(frac_to_count(1.0, 10), 10);
        assert_eq!(frac_to_count(2.0, 10), 10);
        assert_eq!(frac_to_count(0.9, 10), 9);
        assert_eq!(frac_to_count(0.05, 10), 1, "0.5 rounds up");
        assert_eq!(frac_to_count(-0.5, 10), 0);
    }
}
