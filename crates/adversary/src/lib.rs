//! # rcb-adversary — oblivious jamming strategies for Eve
//!
//! The paper's adversary model (Section 3): Eve may jam any set of channels
//! in each slot at one unit of energy per channel-slot, limited only by her
//! total budget `T`. She is **oblivious** — she knows the algorithm and may
//! pursue an arbitrary pre-committed strategy, but cannot observe the
//! execution. Structurally, every strategy here is a function of the slot
//! index, the (publicly known) per-slot channel count, and the strategy's own
//! private randomness; the engine never passes execution state to it.
//!
//! The library covers the strategy space the paper's proofs quantify over:
//!
//! * [`Silent`] — no jamming (the `T = 0` baseline of every theorem).
//! * [`UniformFraction`] — jam a fixed fraction of channels every slot, at a
//!   rotating random offset. The "constant fraction of channels for a
//!   constant fraction of slots" shape that Lemmas 4.1/5.1 call *effective*
//!   disruption.
//! * [`FullBandBurst`] — jam *all* channels from a chosen slot until the
//!   budget runs out: the strongest possible burst, and the strategy behind
//!   the `Ω(T/C)` optimality remark of Section 7.
//! * [`PeriodicPulse`] — duty-cycled bursts (microwave-oven-style periodic
//!   interference).
//! * [`Sweep`] — a contiguous window sweeping across the band.
//! * [`SpanJammer`] — jam only designated slot spans (built by the harness
//!   from a protocol's public schedule: e.g. "jam phase `lg n − 1` of every
//!   epoch of `MultiCastAdv`", the worst case for resource competitiveness
//!   discussed in Section 6.1).
//! * [`GilbertElliott`] — a two-state Markov environmental-noise model, for
//!   realistic non-malicious interference.

pub mod burst;
pub mod gilbert_elliott;
pub mod pulse;
pub mod random_subset;
pub mod reactive;
pub mod spans;
pub mod sweep;
pub mod uniform;

pub use burst::FullBandBurst;
pub use gilbert_elliott::GilbertElliott;
pub use pulse::PeriodicPulse;
pub use random_subset::RandomSubset;
pub use reactive::{HotspotJammer, ReactiveJammer};
pub use spans::{JamSpan, SpanJammer};
pub use sweep::Sweep;
pub use uniform::UniformFraction;

use rcb_sim::{Adversary, JamSet};

/// The absent adversary: never jams, budget zero.
///
/// Identical in behaviour to [`rcb_sim::protocol::NoAdversary`]; re-exported
/// here under the experiment-facing name so adversary line-ups in the harness
/// read uniformly.
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl Adversary for Silent {
    fn jam(&mut self, _slot: u64, _channels: u64) -> JamSet {
        JamSet::Empty
    }

    fn budget(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "silent"
    }
}

/// Round `frac * channels` to a jam count, clamped to the band.
pub(crate) fn frac_to_count(frac: f64, channels: u64) -> u64 {
    if frac <= 0.0 {
        0
    } else if frac >= 1.0 {
        channels
    } else {
        ((frac * channels as f64).round() as u64).min(channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_never_jams() {
        let mut s = Silent;
        assert_eq!(s.jam(0, 100), JamSet::Empty);
        assert_eq!(s.budget(), 0);
        assert_eq!(s.name(), "silent");
    }

    #[test]
    fn frac_rounding() {
        assert_eq!(frac_to_count(0.0, 10), 0);
        assert_eq!(frac_to_count(1.0, 10), 10);
        assert_eq!(frac_to_count(2.0, 10), 10);
        assert_eq!(frac_to_count(0.9, 10), 9);
        assert_eq!(frac_to_count(0.05, 10), 1, "0.5 rounds up");
        assert_eq!(frac_to_count(-0.5, 10), 0);
    }
}
