//! Summary statistics over a sample.

/// Five-number-plus summary of a sample of `f64`s.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub sd: f64,
    pub min: f64,
    pub q25: f64,
    pub median: f64,
    pub q75: f64,
    pub max: f64,
}

impl Summary {
    /// Compute from a sample. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Some(Summary {
            n,
            mean,
            sd: var.sqrt(),
            min: sorted[0],
            q25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q75: quantile_sorted(&sorted, 0.75),
            max: sorted[n - 1],
        })
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        self.sd / (self.n as f64).sqrt()
    }

    /// Half-width of an approximate 95% confidence interval on the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }
}

/// Linear-interpolation quantile of a pre-sorted slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Welford's online mean/variance accumulator, for streaming statistics
/// without storing samples. Thin wrapper over
/// [`StreamingMoments`](crate::streaming::StreamingMoments), which adds
/// min/max and merging; this alias keeps the original compact interface.
#[derive(Clone, Debug, Default)]
pub struct Online(crate::streaming::StreamingMoments);

impl Online {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, x: f64) {
        self.0.push(x);
    }

    pub fn count(&self) -> u64 {
        self.0.count()
    }

    pub fn mean(&self) -> f64 {
        self.0.mean()
    }

    /// Sample variance (Bessel-corrected); 0 for n < 2.
    pub fn variance(&self) -> f64 {
        self.0.variance()
    }

    pub fn sd(&self) -> f64 {
        self.0.std_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.sd - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.q75, 4.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let values: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let big = Summary::of(&values).unwrap();
        assert!(big.ci95() < small.ci95());
    }

    #[test]
    fn online_matches_batch() {
        let xs = [3.5, -1.0, 2.25, 8.0, 0.0, 4.75];
        let mut online = Online::new();
        for &x in &xs {
            online.push(x);
        }
        let batch = Summary::of(&xs).unwrap();
        assert!((online.mean() - batch.mean).abs() < 1e-12);
        assert!((online.sd() - batch.sd).abs() < 1e-12);
        assert_eq!(online.count(), 6);
    }

    #[test]
    fn online_degenerate_cases() {
        let mut o = Online::new();
        assert_eq!(o.variance(), 0.0);
        o.push(5.0);
        assert_eq!(o.mean(), 5.0);
        assert_eq!(o.variance(), 0.0);
    }
}
