//! Markdown / CSV table builder for experiment reports.
//!
//! The `repro` binary prints every experiment as a markdown table (recorded
//! in EXPERIMENTS.md) and can emit the same data as CSV for external
//! plotting. Hand-rolled because the offline dependency set has no
//! `serde_json`-style writer — and a table builder is all we need.

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as a GitHub-flavoured markdown table with aligned columns.
    pub fn markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&rule, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes around cells containing commas,
    /// quotes, or newlines).
    pub fn csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with a sensible number of digits for a report cell.
pub fn fmt_g(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_layout() {
        let mut t = Table::new(&["x", "value"]);
        t.row_display(&["1", "10"]);
        t.row_display(&["200", "3"]);
        let md = t.markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| x "));
        assert!(lines[1].contains("---"));
        // Columns aligned: all lines same length.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["plain".into(), "with,comma".into()]);
        t.row(&["with\"quote".into(), "x".into()]);
        let csv = t.csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fmt_g_ranges() {
        assert_eq!(fmt_g(0.0), "0");
        assert_eq!(fmt_g(4.5678), "4.568");
        assert_eq!(fmt_g(12345.0), "12345");
        assert_eq!(fmt_g(1.23e7), "1.230e7");
        assert_eq!(fmt_g(0.0001), "1.000e-4");
    }

    #[test]
    fn counts() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row_display(&[1]);
        assert_eq!(t.n_rows(), 1);
    }
}
