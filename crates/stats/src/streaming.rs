//! Streaming (single-pass, constant-memory) aggregation primitives.
//!
//! The campaign engine (`rcb-campaign`) aggregates hundreds of thousands of
//! trials without materializing them: each metric feeds a
//! [`StreamingMoments`] (Welford mean/variance plus min/max) and a
//! [`QuantileSketch`] (log-bucketed histogram in the DDSketch family, with a
//! bounded bucket count and a relative-error guarantee).
//!
//! Both types are deterministic — integer bucket arithmetic and a fixed
//! ingestion order produce bit-identical results on every run — and
//! mergeable, so shards aggregated independently can be combined. Note that
//! `StreamingMoments::merge` is floating-point and therefore only
//! bit-reproducible when shards are merged in a fixed order.

/// Online mean/variance/min/max over a stream of `f64`s.
///
/// Uses Welford's algorithm; numerically stable and O(1) memory.
#[derive(Clone, Debug, Default)]
pub struct StreamingMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingMoments {
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Ingest one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Combine with another accumulator (Chan et al. parallel update).
    ///
    /// Only bit-deterministic if merges happen in a fixed order.
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (Bessel-corrected); 0 for n < 2.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` before the first push).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` before the first push).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The raw accumulator state `(n, mean, m2, min, max)`, for exact
    /// (bit-preserving) serialization. `min`/`max` are the sentinel
    /// infinities before the first push — round-trip them as bit patterns,
    /// not as JSON numbers.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild an accumulator from [`raw_parts`](Self::raw_parts) output.
    /// The inverse is exact: feeding back unmodified parts yields an
    /// accumulator that continues the stream bit-identically.
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            n,
            mean,
            m2,
            min,
            max,
        }
    }
}

/// A fixed-size quantile sketch for non-negative values, in the DDSketch
/// family: values map to logarithmic buckets `⌈ln(x)/ln(γ)⌉`, so every
/// reported quantile is within a multiplicative `α` of the true value,
/// where `γ = (1+α)/(1−α)`.
///
/// Memory is bounded by `max_buckets`; when the bound is hit, the two
/// lowest buckets collapse (biasing only the extreme low tail, which the
/// campaign reports do not read). All bucket arithmetic is on integers, so
/// pushes and fixed-order merges are bit-deterministic.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    /// ln(γ).
    ln_gamma: f64,
    /// Bucket-count bound.
    max_buckets: usize,
    /// Count of exact zeros (log buckets cannot hold them).
    zeros: u64,
    /// Sorted (bucket index → count); bounded by `max_buckets`.
    buckets: std::collections::BTreeMap<i32, u64>,
    count: u64,
}

impl QuantileSketch {
    /// Sketch with relative accuracy `alpha` (e.g. `0.01` = 1%) and a
    /// bucket-count bound.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1` and `max_buckets >= 8`.
    pub fn with_accuracy(alpha: f64, max_buckets: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha {alpha} out of (0,1)");
        assert!(max_buckets >= 8, "need at least 8 buckets");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            ln_gamma: gamma.ln(),
            max_buckets,
            zeros: 0,
            buckets: std::collections::BTreeMap::new(),
            count: 0,
        }
    }

    /// The default campaign sketch: 1% relative accuracy, ≤ 1024 buckets
    /// (covers values up to ~10^9 at full accuracy before any collapse).
    pub fn new() -> Self {
        Self::with_accuracy(0.01, 1024)
    }

    fn bucket_of(&self, x: f64) -> i32 {
        (x.ln() / self.ln_gamma).ceil() as i32
    }

    /// Ingest one observation. Negative or non-finite values are clamped
    /// to zero (campaign metrics are all non-negative counts).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x.is_nan() || x <= 0.0 || !x.is_finite() {
            self.zeros += 1;
            return;
        }
        let idx = self.bucket_of(x);
        *self.buckets.entry(idx).or_insert(0) += 1;
        self.shrink();
    }

    /// Merge another sketch of the same accuracy into this one.
    ///
    /// # Panics
    /// Panics if the sketches were built with different accuracies.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.ln_gamma - other.ln_gamma).abs() < 1e-15,
            "cannot merge sketches of different accuracy"
        );
        self.count += other.count;
        self.zeros += other.zeros;
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.shrink();
    }

    /// Collapse lowest buckets until the bound holds.
    fn shrink(&mut self) {
        while self.buckets.len() > self.max_buckets {
            let (&lo, &lo_count) = self.buckets.iter().next().expect("nonempty");
            self.buckets.remove(&lo);
            let (&next, _) = self.buckets.iter().next().expect("len > max >= 8");
            *self.buckets.get_mut(&next).expect("just read") += lo_count;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// The value at quantile `q ∈ [0, 1]` (within relative error `α`), or
    /// `None` for an empty sketch.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        // Rank of the order statistic we want (0-based, nearest-rank).
        let target = (q * (self.count - 1) as f64).round() as u64;
        if target < self.zeros {
            return Some(0.0);
        }
        let mut seen = self.zeros;
        for (&idx, &c) in &self.buckets {
            seen += c;
            if seen > target {
                // Midpoint of the bucket (γ^{i-1}, γ^i]:
                // 2γ^i / (γ + 1) = γ^i · 2/(γ+1).
                let gamma_i = (idx as f64 * self.ln_gamma).exp();
                let gamma = self.ln_gamma.exp();
                return Some(gamma_i * 2.0 / (gamma + 1.0));
            }
        }
        // Numerical edge: fall through to the top bucket.
        let idx = *self.buckets.keys().next_back()?;
        let gamma_i = (idx as f64 * self.ln_gamma).exp();
        let gamma = self.ln_gamma.exp();
        Some(gamma_i * 2.0 / (gamma + 1.0))
    }

    /// Number of live log buckets (diagnostic; bounded by `max_buckets`).
    pub fn live_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Count of exact zeros ingested (they live outside the log buckets).
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// The live `(bucket index, count)` pairs in ascending index order —
    /// together with [`zeros`](Self::zeros) and [`count`](Self::count),
    /// the sketch's complete state for exact serialization.
    pub fn bucket_entries(&self) -> Vec<(i32, u64)> {
        self.buckets.iter().map(|(&i, &c)| (i, c)).collect()
    }

    /// Rebuild a **default-accuracy** sketch ([`new`](Self::new)) from
    /// saved state. The inverse of
    /// [`bucket_entries`](Self::bucket_entries)/[`zeros`](Self::zeros)/
    /// [`count`](Self::count): restoring and then continuing the stream is
    /// bit-identical to never having paused, because all bucket arithmetic
    /// is on integers.
    ///
    /// # Panics
    /// Panics if `count` is less than the restored observations
    /// (`zeros + Σ bucket counts`) or the bucket list exceeds the default
    /// bound.
    pub fn from_saved(zeros: u64, count: u64, buckets: &[(i32, u64)]) -> Self {
        let mut s = Self::new();
        s.zeros = zeros;
        s.count = count;
        let mut restored = zeros;
        for &(idx, c) in buckets {
            restored += c;
            *s.buckets.entry(idx).or_insert(0) += c;
        }
        assert!(
            restored == count,
            "sketch state inconsistent: {restored} restored observations vs count {count}"
        );
        assert!(
            s.buckets.len() <= s.max_buckets,
            "sketch state has more buckets than the default bound"
        );
        s
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_batch() {
        let xs = [3.5, -1.0, 2.25, 8.0, 0.0, 4.75];
        let mut m = StreamingMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert_eq!(m.min(), Some(-1.0));
        assert_eq!(m.max(), Some(8.0));
        assert_eq!(m.count(), 6);
    }

    #[test]
    fn moments_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = StreamingMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = StreamingMoments::new();
        let mut right = StreamingMoments::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn moments_merge_empty_cases() {
        let mut a = StreamingMoments::new();
        let empty = StreamingMoments::new();
        a.merge(&empty);
        assert_eq!(a.count(), 0);
        a.push(2.0);
        let mut b = StreamingMoments::new();
        b.merge(&a);
        assert_eq!(b.count(), 1);
        assert_eq!(b.mean(), 2.0);
    }

    #[test]
    fn sketch_quantiles_within_relative_error() {
        let mut s = QuantileSketch::with_accuracy(0.01, 1024);
        let xs: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        for &x in &xs {
            s.push(x);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            let exact = xs[((q * (xs.len() - 1) as f64).round() as usize).min(xs.len() - 1)];
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= 0.0101,
                "q={q}: est {est} vs exact {exact} (rel {rel})"
            );
        }
    }

    #[test]
    fn sketch_handles_zeros_and_empty() {
        let mut s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), None);
        for _ in 0..10 {
            s.push(0.0);
        }
        s.push(100.0);
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(0.5), Some(0.0));
        let p99 = s.quantile(1.0).unwrap();
        assert!((p99 - 100.0).abs() / 100.0 <= 0.0101);
        assert_eq!(s.count(), 11);
    }

    #[test]
    fn sketch_merge_equals_single_stream() {
        let xs: Vec<f64> = (1..=5000).map(|i| (i * i) as f64 % 997.0 + 1.0).collect();
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            // Same buckets, same counts: merged sketch answers identically.
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn sketch_bucket_bound_holds() {
        let mut s = QuantileSketch::with_accuracy(0.01, 8);
        // A huge dynamic range forces collapses.
        for e in 0..300 {
            s.push((1.1f64).powi(e));
        }
        assert!(s.live_buckets() <= 8);
        assert_eq!(s.count(), 300);
        // The top of the distribution is still accurate.
        let top = (1.1f64).powi(299);
        let est = s.quantile(1.0).unwrap();
        assert!((est - top).abs() / top <= 0.0101);
    }

    #[test]
    fn moments_raw_parts_round_trip_continues_bit_identically() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 1.37) % 43.0).collect();
        let mut whole = StreamingMoments::new();
        let mut paused = StreamingMoments::new();
        for &x in &xs[..97] {
            whole.push(x);
            paused.push(x);
        }
        let (n, mean, m2, min, max) = paused.raw_parts();
        let mut resumed = StreamingMoments::from_raw_parts(n, mean, m2, min, max);
        for &x in &xs[97..] {
            whole.push(x);
            resumed.push(x);
        }
        assert_eq!(resumed.count(), whole.count());
        assert_eq!(resumed.mean().to_bits(), whole.mean().to_bits());
        assert_eq!(resumed.variance().to_bits(), whole.variance().to_bits());
        assert_eq!(resumed.min(), whole.min());
        assert_eq!(resumed.max(), whole.max());
        // The empty accumulator round-trips its sentinel infinities too.
        let (n, mean, m2, min, max) = StreamingMoments::new().raw_parts();
        let empty = StreamingMoments::from_raw_parts(n, mean, m2, min, max);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn sketch_saved_state_round_trip_continues_bit_identically() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 31) % 211) as f64).collect();
        let mut whole = QuantileSketch::new();
        let mut paused = QuantileSketch::new();
        for &x in &xs[..313] {
            whole.push(x);
            paused.push(x);
        }
        let mut resumed =
            QuantileSketch::from_saved(paused.zeros(), paused.count(), &paused.bucket_entries());
        for &x in &xs[313..] {
            whole.push(x);
            resumed.push(x);
        }
        assert_eq!(resumed.count(), whole.count());
        assert_eq!(resumed.zeros(), whole.zeros());
        assert_eq!(resumed.bucket_entries(), whole.bucket_entries());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                resumed.quantile(q).map(f64::to_bits),
                whole.quantile(q).map(f64::to_bits),
                "q={q}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn sketch_from_saved_rejects_inconsistent_counts() {
        QuantileSketch::from_saved(2, 10, &[(3, 1)]);
    }

    #[test]
    fn sketch_determinism_bitwise() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 7.77) % 353.0).collect();
        let run = || {
            let mut s = QuantileSketch::new();
            for &x in &xs {
                s.push(x);
            }
            [0.25, 0.5, 0.75, 0.95].map(|q| s.quantile(q).unwrap().to_bits())
        };
        assert_eq!(run(), run());
    }
}
