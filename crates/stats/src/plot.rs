//! Terminal plots for experiment reports.
//!
//! The paper has no figures, but scaling experiments are naturally figures;
//! `loglog_plot` renders a sweep (and its power-law fit) as an ASCII
//! scatter so the `repro` reports are self-contained in a terminal or a
//! markdown code block.

use crate::regression::fit_linear;

/// Render `points` on log-log axes as an ASCII scatter (`*`), with the
/// least-squares power-law fit drawn as `·` and annotated with its slope.
/// Non-positive coordinates are skipped (no logarithm).
///
/// # Panics
/// Panics if fewer than two positive points remain.
pub fn loglog_plot(points: &[(f64, f64)], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let pos: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.0 > 0.0 && p.1 > 0.0)
        .map(|p| (p.0.ln(), p.1.ln()))
        .collect();
    assert!(pos.len() >= 2, "need at least two positive points to plot");

    let (mut x_min, mut x_max) = (f64::MAX, f64::MIN);
    let (mut y_min, mut y_max) = (f64::MAX, f64::MIN);
    for &(x, y) in &pos {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Pad degenerate ranges so single-column/row data still renders.
    if (x_max - x_min).abs() < 1e-12 {
        x_max += 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max += 1.0;
    }

    let fit = fit_linear(&pos);
    let mut grid = vec![vec![' '; width]; height];

    let x_of = |col: usize| x_min + (x_max - x_min) * col as f64 / (width - 1) as f64;
    let col_of = |x: f64| (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
    let row_of = |y: f64| {
        let frac = (y - y_min) / (y_max - y_min);
        (height - 1) - ((frac * (height - 1) as f64).round() as usize).min(height - 1)
    };

    // Fit line first so data points overwrite it. (Indexing is row-then-
    // column, so a per-column iterator over `grid` does not apply here.)
    #[allow(clippy::needless_range_loop)]
    for col in 0..width {
        let y = fit.intercept + fit.slope * x_of(col);
        if y >= y_min && y <= y_max {
            let row = row_of(y);
            grid[row][col] = '·';
        }
    }
    for &(x, y) in &pos {
        grid[row_of(y)][col_of(x).min(width - 1)] = '*';
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{:>9.2e} ┤", y_max.exp())
        } else if r == height - 1 {
            format!("{:>9.2e} ┤", y_min.exp())
        } else {
            format!("{:>9} │", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} └{}\n", "", "─".repeat(width)));
    out.push_str(&format!(
        "{:>11}{:<.2e}{:>pad$}{:.2e}   (log-log; fit slope {:.2}, r² {:.3})\n",
        "",
        x_min.exp(),
        "",
        x_max.exp(),
        fit.slope,
        1.0 - (1.0 - fit.r2),
        pad = width.saturating_sub(16)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_contains_points_and_fit() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| (10f64.powi(i), 3.0 * 10f64.powi(i).sqrt()))
            .collect();
        let art = loglog_plot(&pts, 40, 10);
        assert!(art.contains('*'), "data markers missing");
        assert!(art.contains('·'), "fit line missing");
        assert!(
            art.contains("slope 0.50"),
            "slope annotation missing:\n{art}"
        );
        assert_eq!(art.lines().count(), 12, "10 rows + axis + caption");
    }

    #[test]
    fn plot_skips_nonpositive_points() {
        let pts = vec![(0.0, 1.0), (1.0, 1.0), (10.0, 10.0)];
        let art = loglog_plot(&pts, 30, 8);
        assert!(art.contains("slope 1.00"));
    }

    #[test]
    fn degenerate_vertical_spread_still_renders() {
        let pts = vec![(1.0, 5.0), (10.0, 5.0), (100.0, 5.0)];
        let art = loglog_plot(&pts, 30, 8);
        assert!(art.contains('*'));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        loglog_plot(&[(1.0, 1.0)], 30, 8);
    }
}
