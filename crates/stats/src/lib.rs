//! # rcb-stats — statistics, fitting, and table formatting
//!
//! Numerics for the experiment harness: summary statistics with confidence
//! intervals, log-log regression for scaling-exponent fits (the main
//! instrument for verifying the paper's `O(T/n)`, `O(√(T/n))`, `O(n^{2α})`
//! shapes), histograms, and markdown/CSV table emission for EXPERIMENTS.md.
//!
//! Everything is hand-rolled on `std` — the experiment pipeline needs only
//! means, quantiles, and least squares, not a stats dependency.

pub mod histogram;
pub mod plot;
pub mod regression;
pub mod streaming;
pub mod summary;
pub mod table;

pub use histogram::Histogram;
pub use plot::loglog_plot;
pub use regression::{fit_linear, fit_power_law, LinearFit};
pub use streaming::{QuantileSketch, StreamingMoments};
pub use summary::Summary;
pub use table::Table;
