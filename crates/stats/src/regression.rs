//! Least-squares fits, including the log-log power-law fit used to verify
//! the paper's scaling exponents.
//!
//! The experiments confirm claims like "energy grows as `√T`" by sweeping
//! `T` and fitting `cost = c·T^β` — i.e. a straight line in log-log space.
//! Theorem 5.4 predicts `β ≈ 0.5` for `MultiCast` energy and `β ≈ 1.0` for
//! its time; Theorem 6.10 predicts the same pair for `MultiCastAdv` with the
//! `n`-dependence shifted to `n^{1−2α}`.

/// Result of a simple linear regression `y ≈ intercept + slope·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Ordinary least squares on `(x, y)` pairs.
///
/// # Panics
/// Panics with fewer than two points or when all `x` coincide.
pub fn fit_linear(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are degenerate");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y) * (p.1 - mean_y)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (intercept + slope * p.0);
            e * e
        })
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

/// Fit `y ≈ c·x^β` by least squares in log-log space; returns `(c, β, r²)`.
/// Points with non-positive coordinates are skipped (they have no logarithm;
/// e.g. the `T = 0` anchor of a sweep).
///
/// ```
/// use rcb_stats::fit_power_law;
/// // The √T energy signature of a resource-competitive protocol:
/// let sweep = [(1e4, 500.0), (4e4, 1000.0), (1.6e5, 2000.0)];
/// let (c, beta, r2) = fit_power_law(&sweep);
/// assert!((beta - 0.5).abs() < 1e-9);
/// assert!((c - 5.0).abs() < 1e-9);
/// assert!(r2 > 0.999);
/// ```
pub fn fit_power_law(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.0 > 0.0 && p.1 > 0.0)
        .map(|p| (p.0.ln(), p.1.ln()))
        .collect();
    let fit = fit_linear(&logs);
    (fit.intercept.exp(), fit.slope, fit.r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = fit_linear(&pts);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        // Deterministic "noise" that averages out.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 1.0 + 0.75 * x + noise)
            })
            .collect();
        let fit = fit_linear(&pts);
        assert!((fit.slope - 0.75).abs() < 0.01, "slope {}", fit.slope);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn power_law_sqrt() {
        // y = 4·x^0.5 — the resource-competitive energy signature.
        let pts: Vec<(f64, f64)> = (1..50)
            .map(|i| (i as f64 * 100.0, 4.0 * (i as f64 * 100.0).sqrt()))
            .collect();
        let (c, beta, r2) = fit_power_law(&pts);
        assert!((beta - 0.5).abs() < 1e-9, "beta {beta}");
        assert!((c - 4.0).abs() < 1e-6, "c {c}");
        assert!(r2 > 0.999999);
    }

    #[test]
    fn power_law_skips_nonpositive_points() {
        let pts = vec![(0.0, 5.0), (1.0, 2.0), (4.0, 4.0), (16.0, 8.0)];
        let (c, beta, _) = fit_power_law(&pts);
        assert!((beta - 0.5).abs() < 1e-9);
        assert!((c - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        fit_linear(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_constant_x() {
        fit_linear(&[(2.0, 1.0), (2.0, 3.0)]);
    }

    #[test]
    fn r2_zero_for_pure_noise_pattern() {
        // Symmetric cross: slope 0, no explanatory power.
        let pts = vec![(0.0, 1.0), (0.0, -1.0), (1.0, 1.0), (1.0, -1.0)];
        let fit = fit_linear(&pts);
        assert!(fit.slope.abs() < 1e-12);
        assert!(fit.r2.abs() < 1e-12);
    }
}
