//! Fixed-bin and logarithmic histograms for experiment diagnostics.

/// A histogram over `[lo, hi)` with equal-width bins, plus under/overflow
/// counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Render as a compact ASCII bar chart (one line per bin), for examples
    /// and debug output.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!(
                "{:>12.3} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..10 {
            h.push(i as f64);
        }
        assert_eq!(h.bin_counts(), &[2, 2, 2, 2, 2]);
        assert_eq!(h.count(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.0); // hi is exclusive
        h.push(0.25);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_counts(), &[1, 0]);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn ascii_renders_every_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.push(0.5);
        h.push(0.6);
        h.push(2.5);
        let art = h.ascii(10);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('#'));
    }

    #[test]
    #[should_panic]
    fn rejects_empty_range() {
        Histogram::new(1.0, 1.0, 4);
    }
}
