//! The scenario catalog: named, declarative campaign specs.
//!
//! A **scenario** is a named recipe that expands into a [`CampaignSpec`] —
//! a flat list of [`CellSpec`]s (protocol × adversary × engine cap). The
//! campaign engine runs every cell for the requested number of trials and
//! aggregates each cell independently, so adding a workload to the catalog
//! is ~30 lines of grid-building here rather than a bespoke experiment
//! file.
//!
//! The registry covers the reproduction's core claims plus the scenario-
//! diversity axis motivated by the adaptive-adversary follow-up
//! (arXiv:2001.03936) and the dynamic-network line of work: adaptive
//! jammers, bursty environmental noise, sweeping interference, baseline
//! races, and scaling ladders.

use rcb_core::{AdvParams, McParams};
use rcb_harness::{AdversaryKind, ProtocolKind, ScheduleEventKind, ScheduleSpec, TopologyKind};

/// One aggregation cell of a campaign: a protocol/adversary/topology
/// triple run for many seeds. Everything the engine needs to build a
/// `TrialSpec`, minus the per-trial seed (the engine derives those).
#[derive(Clone, Debug)]
pub struct CellSpec {
    pub protocol: ProtocolKind,
    pub adversary: AdversaryKind,
    /// Connectivity topology (default: the paper's single-hop model).
    pub topology: TopologyKind,
    /// Declarative world schedule (nemesis events) every trial of the cell
    /// runs under; empty = the unscheduled engine path.
    pub schedule: ScheduleSpec,
    /// Engine slot cap for this cell's trials.
    pub max_slots: u64,
}

impl CellSpec {
    pub fn new(protocol: ProtocolKind, adversary: AdversaryKind) -> Self {
        Self {
            protocol,
            adversary,
            topology: TopologyKind::Complete,
            schedule: ScheduleSpec::new(),
            // Generous but finite: a stuck cell fails loudly instead of
            // spinning the campaign forever.
            max_slots: 50_000_000,
        }
    }

    pub fn with_max_slots(mut self, cap: u64) -> Self {
        self.max_slots = cap;
        self
    }

    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    pub fn with_schedule(mut self, schedule: ScheduleSpec) -> Self {
        self.schedule = schedule;
        self
    }
}

/// A fully-expanded campaign: what `rcb run <scenario>` executes.
///
/// Registered scenarios come from [`find`]/[`registry`], but a spec can
/// just as well be built by hand and handed to
/// [`run_campaign`](crate::run_campaign):
///
/// ```
/// use rcb_campaign::{run_campaign, CampaignConfig, CampaignSpec, CellSpec};
/// use rcb_harness::{AdversaryKind, ProtocolKind};
///
/// let spec = CampaignSpec {
///     name: "tiny".into(),
///     description: "naive epidemic, no jamming".into(),
///     cells: vec![CellSpec::new(
///         ProtocolKind::Naive { n: 16, act_prob: 1.0 },
///         AdversaryKind::Silent,
///     )
///     .with_max_slots(100_000)],
/// };
/// let cfg = CampaignConfig { trials_per_cell: 4, ..Default::default() };
/// let report = run_campaign(&spec, &cfg);
/// assert_eq!(report.cells.len(), 1);
/// assert_eq!(report.cells[0].completed, 4);
/// ```
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    pub name: String,
    pub description: String,
    pub cells: Vec<CellSpec>,
}

/// A catalog entry: a named scenario and the recipe that expands it.
///
/// ```
/// let scenario = rcb_campaign::find("adaptive-grid").expect("registered");
/// let spec = (scenario.build)();
/// assert_eq!(spec.name, "adaptive-grid");
/// assert!(spec.cells.len() >= 11, "w x c grid plus threshold cells");
/// ```
#[derive(Clone, Copy)]
pub struct Scenario {
    pub name: &'static str,
    pub summary: &'static str,
    pub build: fn() -> CampaignSpec,
}

/// Every registered scenario, in catalog order.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "core-repro",
            summary: "MultiCastCore time/cost grid over n and T (Theorem 4.4 shape)",
            build: core_repro,
        },
        Scenario {
            name: "budget-sweep",
            summary: "MultiCast vs a T ladder at fixed n (the O(T/n) slope, Theorem 5.4)",
            build: budget_sweep,
        },
        Scenario {
            name: "unknown-n",
            summary: "MultiCastAdv (knows nothing) vs uniform and burst jamming",
            build: unknown_n,
        },
        Scenario {
            name: "limited-channels",
            summary: "MultiCast(C) channel-count sweep at fixed n (Corollary 7.1)",
            build: limited_channels,
        },
        Scenario {
            name: "adaptive-proxy",
            summary: "Reactive and hotspot (execution-observing) jammers vs MultiCast (Section 8)",
            build: adaptive_proxy,
        },
        Scenario {
            name: "adaptive-grid",
            summary: "Reactive-family grid: reactivity window x channel cap (arXiv:2001.03936)",
            build: adaptive_grid,
        },
        Scenario {
            name: "gilbert-elliott",
            summary: "Bursty environmental noise (Gilbert-Elliott) vs MultiCast and the epidemic",
            build: gilbert_elliott,
        },
        Scenario {
            name: "sweep-jammer",
            summary: "Sweeping-window interference at several widths vs MultiCast",
            build: sweep_jammer,
        },
        Scenario {
            name: "epidemic-race",
            summary: "Baseline race: naive epidemic vs Decay vs MultiCast vs single-channel",
            build: epidemic_race,
        },
        Scenario {
            name: "scaling-ladder",
            summary: "MultiCast across an n ladder with T proportional to n",
            build: scaling_ladder,
        },
        Scenario {
            name: "adv-late-epoch",
            summary: "MultiCastAdv driven deep into sparse late epochs (idle fast-forward stress)",
            build: adv_late_epoch,
        },
        Scenario {
            name: "multi-hop",
            summary:
                "MultiHopCast over line/grid/geometric/dynamic topologies, with and without jamming",
            build: multi_hop,
        },
        Scenario {
            name: "multi-message",
            summary: "MultiMessageCast k-payload ladder, jammed and over a grid (arXiv:1610.02931)",
            build: multi_message,
        },
        Scenario {
            name: "nemesis",
            summary:
                "World-schedule fault injection: jammer swaps, partition/heal, crashes, lossy links",
            build: nemesis,
        },
    ]
}

/// Look up a scenario by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// Render a campaign spec for `rcb describe`: the header plus one line per
/// cell with **full** protocol, adversary, and topology parameters (the
/// schema-v2 fields — topology generator knobs, adaptive-jammer windows and
/// thresholds — included, not just the short names). Columns are sized to
/// the widest cell so the table stays aligned for any scenario.
///
/// ```
/// let s = rcb_campaign::find("adaptive-grid").expect("registered");
/// let text = rcb_campaign::describe_campaign(&(s.build)(), s.summary);
/// assert!(text.contains("reactive-window{T=20000, w=1, cap=2, threshold=1}"));
/// assert!(text.contains("on complete"));
/// ```
pub fn describe_campaign(spec: &CampaignSpec, summary: &str) -> String {
    let rows: Vec<(String, String, String)> = spec
        .cells
        .iter()
        .map(|c| {
            (
                c.protocol.detail(),
                c.adversary.detail(),
                c.topology.detail(),
            )
        })
        .collect();
    let w_proto = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let w_adv = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let w_topo = rows.iter().map(|r| r.2.len()).max().unwrap_or(0);
    let mut out = format!(
        "# {} — {}\n\n{}\n\n{} cells:\n",
        spec.name,
        summary,
        spec.description,
        spec.cells.len()
    );
    for (i, (cell, (proto, adv, topo))) in spec.cells.iter().zip(&rows).enumerate() {
        // The schedule column appears only on scheduled cells, so every
        // pre-nemesis scenario renders byte-identically to schema v3.
        let sched = if cell.schedule.is_empty() {
            String::new()
        } else {
            format!(
                "  sched = {} ({})",
                cell.schedule.summary(),
                cell.schedule.detail()
            )
        };
        out.push_str(&format!(
            "  [{i:>2}] {proto:<w_proto$} vs {adv:<w_adv$} on {topo:<w_topo$} cap = {}{sched}\n",
            cell.max_slots
        ));
    }
    out
}

fn core_repro() -> CampaignSpec {
    let mut cells = Vec::new();
    for &n in &[32u64, 64, 128] {
        for &t in &[8_000u64, 32_000, 128_000] {
            cells.push(CellSpec::new(
                ProtocolKind::Core {
                    n,
                    t,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.9 },
            ));
        }
    }
    CampaignSpec {
        name: "core-repro".into(),
        description: "MultiCastCore (knows n and T) against a 90%-band uniform \
                      jammer, over a 3x3 grid of n and T. Reproduces the \
                      Theorem 4.4 time/cost shape O(T/n + lg T)."
            .into(),
        cells,
    }
}

fn budget_sweep() -> CampaignSpec {
    let n = 64u64;
    let mut cells: Vec<CellSpec> = [4_000u64, 16_000, 64_000, 256_000]
        .iter()
        .map(|&t| {
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: McParams::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.9 },
            )
        })
        .collect();
    // The late-iteration tail at n = 16: budgets big enough to push
    // MultiCast into iterations where p_i = 2^-i makes >90% of rounds
    // empty — the idle fast-forward's signature workload (each blocked
    // iteration quadruples R_i while halving p_i).
    for &t in &[4_000_000u64, 35_000_000] {
        cells.push(
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n: 16,
                    params: McParams::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.9 },
            )
            .with_max_slots(200_000_000),
        );
    }
    CampaignSpec {
        name: "budget-sweep".into(),
        description: "MultiCast against a 90%-band uniform jammer up a budget \
                      ladder: 4k..256k at n = 64 (the O(T/n) slope of Theorem \
                      5.4a at ~sqrt(T) node cost, Theorem 5.4b), then 4M and \
                      35M at n = 16 — the late-iteration sparse regime that \
                      stresses the engine's idle fast-forward."
            .into(),
        cells,
    }
}

fn unknown_n() -> CampaignSpec {
    let mut cells = Vec::new();
    for &n in &[16u64, 32] {
        for &t in &[5_000u64, 20_000] {
            cells.push(CellSpec::new(
                ProtocolKind::Adv {
                    n,
                    params: AdvParams::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.5 },
            ));
            cells.push(CellSpec::new(
                ProtocolKind::Adv {
                    n,
                    params: AdvParams::default(),
                },
                AdversaryKind::Burst { t, start: 0 },
            ));
        }
    }
    CampaignSpec {
        name: "unknown-n".into(),
        description: "MultiCastAdv — no knowledge of n or T — against uniform \
                      half-band jamming and a front-loaded full-band burst. \
                      Checks the Theorem 6.10 overhead of learning the network \
                      size implicitly."
            .into(),
        cells,
    }
}

fn limited_channels() -> CampaignSpec {
    let n = 64u64;
    let t = 20_000u64;
    let cells = [1u64, 2, 4, 8, 16]
        .iter()
        .map(|&c| {
            CellSpec::new(
                ProtocolKind::MultiCastC {
                    n,
                    c,
                    params: McParams::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.5 },
            )
        })
        .collect();
    CampaignSpec {
        name: "limited-channels".into(),
        description: "MultiCast(C) at n = 64 with C in {1,2,4,8,16} against a \
                      half-band uniform jammer (T = 20k). Completion time should \
                      fall ~inversely in C at C-independent energy \
                      (Corollary 7.1); C = 1 doubles as the single-channel \
                      comparator."
            .into(),
        cells,
    }
}

fn adaptive_proxy() -> CampaignSpec {
    let mut cells = Vec::new();
    for &n in &[32u64, 64] {
        cells.push(CellSpec::new(
            ProtocolKind::MultiCast {
                n,
                params: McParams::default(),
            },
            AdversaryKind::Reactive {
                t: 20_000,
                max_channels: 8,
            },
        ));
        cells.push(CellSpec::new(
            ProtocolKind::MultiCast {
                n,
                params: McParams::default(),
            },
            AdversaryKind::Hotspot {
                t: 20_000,
                k: 8,
                decay: 0.9,
            },
        ));
    }
    CampaignSpec {
        name: "adaptive-proxy".into(),
        description: "MultiCast against the Section 8 adaptive extension: a \
                      reactive jammer (re-jams last slot's busy channels) and a \
                      decay-scored hotspot tracker, both execution-observing. \
                      Proxy for the adaptive-adversary follow-up work."
            .into(),
        cells,
    }
}

fn adaptive_grid() -> CampaignSpec {
    let n = 32u64;
    let t = 20_000u64;
    let mut cells = Vec::new();
    // The w x c reactivity grid of the follow-up paper: sweeping the
    // window shows whether *memory* helps Eve, sweeping the cap shows
    // whether *bandwidth* does. Against per-slot channel hopping neither
    // should (the band is memoryless), which is the bound shape
    // arXiv:2001.03936 formalizes for sense-and-react jammers.
    for &window in &[1u64, 4, 16] {
        for &cap in &[2u64, 8, 16] {
            cells.push(CellSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: McParams::default(),
                },
                AdversaryKind::ReactiveWindow {
                    t,
                    window,
                    max_channels: cap,
                    threshold: 1,
                },
            ));
        }
    }
    // Trigger-threshold cells: a jammer that waits for sustained activity
    // before spending. Thresholds above the typical per-window busy count
    // (~n·p·w) should make her spend collapse entirely.
    for &threshold in &[4u64, 8] {
        cells.push(CellSpec::new(
            ProtocolKind::MultiCast {
                n,
                params: McParams::default(),
            },
            AdversaryKind::ReactiveWindow {
                t,
                window: 8,
                max_channels: 16,
                threshold,
            },
        ));
    }
    CampaignSpec {
        name: "adaptive-grid".into(),
        description: "MultiCast at n = 32 against the parameterized reactive \
                      family: a 3x3 grid over reactivity window w in {1, 4, 16} \
                      x channel cap c in {2, 8, 16} (threshold 1), plus two \
                      trigger-threshold cells (w = 8, c = 16, threshold in \
                      {4, 8}). Reproduces the adaptive-adversary follow-up's \
                      bound shape (arXiv:2001.03936): against fresh-uniform \
                      channel hopping, neither sensing memory nor reactive \
                      bandwidth converts into completion-time damage beyond a \
                      spend-matched oblivious jammer's."
            .into(),
        cells,
    }
}

fn gilbert_elliott() -> CampaignSpec {
    let mut cells = Vec::new();
    let ge = AdversaryKind::GilbertElliott {
        t: 50_000,
        p_gb: 0.05,
        p_bg: 0.2,
        frac: 0.6,
    };
    for &n in &[32u64, 64] {
        cells.push(CellSpec::new(
            ProtocolKind::MultiCast {
                n,
                params: McParams::default(),
            },
            ge.clone(),
        ));
        cells.push(CellSpec::new(
            ProtocolKind::Naive { n, act_prob: 1.0 },
            ge.clone(),
        ));
    }
    CampaignSpec {
        name: "gilbert-elliott".into(),
        description: "Bursty (two-state Markov) environmental noise jamming 60% \
                      of the band while in the bad state: realistic, \
                      non-malicious interference against both MultiCast and the \
                      naive epidemic."
            .into(),
        cells,
    }
}

fn sweep_jammer() -> CampaignSpec {
    let n = 64u64;
    let t = 40_000u64;
    let cells = [4u64, 16, 32]
        .iter()
        .map(|&width| {
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: McParams::default(),
                },
                AdversaryKind::Sweep { t, width, step: 1 },
            )
        })
        .collect();
    CampaignSpec {
        name: "sweep-jammer".into(),
        description: "A contiguous window of 4/16/32 channels sweeping across \
                      the 32-channel band one channel per slot, T = 40k, \
                      against MultiCast at n = 64."
            .into(),
        cells,
    }
}

fn epidemic_race() -> CampaignSpec {
    let mut cells = Vec::new();
    for &n in &[32u64, 128] {
        cells.push(CellSpec::new(
            ProtocolKind::Naive { n, act_prob: 1.0 },
            AdversaryKind::Silent,
        ));
        cells.push(CellSpec::new(
            ProtocolKind::Decay { n },
            AdversaryKind::Silent,
        ));
        cells.push(CellSpec::new(
            ProtocolKind::MultiCast {
                n,
                params: McParams::default(),
            },
            AdversaryKind::Silent,
        ));
        cells.push(CellSpec::new(
            ProtocolKind::SingleChannel {
                n,
                params: McParams::default(),
            },
            AdversaryKind::Silent,
        ));
    }
    CampaignSpec {
        name: "epidemic-race".into(),
        description: "Jam-free baseline race at n = 32 and 128: the naive \
                      multi-channel epidemic and classical Decay (informed-time \
                      only; they never halt) against MultiCast and the \
                      single-channel resource-competitive comparator."
            .into(),
        cells,
    }
}

fn scaling_ladder() -> CampaignSpec {
    let cells = [16u64, 32, 64, 128, 256]
        .iter()
        .map(|&n| {
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: McParams::default(),
                },
                AdversaryKind::Uniform {
                    t: 100 * n,
                    frac: 0.5,
                },
            )
        })
        .collect();
    CampaignSpec {
        name: "scaling-ladder".into(),
        description: "MultiCast up an n ladder (16..256) with the jamming \
                      budget scaled as T = 100n, half the band jammed. Fixing \
                      T/n isolates the protocol's n-dependence."
            .into(),
        cells,
    }
}

fn adv_late_epoch() -> CampaignSpec {
    let mut cells = Vec::new();
    for &(n, t) in &[(16u64, 50_000u64), (16, 200_000), (32, 100_000)] {
        cells.push(
            CellSpec::new(
                ProtocolKind::Adv {
                    n,
                    params: AdvParams::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.9 },
            )
            .with_max_slots(200_000_000),
        );
    }
    cells.push(
        CellSpec::new(
            ProtocolKind::Adv {
                n: 16,
                params: AdvParams::default(),
            },
            AdversaryKind::Burst {
                t: 200_000,
                start: 0,
            },
        )
        .with_max_slots(200_000_000),
    );
    CampaignSpec {
        name: "adv-late-epoch".into(),
        description: "MultiCastAdv runs reaching their deepest (sparsest) \
                      epochs, where p(i, j) = 2^{-α(i-j)}/2 empties ~half of \
                      all rounds (the protocol halts by design before p decays \
                      further — the >90%-idle regime lives in budget-sweep's \
                      late MultiCast iterations). Together with budget-sweep \
                      these are the `rcb bench` fast-forward stress cells."
            .into(),
        cells,
    }
}

fn multi_hop() -> CampaignSpec {
    let mh = |n: u64, channels: u64| ProtocolKind::MultiHop {
        n,
        channels,
        p: 0.25,
    };
    // A radius safely above the geometric connectivity threshold for n = 64
    // (see `rcb_sim::Topology::connectivity_radius`).
    let radius = rcb_sim::Topology::connectivity_radius(64);
    let cells = vec![
        // Deepest propagation: lines of diameter 31 and 63, clean and jammed.
        CellSpec::new(mh(32, 8), AdversaryKind::Silent)
            .with_topology(TopologyKind::Line)
            .with_max_slots(20_000_000),
        CellSpec::new(
            mh(64, 8),
            AdversaryKind::Uniform {
                t: 20_000,
                frac: 0.5,
            },
        )
        .with_topology(TopologyKind::Line)
        .with_max_slots(20_000_000),
        // 8x8 grid, diameter 14, under uniform jamming.
        CellSpec::new(
            mh(64, 8),
            AdversaryKind::Uniform {
                t: 20_000,
                frac: 0.5,
            },
        )
        .with_topology(TopologyKind::Grid { cols: 8 })
        .with_max_slots(20_000_000),
        // Per-trial random geometric graphs at a connectivity-safe radius.
        CellSpec::new(mh(64, 16), AdversaryKind::Silent)
            .with_topology(TopologyKind::RandomGeometric { radius })
            .with_max_slots(20_000_000),
        // Dynamic churn (30% of edges down per round) over the geometric
        // base, plus a front-loaded full-band burst.
        CellSpec::new(
            mh(64, 16),
            AdversaryKind::Burst {
                t: 30_000,
                start: 0,
            },
        )
        .with_topology(TopologyKind::Dynamic {
            base: Box::new(TopologyKind::RandomGeometric { radius }),
            p_down: 0.3,
        })
        .with_max_slots(20_000_000),
    ];
    CampaignSpec {
        name: "multi-hop".into(),
        description: "MultiHopCast (informed nodes relay with the sender \
                      schedule, p = 0.25) over a topology family: lines of \
                      diameter 31/63, an 8x8 grid, per-trial random geometric \
                      graphs at a connectivity-safe radius, and a dynamic \
                      variant with 30% per-round edge churn. Completion means \
                      every node reachable from the source is informed \
                      (Ahmadi-Kuhn dynamic-network reference model)."
            .into(),
        cells,
    }
}

fn multi_message() -> CampaignSpec {
    let mm = |n: u64, k: u32, channels: u64| ProtocolKind::MultiMessage {
        n,
        k,
        channels,
        p: 0.25,
    };
    let mut cells: Vec<CellSpec> = [1u32, 2, 4, 8, 16]
        .iter()
        .map(|&k| CellSpec::new(mm(32, k, 16), AdversaryKind::Silent).with_max_slots(20_000_000))
        .collect();
    // Half-band jamming against the k = 4 ladder point.
    cells.push(
        CellSpec::new(
            mm(32, 4, 16),
            AdversaryKind::Uniform {
                t: 20_000,
                frac: 0.5,
            },
        )
        .with_max_slots(20_000_000),
    );
    // The same protocol, unchanged, over an 8x8 grid: the unified
    // Simulation core means the new workload composes with the topology
    // axis for free.
    cells.push(
        CellSpec::new(mm(64, 4, 8), AdversaryKind::Silent)
            .with_topology(TopologyKind::Grid { cols: 8 })
            .with_max_slots(20_000_000),
    );
    CampaignSpec {
        name: "multi-message".into(),
        description: "MultiMessageCast (k concurrent payloads, partial holders \
                      relay a uniformly random known message, p = 0.25): a k \
                      ladder 1..16 at n = 32 on 16 channels, a half-band-jammed \
                      k = 4 cell, and k = 4 relayed across an 8x8 grid. \
                      Completion means every reachable node holds all k \
                      messages (multi-message broadcast, Ahmadi-Kuhn \
                      arXiv:1610.02931); completion time should grow roughly \
                      like the coupon-collector factor in k."
            .into(),
        cells,
    }
}

fn nemesis() -> CampaignSpec {
    let mc32 = || ProtocolKind::MultiCast {
        n: 32,
        params: McParams::default(),
    };
    let mut cells = Vec::new();
    // Sub-family 1 — mid-run jammer swap: the oblivious uniform jammer is
    // replaced at slot 4096 by a fresh-budget adaptive reactive jammer, and
    // a front-loaded burst is swapped out for silence at slot 8192.
    cells.push(
        CellSpec::new(
            mc32(),
            AdversaryKind::Uniform {
                t: 20_000,
                frac: 0.5,
            },
        )
        .with_schedule(ScheduleSpec::new().at(
            4096,
            ScheduleEventKind::SwapEve(AdversaryKind::Reactive {
                t: 20_000,
                max_channels: 8,
            }),
        )),
    );
    cells.push(
        CellSpec::new(
            mc32(),
            AdversaryKind::Burst {
                t: 20_000,
                start: 0,
            },
        )
        .with_schedule(
            ScheduleSpec::new().at(8192, ScheduleEventKind::SwapEve(AdversaryKind::Silent)),
        ),
    );
    // Sub-family 2 — partition-then-heal on an 8x8 grid: the top four rows
    // (source included) are cut off from the rest at slot 64, long before
    // the wave crosses the boundary, and reconnected at slot 4096;
    // completion still means every reachable node informed.
    cells.push(
        CellSpec::new(
            ProtocolKind::MultiHop {
                n: 64,
                channels: 8,
                p: 0.25,
            },
            AdversaryKind::Silent,
        )
        .with_topology(TopologyKind::Grid { cols: 8 })
        .with_schedule(
            ScheduleSpec::new()
                .at(
                    64,
                    ScheduleEventKind::Partition {
                        groups: vec![(0..32).collect()],
                    },
                )
                .at(4096, ScheduleEventKind::Heal),
        )
        .with_max_slots(20_000_000),
    );
    // Sub-family 3 — crash-f sweep: fail-stop the f highest node ids at
    // slot 64; the outcome verdict is survivor-relative.
    for f in [1u32, 2, 4] {
        cells.push(CellSpec::new(mc32(), AdversaryKind::Silent).with_schedule(
            ScheduleSpec::new().at(
                64,
                ScheduleEventKind::CrashNodes {
                    nodes: (32 - f..32).collect(),
                },
            ),
        ));
    }
    // Sub-family 4 — lossy-link ladder on a line: every delivery along the
    // 31-hop path is dropped iid with probability p from slot 0.
    for &p in &[0.1f64, 0.3, 0.5] {
        cells.push(
            CellSpec::new(
                ProtocolKind::MultiHop {
                    n: 32,
                    channels: 8,
                    p: 0.25,
                },
                AdversaryKind::Silent,
            )
            .with_topology(TopologyKind::Line)
            .with_schedule(ScheduleSpec::new().at(0, ScheduleEventKind::SetLinkLoss { p }))
            .with_max_slots(20_000_000),
        );
    }
    CampaignSpec {
        name: "nemesis".into(),
        description: "Declarative world-schedule fault injection over the \
                      unified engine: a mid-run jammer swap pair (uniform -> \
                      reactive, burst -> silent, fresh budgets), a \
                      partition-then-heal cut on an 8x8 grid, a crash-f sweep \
                      (f in {1, 2, 4} fail-stop nodes, survivor-relative \
                      verdicts), and a lossy-link ladder (p in {0.1, 0.3, \
                      0.5}) down a 31-hop line. Every event lands on a \
                      fast-forward span boundary, so scheduled cells keep the \
                      engine's determinism guarantees."
            .into(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_eight_unique_scenarios() {
        let reg = registry();
        assert!(reg.len() >= 8, "only {} scenarios", reg.len());
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate scenario names");
    }

    #[test]
    fn every_scenario_expands_to_nonempty_cells() {
        for s in registry() {
            let spec = (s.build)();
            assert_eq!(spec.name, s.name, "spec name must match catalog name");
            assert!(!spec.cells.is_empty(), "{} has no cells", s.name);
            assert!(!spec.description.is_empty());
            for cell in &spec.cells {
                assert!(cell.max_slots > 0);
                // Budgets must be finite so no campaign can run unbounded.
                assert!(cell.adversary.budget() < u64::MAX / 4);
            }
        }
    }

    #[test]
    fn find_by_name() {
        assert!(find("core-repro").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    /// Golden output for `rcb describe`: the schema-v2 fields — topology
    /// generator parameters and full adversary parameters — must all be
    /// rendered, byte-for-byte stable. `multi-hop` exercises every column
    /// (parameterized protocol, parameterized adversaries, nested dynamic
    /// topology with a computed radius).
    #[test]
    fn describe_golden_output_includes_topology_and_adversary_parameters() {
        let s = find("multi-hop").expect("registered");
        let text = describe_campaign(&(s.build)(), s.summary);
        let golden = concat!(
        "# multi-hop — MultiHopCast over line/grid/geometric/dynamic topologies, with and without jamming\n",
        "\n",
        "MultiHopCast (informed nodes relay with the sender schedule, p = 0.25) over a topology family: lines of diameter 31/63, an 8x8 grid, per-trial random geometric graphs at a connectivity-safe radius, and a dynamic variant with 30% per-round edge churn. Completion means every node reachable from the source is informed (Ahmadi-Kuhn dynamic-network reference model).\n",
        "\n",
        "5 cells:\n",
        "  [ 0] MultiHopCast{n=32, channels=8, p=0.25}  vs silent                     on line                                                      cap = 20000000\n",
        "  [ 1] MultiHopCast{n=64, channels=8, p=0.25}  vs uniform{T=20000, frac=0.5} on line                                                      cap = 20000000\n",
        "  [ 2] MultiHopCast{n=64, channels=8, p=0.25}  vs uniform{T=20000, frac=0.5} on grid{cols=8}                                              cap = 20000000\n",
        "  [ 3] MultiHopCast{n=64, channels=16, p=0.25} vs silent                     on random-geometric{radius=0.4415}                           cap = 20000000\n",
        "  [ 4] MultiHopCast{n=64, channels=16, p=0.25} vs burst{T=30000, start=0}    on dynamic{base=random-geometric{radius=0.4415}, p_down=0.3} cap = 20000000\n",
        );
        assert_eq!(text, golden);
    }

    /// Every scenario's describe output must carry full adversary detail
    /// (not just short names) and a topology column.
    #[test]
    fn describe_covers_every_scenario() {
        for s in registry() {
            let spec = (s.build)();
            let text = describe_campaign(&spec, s.summary);
            assert!(text.starts_with(&format!("# {} — ", s.name)));
            for cell in &spec.cells {
                assert!(
                    text.contains(&cell.adversary.detail()),
                    "{}: missing adversary detail {}",
                    s.name,
                    cell.adversary.detail()
                );
                assert!(
                    text.contains(&format!("on {}", cell.topology.detail())),
                    "{}: missing topology detail",
                    s.name
                );
            }
        }
    }

    #[test]
    fn adaptive_grid_covers_the_reactivity_plane() {
        let spec = (find("adaptive-grid").expect("registered").build)();
        assert!(spec.cells.len() >= 11, "3x3 grid + threshold cells");
        let mut windows = std::collections::BTreeSet::new();
        let mut caps = std::collections::BTreeSet::new();
        let mut thresholds = std::collections::BTreeSet::new();
        for cell in &spec.cells {
            assert!(cell.adversary.is_adaptive(), "grid cells must be adaptive");
            let AdversaryKind::ReactiveWindow {
                window,
                max_channels,
                threshold,
                ..
            } = cell.adversary
            else {
                panic!("adaptive-grid must sweep the reactive family");
            };
            windows.insert(window);
            caps.insert(max_channels);
            thresholds.insert(threshold);
        }
        assert!(windows.len() >= 3, "window axis: {windows:?}");
        assert!(caps.len() >= 3, "cap axis: {caps:?}");
        assert!(
            thresholds.iter().any(|&t| t > 1),
            "a trigger-threshold cell must be present: {thresholds:?}"
        );
    }

    #[test]
    fn multi_message_covers_the_k_axis() {
        let spec = (find("multi-message").expect("registered").build)();
        assert!(spec.cells.len() >= 7, "k ladder + jammed + grid cells");
        let mut ks = std::collections::BTreeSet::new();
        for cell in &spec.cells {
            let ProtocolKind::MultiMessage { k, .. } = cell.protocol else {
                panic!("multi-message must run MultiMessageCast");
            };
            ks.insert(k);
            assert!(cell.protocol.never_halts());
        }
        assert!(ks.len() >= 4, "k axis too small: {ks:?}");
        assert!(
            spec.cells.iter().any(|c| c.adversary.budget() > 0),
            "a jammed cell must be present"
        );
        assert!(
            spec.cells.iter().any(|c| !c.topology.is_complete()),
            "a multi-hop cell must be present"
        );
    }

    #[test]
    fn multi_hop_covers_the_topology_family() {
        let spec = (find("multi-hop").expect("registered").build)();
        assert!(spec.cells.len() >= 5);
        let mut topologies: Vec<&str> = spec.cells.iter().map(|c| c.topology.name()).collect();
        topologies.sort_unstable();
        topologies.dedup();
        assert!(topologies.contains(&"line"));
        assert!(topologies.contains(&"grid"));
        assert!(topologies.contains(&"random-geometric"));
        assert!(topologies.contains(&"dynamic"));
        assert!(
            spec.cells.iter().all(|c| c.protocol.never_halts()),
            "multi-hop cells must run under stop_when_all_informed"
        );
        // Every other scenario stays on the single-hop default (except
        // multi-message, whose grid cell demonstrates the unified core, and
        // nemesis, whose partition/lossy-link cells need real graphs).
        for s in registry() {
            if s.name != "multi-hop" && s.name != "multi-message" && s.name != "nemesis" {
                assert!((s.build)().cells.iter().all(|c| c.topology.is_complete()));
            }
        }
    }

    /// Golden output for the schema-v4 schedule column: scheduled cells
    /// render `sched = <summary> (<detail>)` after the cap, unscheduled
    /// cells stay byte-identical to the v3 rendering (the multi-hop golden
    /// test above pins that).
    #[test]
    fn describe_golden_output_includes_schedule_column() {
        let s = find("nemesis").expect("registered");
        let spec = (s.build)();
        let text = describe_campaign(&spec, s.summary);
        assert!(text.starts_with("# nemesis — World-schedule fault injection"));
        assert!(text.contains("9 cells:\n"));
        // One full golden row per sub-family.
        assert!(
            text.contains("cap = 50000000  sched = 1 event @ 4096 (swap-eve@4096)\n"),
            "jammer-swap row missing schedule column:\n{text}"
        );
        assert!(
            text.contains(
                "cap = 20000000  sched = 2 events @ 64..4096 (partition@64, heal@4096)\n"
            ),
            "partition row missing schedule column:\n{text}"
        );
        assert!(
            text.contains("cap = 50000000  sched = 1 event @ 64 (crash@64)\n"),
            "crash row missing schedule column:\n{text}"
        );
        assert!(
            text.contains("cap = 20000000  sched = 1 event @ 0 (set-link-loss@0)\n"),
            "lossy-link row missing schedule column:\n{text}"
        );
        // Unscheduled scenarios must not grow the column.
        let mh = find("multi-hop").expect("registered");
        assert!(!describe_campaign(&(mh.build)(), mh.summary).contains("sched ="));
    }

    #[test]
    fn nemesis_covers_every_event_family() {
        let spec = (find("nemesis").expect("registered").build)();
        assert!(spec.cells.len() >= 9, "four sub-families");
        assert!(spec.cells.iter().all(|c| !c.schedule.is_empty()));
        let kinds: std::collections::BTreeSet<&str> = spec
            .cells
            .iter()
            .flat_map(|c| c.schedule.events.iter().map(|(_, e)| e.name()))
            .collect();
        for kind in ["swap-eve", "partition", "heal", "crash", "set-link-loss"] {
            assert!(kinds.contains(kind), "missing event family {kind}");
        }
        // The crash sweep covers several f values.
        let crash_sizes: std::collections::BTreeSet<usize> = spec
            .cells
            .iter()
            .flat_map(|c| c.schedule.events.iter())
            .filter_map(|(_, e)| match e {
                ScheduleEventKind::CrashNodes { nodes } => Some(nodes.len()),
                _ => None,
            })
            .collect();
        assert!(crash_sizes.len() >= 3, "crash-f sweep: {crash_sizes:?}");
    }
}
