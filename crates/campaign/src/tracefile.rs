//! Structured trace export (`rcb run --trace-out`): schema-versioned JSONL.
//!
//! A trace file is one JSON object per line. The first line is a header
//! carrying [`TRACE_SCHEMA_VERSION`], the kind tag `"rcb-trace"`, and the
//! campaign identity; every following line is an event object whose
//! `event` field is one of:
//!
//! * `trial_start` — `{event, trial, cell, seed}`; `trial` is the global
//!   trial index (strictly increasing), `cell` the cell index it belongs
//!   to, `seed` the derived engine master seed.
//! * `informed` / `halted` — `{event, trial, slot, node}` per node state
//!   change, straight from the engine's [`Observer`] seat.
//! * `boundary` — `{event, trial, slot, seg_major, seg_minor, step,
//!   active, informed}` per protocol segment boundary.
//! * `idle_span` — `{event, trial, slot, len, jammed}` per fast-forwarded
//!   idle span (`len` slots skipped, `jammed` channel-slots of Eve's
//!   budget spent across it).
//! * `trial_end` — `{event, trial, slots, completed, all_informed,
//!   eve_spent}` summarizing the finished trial.
//!
//! Per-slot events (`Observer::on_slot`) are deliberately **not** exported:
//! a trace line per executed slot would dwarf every other event class by
//! orders of magnitude. Slot-level activity is what the `perf` counters
//! aggregate; traces carry the *state changes*.
//!
//! Lines are emitted in deterministic order, which is why trace export runs
//! trials sequentially on one thread
//! ([`run_campaign_traced`](crate::run_campaign_traced)): same scenario +
//! seed ⇒ byte-identical trace file.
//!
//! I/O errors do not panic mid-run: the writer latches the first error and
//! drops subsequent lines; [`TraceWriter::check`]/[`TraceWriter::finish`]
//! surface it.

use crate::json::Json;
use rcb_harness::TrialResult;
use rcb_sim::{NodeId, Observer, SlotProfile};
use std::io::Write;

/// Version of the JSONL trace schema. History:
///
/// * **1** — initial schema: header + `trial_start` / `informed` /
///   `halted` / `boundary` / `idle_span` / `trial_end` events.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Writes schema-versioned trace lines into a byte sink, latching the
/// first I/O error instead of panicking inside engine callbacks.
pub struct TraceWriter<'w> {
    sink: &'w mut dyn Write,
    err: Option<std::io::Error>,
    lines: u64,
}

impl<'w> TraceWriter<'w> {
    pub fn new(sink: &'w mut dyn Write) -> Self {
        Self {
            sink,
            err: None,
            lines: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    fn line(&mut self, j: Json) {
        if self.err.is_some() {
            return;
        }
        match writeln!(self.sink, "{}", j.to_compact()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.err = Some(e),
        }
    }

    /// The mandatory first line of every trace file.
    pub fn header(&mut self, campaign: &str, seed: u64, trials_per_cell: u64, total_trials: u64) {
        self.line(Json::obj(vec![
            ("schema_version", TRACE_SCHEMA_VERSION.into()),
            ("kind", "rcb-trace".into()),
            ("code_version", crate::report::code_version().into()),
            ("campaign", campaign.into()),
            ("seed", seed.into()),
            ("trials_per_cell", trials_per_cell.into()),
            ("total_trials", total_trials.into()),
        ]));
    }

    pub fn trial_start(&mut self, trial: u64, cell: u64, seed: u64) {
        self.line(Json::obj(vec![
            ("event", "trial_start".into()),
            ("trial", trial.into()),
            ("cell", cell.into()),
            ("seed", seed.into()),
        ]));
    }

    pub fn trial_end(&mut self, trial: u64, r: &TrialResult) {
        self.line(Json::obj(vec![
            ("event", "trial_end".into()),
            ("trial", trial.into()),
            ("slots", r.slots.into()),
            ("completed", r.completed.into()),
            ("all_informed", r.all_informed.into()),
            ("eve_spent", r.eve_spent.into()),
        ]));
    }

    /// Surface the first latched I/O error without consuming the writer.
    pub fn check(&mut self) -> std::io::Result<()> {
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Flush the sink and surface the first latched I/O error.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.check()?;
        self.sink.flush()?;
        Ok(self.lines)
    }
}

/// Mounts a [`TraceWriter`] into the engine's [`Observer`] seat for one
/// trial, stamping every event line with the trial's global index.
pub struct TrialTraceObserver<'a, 'w> {
    writer: &'a mut TraceWriter<'w>,
    trial: u64,
}

impl<'a, 'w> TrialTraceObserver<'a, 'w> {
    pub fn new(writer: &'a mut TraceWriter<'w>, trial: u64) -> Self {
        Self { writer, trial }
    }

    fn node_event(&mut self, event: &str, node: NodeId, slot: u64) {
        self.writer.line(Json::obj(vec![
            ("event", event.into()),
            ("trial", self.trial.into()),
            ("slot", slot.into()),
            ("node", node.into()),
        ]));
    }
}

impl Observer for TrialTraceObserver<'_, '_> {
    fn on_informed(&mut self, node: NodeId, slot: u64) {
        self.node_event("informed", node, slot);
    }

    fn on_halted(&mut self, node: NodeId, slot: u64) {
        self.node_event("halted", node, slot);
    }

    fn on_boundary(&mut self, slot: u64, profile: &SlotProfile, active: u32, informed: u32) {
        self.writer.line(Json::obj(vec![
            ("event", "boundary".into()),
            ("trial", self.trial.into()),
            ("slot", slot.into()),
            ("seg_major", profile.seg_major.into()),
            ("seg_minor", profile.seg_minor.into()),
            ("step", u32::from(profile.step).into()),
            ("active", active.into()),
            ("informed", informed.into()),
        ]));
    }

    fn on_idle_span(&mut self, slot: u64, len: u64, jammed: u64) {
        self.writer.line(Json::obj(vec![
            ("event", "idle_span".into()),
            ("trial", self.trial.into()),
            ("slot", slot.into()),
            ("len", len.into()),
            ("jammed", jammed.into()),
        ]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonin::parse;

    #[test]
    fn header_and_events_are_one_json_object_per_line() {
        let mut buf: Vec<u8> = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        w.header("demo", 7, 2, 4);
        w.trial_start(0, 0, 99);
        {
            let mut obs = TrialTraceObserver::new(&mut w, 0);
            obs.on_informed(3, 10);
            obs.on_idle_span(11, 500, 2);
            let profile = SlotProfile {
                p1: 0.5,
                p2: 0.5,
                channels: 2,
                virt_channels: 2,
                round_len: 1,
                seg_len: 8,
                seg_major: 1,
                seg_minor: 2,
                step: 3,
            };
            obs.on_boundary(16, &profile, 4, 2);
        }
        let lines = w.finish().unwrap();
        assert_eq!(lines, 5);
        let text = String::from_utf8(buf).unwrap();
        let parsed: Vec<Json> = text.lines().map(|l| parse(l).unwrap()).collect();
        assert_eq!(parsed.len(), 5);
        assert!(text.starts_with(&format!(
            "{{\"schema_version\":{TRACE_SCHEMA_VERSION},\"kind\":\"rcb-trace\""
        )));
        assert!(text.contains("\"event\":\"informed\""));
        assert!(text.contains("\"event\":\"idle_span\""));
        assert!(text.contains("\"seg_major\":1"));
    }

    #[test]
    fn io_errors_latch_instead_of_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = Broken;
        let mut w = TraceWriter::new(&mut sink);
        w.header("demo", 1, 1, 1);
        w.trial_start(0, 0, 1); // silently dropped after the latch
        assert_eq!(w.lines(), 0);
        assert!(w.finish().is_err());
    }
}
