//! Campaign artifacts: the schema-versioned JSON report and the human
//! table.
//!
//! The JSON artifact is the machine-readable product of a campaign — the
//! file that seeds the repo's `BENCH_<scenario>.json` performance
//! trajectory. Its byte content is a pure function of (scenario, seed,
//! trials, max-slots override); thread count, wall-clock time, and host
//! never leak into it. Bump [`SCHEMA_VERSION`] on any field change.

use crate::json::Json;
use rcb_sim::EngineTelemetry;
use rcb_stats::Table;

/// Version of the JSON artifact schema. History:
///
/// * **1** — initial schema: campaign header + per-cell
///   counts/rates/metric distributions (mean/std/min/max/p50/p90/p99).
/// * **2** — per-cell `topology` (connectivity graph of the cell's trials;
///   `"complete"` is the paper's single-hop model) and `helper_events`
///   (count per distinct `MultiCastAdv` helper `(epoch, phase)`).
/// * **3** — header `code_version` (git revision of the producing binary)
///   and per-cell `perf` block ([`CellPerf`]): engine telemetry counter
///   sums plus opt-in wall-clock phase timing. The counter leaves are
///   deterministic; the wall-clock leaves are host-dependent and are
///   ignored by `rcb diff` by default (zeros unless timing was requested).
/// * **4** — per-cell `schedule` block ([`ScheduleReport`]) on cells that
///   run under a world schedule (nemesis fault injection): the event list,
///   the aggregated application timeline, survivor-relative outcome
///   distributions, and the schedule telemetry counters
///   (`schedule_events`, `crashed_node_slots`). The block is **omitted
///   entirely** for unscheduled cells, so every pre-existing cell's JSON is
///   byte-identical to its v3 rendering.
/// * **5** — `perf.ff_gated_segments`: segments where the heuristic
///   fast-forward gate fell back to the plain slot loop.
pub const SCHEMA_VERSION: u64 = 5;

/// Git revision baked into this binary at build time (stamped into every
/// artifact header as `code_version`; `"unknown"` when git was unavailable
/// at build time).
pub fn code_version() -> &'static str {
    env!("RCB_CODE_VERSION")
}

/// One non-empty bucket of the fast-forward span length histogram:
/// `count` spans had length in `[2^log2, 2^(log2+1))`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanLenBucket {
    pub log2: u32,
    pub count: u64,
}

/// The per-cell `perf` block: engine telemetry merged over the cell's
/// trials.
///
/// Two kinds of leaves live here, deliberately in one block:
///
/// * **Deterministic counters** (`slots_*`, `spans`, `rng_*`, `jam_*`,
///   `observer_events`, the histogram and the ratios derived from them) —
///   pure functions of (scenario, seed, trials); byte-identical across
///   hosts, thread counts, and whether timing was enabled.
/// * **Host-dependent timing** (`wall_s`, `slots_per_sec`, and the four
///   `*_s` phase leaves) — all zero unless the producer opted into
///   wall-clock collection (`rcb run --perf`, `rcb bench`, `rcb profile`).
///   `rcb diff` ignores these leaves by default ([`crate::diff::DEFAULT_IGNORES`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellPerf {
    pub slots_total: u64,
    pub slots_stepped: u64,
    pub slots_fast_forwarded: u64,
    /// `slots_fast_forwarded / slots_total` (0 for empty cells).
    pub ff_skip_ratio: f64,
    pub spans: u64,
    pub mean_span_len: f64,
    /// Segments where the heuristic fast-forward gate fell back to the
    /// plain slot loop (idle spans too unlikely or the run too short).
    pub ff_gated_segments: u64,
    /// Sparse log₂ histogram of fast-forward span lengths (non-empty
    /// buckets only, ascending `log2`).
    pub span_len_hist: Vec<SpanLenBucket>,
    pub rng_engine_draws: u64,
    pub rng_node_draws: u64,
    pub jam_spent_stepped: u64,
    pub jam_spent_spans: u64,
    pub observer_events: u64,
    /// Total wall-clock seconds attributed to the cell (0 when untimed).
    pub wall_s: f64,
    /// Covered slots (stepped + fast-forwarded) per wall second (0 when
    /// untimed).
    pub slots_per_sec: f64,
    pub setup_s: f64,
    pub slot_loop_s: f64,
    pub fast_forward_s: f64,
    pub finalize_s: f64,
}

impl CellPerf {
    /// Build the block from merged engine telemetry plus a wall-clock total.
    ///
    /// Pass `wall_s = 0.0` when no timing was collected; the throughput
    /// leaf stays zero rather than dividing by a meaningless duration.
    pub fn from_telemetry(tel: &EngineTelemetry, wall_s: f64) -> Self {
        let ns = 1e-9;
        Self {
            slots_total: tel.slots_total(),
            slots_stepped: tel.slots_stepped,
            slots_fast_forwarded: tel.slots_fast_forwarded,
            ff_skip_ratio: tel.ff_skip_ratio(),
            spans: tel.spans,
            mean_span_len: tel.mean_span_len(),
            ff_gated_segments: tel.ff_gated_segments,
            span_len_hist: tel
                .span_len_hist
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, &c)| SpanLenBucket {
                    log2: b as u32,
                    count: c,
                })
                .collect(),
            rng_engine_draws: tel.rng_engine_draws,
            rng_node_draws: tel.rng_node_draws,
            jam_spent_stepped: tel.jam_spent_stepped,
            jam_spent_spans: tel.jam_spent_spans,
            observer_events: tel.observer_events,
            wall_s,
            slots_per_sec: if wall_s > 0.0 {
                tel.slots_total() as f64 / wall_s
            } else {
                0.0
            },
            setup_s: tel.phases.setup as f64 * ns,
            slot_loop_s: tel.phases.slot_loop as f64 * ns,
            fast_forward_s: tel.phases.fast_forward as f64 * ns,
            finalize_s: tel.phases.finalize as f64 * ns,
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("slots_total", self.slots_total.into()),
            ("slots_stepped", self.slots_stepped.into()),
            ("slots_fast_forwarded", self.slots_fast_forwarded.into()),
            ("ff_skip_ratio", self.ff_skip_ratio.into()),
            ("spans", self.spans.into()),
            ("mean_span_len", self.mean_span_len.into()),
            ("ff_gated_segments", self.ff_gated_segments.into()),
            (
                "span_len_hist",
                Json::arr(
                    self.span_len_hist
                        .iter()
                        .map(|b| {
                            Json::obj(vec![("log2", b.log2.into()), ("count", b.count.into())])
                        })
                        .collect(),
                ),
            ),
            ("rng_engine_draws", self.rng_engine_draws.into()),
            ("rng_node_draws", self.rng_node_draws.into()),
            ("jam_spent_stepped", self.jam_spent_stepped.into()),
            ("jam_spent_spans", self.jam_spent_spans.into()),
            ("observer_events", self.observer_events.into()),
            ("wall_s", self.wall_s.into()),
            ("slots_per_sec", self.slots_per_sec.into()),
            ("setup_s", self.setup_s.into()),
            ("slot_loop_s", self.slot_loop_s.into()),
            ("fast_forward_s", self.fast_forward_s.into()),
            ("finalize_s", self.finalize_s.into()),
        ])
    }
}

/// Aggregated application record of one scheduled world event (schema v4).
///
/// Events apply at the first round start at or after their scheduled slot,
/// and they apply in spec order, so entry `i` of a cell's timeline always
/// corresponds to event `i` of the cell's schedule. A trial that ends
/// before reaching an event leaves no marker, which is what
/// `applied_trials < trials` records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Slot the event was scheduled at.
    pub scheduled_at: u64,
    /// Trials in which the event was actually applied.
    pub applied_trials: u64,
    /// Earliest application slot seen across those trials.
    pub applied_at_min: u64,
    /// Latest application slot seen across those trials.
    pub applied_at_max: u64,
}

impl TimelineEntry {
    fn to_json(self, kind: &str) -> Json {
        Json::obj(vec![
            ("kind", kind.into()),
            ("scheduled_at", self.scheduled_at.into()),
            ("applied_trials", self.applied_trials.into()),
            ("applied_at_min", self.applied_at_min.into()),
            ("applied_at_max", self.applied_at_max.into()),
        ])
    }
}

/// The per-cell `schedule` block (schema v4): present only on cells that
/// run under a non-empty world schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleReport {
    /// Number of scheduled events.
    pub events: u64,
    /// Slot of the first scheduled event.
    pub first_slot: u64,
    /// Slot of the last scheduled event.
    pub last_slot: u64,
    /// Human-readable event list (`"crash@64, recover@640"`).
    pub detail: String,
    /// Event kinds, aligned with [`Self::timeline`].
    pub kinds: Vec<String>,
    /// Aggregated application record per event, in schedule order.
    pub timeline: Vec<TimelineEntry>,
    /// Crashed-node count at end of run, over trials.
    pub crashed: MetricReport,
    /// Survivor-relative informed target, over trials.
    pub survivors: MetricReport,
    /// Survivors actually informed, over trials.
    pub survivors_informed: MetricReport,
    /// Total schedule boundaries the engine processed (telemetry sum).
    pub schedule_events: u64,
    /// Integral of crashed-node count over slots (telemetry sum).
    pub crashed_node_slots: u64,
}

impl ScheduleReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("events", self.events.into()),
            ("first_slot", self.first_slot.into()),
            ("last_slot", self.last_slot.into()),
            ("detail", self.detail.as_str().into()),
            (
                "timeline",
                Json::arr(
                    self.timeline
                        .iter()
                        .zip(&self.kinds)
                        .map(|(t, kind)| t.to_json(kind))
                        .collect(),
                ),
            ),
            ("crashed", self.crashed.to_json()),
            ("survivors", self.survivors.to_json()),
            ("survivors_informed", self.survivors_informed.to_json()),
            ("schedule_events", self.schedule_events.into()),
            ("crashed_node_slots", self.crashed_node_slots.into()),
        ])
    }
}

/// How many trials saw a helper promotion at a given `(epoch, phase)` of
/// the `MultiCastAdv` schedule (Lemmas 6.1–6.3 localize these events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelperPhaseCount {
    pub epoch: u32,
    pub phase: u32,
    pub count: u64,
}

impl HelperPhaseCount {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("epoch", self.epoch.into()),
            ("phase", self.phase.into()),
            ("count", self.count.into()),
        ])
    }
}

/// Distribution summary of one metric over a cell's trials.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricReport {
    pub count: u64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    /// Quantiles from the streaming sketch (1% relative error).
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

impl MetricReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", self.count.into()),
            ("mean", self.mean.into()),
            ("std_dev", self.std_dev.into()),
            ("min", self.min.into()),
            ("max", self.max.into()),
            ("p50", self.p50.into()),
            ("p90", self.p90.into()),
            ("p99", self.p99.into()),
        ])
    }
}

/// Aggregated results for one campaign cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    pub protocol: String,
    pub adversary: String,
    /// Connectivity topology the cell ran over (`"complete"` = single-hop).
    pub topology: String,
    pub n: u64,
    /// Eve's budget `T` for this cell.
    pub budget: u64,
    /// Engine slot cap the cell ran under.
    pub max_slots: u64,
    pub trials: u64,
    pub completed: u64,
    pub all_informed: u64,
    pub completion_rate: f64,
    /// Summed over trials; any nonzero value is a protocol bug.
    pub safety_violations: u64,
    pub completion_slots: MetricReport,
    pub max_node_cost: MetricReport,
    pub mean_node_cost: MetricReport,
    pub source_cost: MetricReport,
    pub eve_spent: MetricReport,
    /// Helper promotions per `(epoch, phase)` over the cell's trials
    /// (`MultiCastAdv` only; empty otherwise).
    pub helper_events: Vec<HelperPhaseCount>,
    /// Engine telemetry merged over the cell's trials (schema v3).
    pub perf: CellPerf,
    /// World-schedule block (schema v4); `None` — and absent from the
    /// JSON — for unscheduled cells.
    pub schedule: Option<ScheduleReport>,
}

impl CellReport {
    pub(crate) fn to_json(&self) -> Json {
        let mut fields = vec![
            ("protocol", self.protocol.as_str().into()),
            ("adversary", self.adversary.as_str().into()),
            ("topology", self.topology.as_str().into()),
            ("n", self.n.into()),
            ("budget", self.budget.into()),
            ("max_slots", self.max_slots.into()),
            ("trials", self.trials.into()),
            ("completed", self.completed.into()),
            ("all_informed", self.all_informed.into()),
            ("completion_rate", self.completion_rate.into()),
            ("safety_violations", self.safety_violations.into()),
            (
                "metrics",
                Json::obj(vec![
                    ("completion_slots", self.completion_slots.to_json()),
                    ("max_node_cost", self.max_node_cost.to_json()),
                    ("mean_node_cost", self.mean_node_cost.to_json()),
                    ("source_cost", self.source_cost.to_json()),
                    ("eve_spent", self.eve_spent.to_json()),
                ]),
            ),
            (
                "helper_events",
                Json::arr(self.helper_events.iter().map(|h| h.to_json()).collect()),
            ),
            ("perf", self.perf.to_json()),
        ];
        if let Some(sched) = &self.schedule {
            fields.push(("schedule", sched.to_json()));
        }
        Json::obj(fields)
    }
}

/// The full campaign artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    pub campaign: String,
    pub description: String,
    /// Git revision of the binary that produced the artifact
    /// (`"unknown"` when git was unavailable at build time). Ignored by
    /// `rcb diff` by default.
    pub code_version: String,
    pub seed: u64,
    pub trials_per_cell: u64,
    pub total_trials: u64,
    /// One entry per cell, in spec order.
    pub cells: Vec<CellReport>,
}

impl CampaignReport {
    /// Serialize as the schema-versioned, pretty-printed JSON artifact.
    /// Deterministic: same report ⇒ same bytes.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("schema_version", SCHEMA_VERSION.into()),
            ("kind", "rcb-campaign-report".into()),
            ("code_version", self.code_version.as_str().into()),
            ("campaign", self.campaign.as_str().into()),
            ("description", self.description.as_str().into()),
            ("seed", self.seed.into()),
            ("trials_per_cell", self.trials_per_cell.into()),
            ("total_trials", self.total_trials.into()),
            (
                "cells",
                Json::arr(self.cells.iter().map(CellReport::to_json).collect()),
            ),
        ])
        .to_pretty()
    }

    /// Render the human-facing summary table (via `rcb-stats`).
    pub fn to_table(&self) -> String {
        let mut table = Table::new(&[
            "protocol",
            "adversary",
            "topo",
            "n",
            "T",
            "trials",
            "ok",
            "time p50",
            "time p99",
            "maxcost p50",
            "eve mean",
            "viol",
        ]);
        for c in &self.cells {
            table.row(&[
                c.protocol.clone(),
                c.adversary.clone(),
                c.topology.clone(),
                c.n.to_string(),
                c.budget.to_string(),
                c.trials.to_string(),
                format!("{:.0}%", 100.0 * c.completion_rate),
                format!("{:.0}", c.completion_slots.p50),
                format!("{:.0}", c.completion_slots.p99),
                format!("{:.0}", c.max_node_cost.p50),
                format!("{:.0}", c.eve_spent.mean),
                c.safety_violations.to_string(),
            ]);
        }
        format!(
            "# campaign `{}` — seed {}, {} trials/cell, {} total\n\n{}",
            self.campaign,
            self.seed,
            self.trials_per_cell,
            self.total_trials,
            table.markdown()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(v: f64) -> MetricReport {
        MetricReport {
            count: 3,
            mean: v,
            std_dev: 0.5,
            min: v - 1.0,
            max: v + 1.0,
            p50: v,
            p90: v + 0.5,
            p99: v + 0.9,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            campaign: "demo".into(),
            description: "a \"quoted\" description".into(),
            code_version: "deadbeef".into(),
            seed: 9,
            trials_per_cell: 3,
            total_trials: 3,
            cells: vec![CellReport {
                protocol: "MultiCast".into(),
                adversary: "uniform".into(),
                topology: "line".into(),
                n: 64,
                budget: 1000,
                max_slots: 5000,
                trials: 3,
                completed: 3,
                all_informed: 3,
                completion_rate: 1.0,
                safety_violations: 0,
                completion_slots: metric(120.0),
                max_node_cost: metric(14.0),
                mean_node_cost: metric(9.0),
                source_cost: metric(11.0),
                eve_spent: metric(800.0),
                helper_events: vec![HelperPhaseCount {
                    epoch: 7,
                    phase: 3,
                    count: 2,
                }],
                perf: CellPerf::default(),
                schedule: None,
            }],
        }
    }

    #[test]
    fn json_has_schema_version_and_escapes() {
        let j = report().to_json();
        assert!(j.starts_with("{\n  \"schema_version\": 5,"));
        assert!(j.contains("\"kind\": \"rcb-campaign-report\""));
        assert!(j.contains("\"code_version\": \"deadbeef\""));
        assert!(j.contains(r#"a \"quoted\" description"#));
        assert!(j.contains("\"completion_slots\""));
        assert!(j.contains("\"topology\": \"line\""));
        assert!(j.contains("\"helper_events\""));
        assert!(j.contains("\"epoch\": 7"));
        assert!(j.contains("\"perf\""));
        assert!(j.contains("\"ff_skip_ratio\""));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn cell_perf_from_telemetry_derives_ratios() {
        let mut tel = EngineTelemetry {
            slots_stepped: 100,
            slots_fast_forwarded: 300,
            spans: 2,
            jam_spent_spans: 50,
            jam_spent_stepped: 5,
            ..EngineTelemetry::default()
        };
        tel.span_len_hist[6] = 1; // one span of length ~100
        tel.span_len_hist[7] = 1; // one span of length ~200
        let p = CellPerf::from_telemetry(&tel, 0.0);
        assert_eq!(p.slots_total, 400);
        assert!((p.ff_skip_ratio - 0.75).abs() < 1e-12);
        assert_eq!(p.spans, 2);
        assert!((p.mean_span_len - 150.0).abs() < 1e-12);
        // Untimed: every wall-clock leaf stays exactly zero.
        assert_eq!(p.wall_s, 0.0);
        assert_eq!(p.slots_per_sec, 0.0);
        assert_eq!(p.slot_loop_s, 0.0);
        // Sparse histogram: 100 → bucket 6, 200 → bucket 7.
        let buckets: Vec<u32> = p.span_len_hist.iter().map(|b| b.log2).collect();
        assert_eq!(buckets, vec![6, 7]);
    }

    /// Schema v4's central compatibility promise: the `schedule` block is a
    /// *conditional* leaf set. Absent → the cell JSON is byte-identical to
    /// its v3 rendering; present → the block carries the timeline and the
    /// survivor-relative distributions.
    #[test]
    fn schedule_block_is_emitted_only_for_scheduled_cells() {
        let mut r = report();
        let without = r.to_json();
        assert!(!without.contains("\"schedule\""));

        r.cells[0].schedule = Some(ScheduleReport {
            events: 2,
            first_slot: 64,
            last_slot: 640,
            detail: "crash@64, recover@640".into(),
            kinds: vec!["crash".into(), "recover".into()],
            timeline: vec![
                TimelineEntry {
                    scheduled_at: 64,
                    applied_trials: 3,
                    applied_at_min: 64,
                    applied_at_max: 64,
                },
                TimelineEntry {
                    scheduled_at: 640,
                    applied_trials: 2,
                    applied_at_min: 640,
                    applied_at_max: 672,
                },
            ],
            crashed: metric(4.0),
            survivors: metric(60.0),
            survivors_informed: metric(60.0),
            schedule_events: 5,
            crashed_node_slots: 2304,
        });
        let with = r.to_json();
        assert!(with.contains("\"schedule\""));
        assert!(with.contains("\"detail\": \"crash@64, recover@640\""));
        assert!(with.contains("\"kind\": \"recover\""));
        assert!(with.contains("\"applied_trials\": 2"));
        assert!(with.contains("\"survivors_informed\""));
        assert!(with.contains("\"schedule_events\": 5"));
        assert!(with.contains("\"crashed_node_slots\": 2304"));
        // Everything before the schedule block is untouched: the scheduled
        // rendering extends the unscheduled one rather than rewriting it.
        let common = with
            .bytes()
            .zip(without.bytes())
            .take_while(|(a, b)| a == b)
            .count();
        let perf_at = without.find("\"perf\"").expect("perf block");
        assert!(
            common > perf_at,
            "divergence must come after the perf block"
        );
    }

    #[test]
    fn code_version_is_nonempty() {
        assert!(!code_version().is_empty());
    }

    #[test]
    fn json_is_reproducible() {
        assert_eq!(report().to_json(), report().to_json());
    }

    #[test]
    fn table_renders_every_cell() {
        let t = report().to_table();
        assert!(t.contains("MultiCast"));
        assert!(t.contains("| 100%"));
        assert!(t.contains("campaign `demo`"));
    }
}
