//! Campaign artifacts: the schema-versioned JSON report and the human
//! table.
//!
//! The JSON artifact is the machine-readable product of a campaign — the
//! file that seeds the repo's `BENCH_<scenario>.json` performance
//! trajectory. Its byte content is a pure function of (scenario, seed,
//! trials, max-slots override); thread count, wall-clock time, and host
//! never leak into it. Bump [`SCHEMA_VERSION`] on any field change.

use crate::json::Json;
use rcb_stats::Table;

/// Version of the JSON artifact schema. History:
///
/// * **1** — initial schema: campaign header + per-cell
///   counts/rates/metric distributions (mean/std/min/max/p50/p90/p99).
/// * **2** — per-cell `topology` (connectivity graph of the cell's trials;
///   `"complete"` is the paper's single-hop model) and `helper_events`
///   (count per distinct `MultiCastAdv` helper `(epoch, phase)`).
pub const SCHEMA_VERSION: u64 = 2;

/// How many trials saw a helper promotion at a given `(epoch, phase)` of
/// the `MultiCastAdv` schedule (Lemmas 6.1–6.3 localize these events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelperPhaseCount {
    pub epoch: u32,
    pub phase: u32,
    pub count: u64,
}

impl HelperPhaseCount {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("epoch", self.epoch.into()),
            ("phase", self.phase.into()),
            ("count", self.count.into()),
        ])
    }
}

/// Distribution summary of one metric over a cell's trials.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricReport {
    pub count: u64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    /// Quantiles from the streaming sketch (1% relative error).
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

impl MetricReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", self.count.into()),
            ("mean", self.mean.into()),
            ("std_dev", self.std_dev.into()),
            ("min", self.min.into()),
            ("max", self.max.into()),
            ("p50", self.p50.into()),
            ("p90", self.p90.into()),
            ("p99", self.p99.into()),
        ])
    }
}

/// Aggregated results for one campaign cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    pub protocol: String,
    pub adversary: String,
    /// Connectivity topology the cell ran over (`"complete"` = single-hop).
    pub topology: String,
    pub n: u64,
    /// Eve's budget `T` for this cell.
    pub budget: u64,
    /// Engine slot cap the cell ran under.
    pub max_slots: u64,
    pub trials: u64,
    pub completed: u64,
    pub all_informed: u64,
    pub completion_rate: f64,
    /// Summed over trials; any nonzero value is a protocol bug.
    pub safety_violations: u64,
    pub completion_slots: MetricReport,
    pub max_node_cost: MetricReport,
    pub mean_node_cost: MetricReport,
    pub source_cost: MetricReport,
    pub eve_spent: MetricReport,
    /// Helper promotions per `(epoch, phase)` over the cell's trials
    /// (`MultiCastAdv` only; empty otherwise).
    pub helper_events: Vec<HelperPhaseCount>,
}

impl CellReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("protocol", self.protocol.as_str().into()),
            ("adversary", self.adversary.as_str().into()),
            ("topology", self.topology.as_str().into()),
            ("n", self.n.into()),
            ("budget", self.budget.into()),
            ("max_slots", self.max_slots.into()),
            ("trials", self.trials.into()),
            ("completed", self.completed.into()),
            ("all_informed", self.all_informed.into()),
            ("completion_rate", self.completion_rate.into()),
            ("safety_violations", self.safety_violations.into()),
            (
                "metrics",
                Json::obj(vec![
                    ("completion_slots", self.completion_slots.to_json()),
                    ("max_node_cost", self.max_node_cost.to_json()),
                    ("mean_node_cost", self.mean_node_cost.to_json()),
                    ("source_cost", self.source_cost.to_json()),
                    ("eve_spent", self.eve_spent.to_json()),
                ]),
            ),
            (
                "helper_events",
                Json::arr(self.helper_events.iter().map(|h| h.to_json()).collect()),
            ),
        ])
    }
}

/// The full campaign artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    pub campaign: String,
    pub description: String,
    pub seed: u64,
    pub trials_per_cell: u64,
    pub total_trials: u64,
    /// One entry per cell, in spec order.
    pub cells: Vec<CellReport>,
}

impl CampaignReport {
    /// Serialize as the schema-versioned, pretty-printed JSON artifact.
    /// Deterministic: same report ⇒ same bytes.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("schema_version", SCHEMA_VERSION.into()),
            ("kind", "rcb-campaign-report".into()),
            ("campaign", self.campaign.as_str().into()),
            ("description", self.description.as_str().into()),
            ("seed", self.seed.into()),
            ("trials_per_cell", self.trials_per_cell.into()),
            ("total_trials", self.total_trials.into()),
            (
                "cells",
                Json::arr(self.cells.iter().map(CellReport::to_json).collect()),
            ),
        ])
        .to_pretty()
    }

    /// Render the human-facing summary table (via `rcb-stats`).
    pub fn to_table(&self) -> String {
        let mut table = Table::new(&[
            "protocol",
            "adversary",
            "topo",
            "n",
            "T",
            "trials",
            "ok",
            "time p50",
            "time p99",
            "maxcost p50",
            "eve mean",
            "viol",
        ]);
        for c in &self.cells {
            table.row(&[
                c.protocol.clone(),
                c.adversary.clone(),
                c.topology.clone(),
                c.n.to_string(),
                c.budget.to_string(),
                c.trials.to_string(),
                format!("{:.0}%", 100.0 * c.completion_rate),
                format!("{:.0}", c.completion_slots.p50),
                format!("{:.0}", c.completion_slots.p99),
                format!("{:.0}", c.max_node_cost.p50),
                format!("{:.0}", c.eve_spent.mean),
                c.safety_violations.to_string(),
            ]);
        }
        format!(
            "# campaign `{}` — seed {}, {} trials/cell, {} total\n\n{}",
            self.campaign,
            self.seed,
            self.trials_per_cell,
            self.total_trials,
            table.markdown()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(v: f64) -> MetricReport {
        MetricReport {
            count: 3,
            mean: v,
            std_dev: 0.5,
            min: v - 1.0,
            max: v + 1.0,
            p50: v,
            p90: v + 0.5,
            p99: v + 0.9,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            campaign: "demo".into(),
            description: "a \"quoted\" description".into(),
            seed: 9,
            trials_per_cell: 3,
            total_trials: 3,
            cells: vec![CellReport {
                protocol: "MultiCast".into(),
                adversary: "uniform".into(),
                topology: "line".into(),
                n: 64,
                budget: 1000,
                max_slots: 5000,
                trials: 3,
                completed: 3,
                all_informed: 3,
                completion_rate: 1.0,
                safety_violations: 0,
                completion_slots: metric(120.0),
                max_node_cost: metric(14.0),
                mean_node_cost: metric(9.0),
                source_cost: metric(11.0),
                eve_spent: metric(800.0),
                helper_events: vec![HelperPhaseCount {
                    epoch: 7,
                    phase: 3,
                    count: 2,
                }],
            }],
        }
    }

    #[test]
    fn json_has_schema_version_and_escapes() {
        let j = report().to_json();
        assert!(j.starts_with("{\n  \"schema_version\": 2,"));
        assert!(j.contains("\"kind\": \"rcb-campaign-report\""));
        assert!(j.contains(r#"a \"quoted\" description"#));
        assert!(j.contains("\"completion_slots\""));
        assert!(j.contains("\"topology\": \"line\""));
        assert!(j.contains("\"helper_events\""));
        assert!(j.contains("\"epoch\": 7"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn json_is_reproducible() {
        assert_eq!(report().to_json(), report().to_json());
    }

    #[test]
    fn table_renders_every_cell() {
        let t = report().to_table();
        assert!(t.contains("MultiCast"));
        assert!(t.contains("| 100%"));
        assert!(t.contains("campaign `demo`"));
    }
}
