//! `rcb bench` — engine throughput measurement over the scenario catalog.
//!
//! Criterion is unavailable offline, so this module is the repo's
//! performance trajectory: for every cell of the selected scenarios it runs
//! a few single-threaded trials through the production engine and records
//! **slots/sec** and wall time, optionally alongside the slot-by-slot
//! reference engine (`fast_forward: false`) so each artifact carries its own
//! fast-forward speedup column.
//!
//! The artifact (`rcb bench --out BENCH_engine.json`) is schema-versioned
//! like campaign reports. Two kinds of fields coexist deliberately:
//!
//! * **Deterministic** fields (`trials`, `slots_total`) are pure functions
//!   of `(scenario, seed, trials, max-slots)` — identical on any host; the
//!   CI `rcb diff` gate compares them tightly.
//! * **Timing** fields (`wall_s`, `slots_per_sec`, `speedup`) depend on the
//!   host; gates should pass them through `--ignore` or use a generous
//!   threshold.
//!
//! Measurements are single-threaded on purpose: the engine's per-core
//! throughput is the quantity the fast-forward work optimizes, and thread
//! scaling is the campaign engine's (already measured) job.

use crate::json::Json;
use crate::report::{code_version, CellPerf};
use crate::scenario::Scenario;
use rcb_harness::{batch_supported, run_trial_batch, run_trial_telemetry, TrialOptions, TrialSpec};
use rcb_sim::{derive_seed, EngineConfig, EngineTelemetry};
use rcb_stats::Table;
use std::time::Instant;

/// Version of the bench artifact schema. History:
///
/// * **1** — initial schema: header + per-scenario cell list with
///   deterministic slot totals and host-dependent throughput fields.
/// * **2** — per-cell `topology` (the connectivity graph the cell's trials
///   run over; `"complete"` is the single-hop model).
/// * **3** — header `code_version` and per-cell `perf` block
///   ([`CellPerf`]): telemetry counters merged over the fast-engine
///   trials; its wall leaves mirror the cell's measured timing.
/// * **4** — cells that run under a world schedule (the `nemesis`
///   scenario) carry a `schedule` string leaf (the event list); the leaf is
///   omitted on unscheduled cells, so pre-existing cells render
///   byte-identically to v3.
/// * **5** — measurement floor and batch lane. Per-cell `repeats` /
///   `ref_repeats` (timing-class: how many passes the wall-clock floor
///   required — tiny cells repeat until [`BenchConfig::min_wall_s`] of work
///   is measured, so `speedup` is no longer dominated by sub-millisecond
///   noise), `perf.ff_gated_segments`, and — on cells the batch lane
///   supports — `batch_width`, `batch_slots_total`, `lane_occupancy`
///   (deterministic) plus `batch_wall_s`, `batch_slots_per_sec`,
///   `batch_speedup`, `batch_vs_reference` (timing-class). Every timing
///   leaf is the *minimum* over the floor's passes, after one untimed
///   warm-up pass — noise on a deterministic workload is strictly
///   additive, so the minimum is the stable estimator.
pub const BENCH_SCHEMA_VERSION: u64 = 5;

/// How a bench run executes.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Master seed; trial seeds derive positionally from it.
    pub seed: u64,
    /// Trials per cell (sequential, single-threaded).
    pub trials_per_cell: u64,
    /// Override every cell's engine slot cap (None = the cell's own).
    pub max_slots: Option<u64>,
    /// Also time the slot-by-slot reference engine for a speedup column.
    pub reference: bool,
    /// Minimum measured wall-clock per engine per cell, in seconds. Cells
    /// whose trial set finishes faster are re-run (timing-only repeats of
    /// the same deterministic passes) until the floor is met, so the
    /// committed `speedup` leaves of microsecond-scale cells are stable
    /// run-to-run instead of timing-noise lotteries.
    pub min_wall_s: f64,
    /// Also time the trial-batched (SoA lockstep) engine on cells it
    /// supports, batching this many lanes (clamped to 1..=64). 0 disables
    /// the batch columns.
    pub batch_width: u64,
    /// Print progress lines to stderr.
    pub progress: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            trials_per_cell: 3,
            max_slots: None,
            reference: true,
            min_wall_s: 0.2,
            batch_width: 8,
            progress: false,
        }
    }
}

impl BenchConfig {
    /// The CI smoke preset: one trial per cell, capped workloads.
    pub fn quick() -> Self {
        Self {
            trials_per_cell: 1,
            max_slots: Some(2_000_000),
            ..Self::default()
        }
    }
}

/// Throughput measurement for one campaign cell.
#[derive(Clone, Debug)]
pub struct CellBench {
    pub protocol: String,
    pub adversary: String,
    /// Connectivity topology (`"complete"` = single-hop).
    pub topology: String,
    pub n: u64,
    pub budget: u64,
    pub trials: u64,
    /// Total physical slots simulated across the cell's trials
    /// (deterministic for a given seed).
    pub slots_total: u64,
    /// Timing passes the wall-clock floor required for the fast engine
    /// (1 when a single pass already met [`BenchConfig::min_wall_s`]).
    /// Host-dependent, like every wall leaf.
    pub repeats: u64,
    /// Best (minimum) wall seconds of one timed pass over the cell's
    /// trials, after an untimed warm-up pass.
    pub wall_s: f64,
    pub slots_per_sec: f64,
    /// Reference (fast-forward off) timings, when measured. The reference
    /// slot total can differ for distribution-equivalent adversaries
    /// (Gilbert–Elliott), so it is timed against its own slot count.
    pub ref_repeats: Option<u64>,
    pub ref_wall_s: Option<f64>,
    pub ref_slots_per_sec: Option<f64>,
    /// Fast-vs-reference throughput ratio, estimated as the median of
    /// per-pair ratios over interleaved fast/reference passes (so shared
    /// host noise divides out of each pair); close to, but deliberately not
    /// defined as, `slots_per_sec / ref_slots_per_sec`, whose two minima
    /// sample different moments.
    pub speedup: Option<f64>,
    /// Batch-lane columns, on cells the batch engine supports (single-hop,
    /// unscheduled, single-message) when [`BenchConfig::batch_width`] > 0.
    pub batch: Option<BatchBench>,
    /// Engine telemetry merged over the fast-engine trials (schema v3).
    /// Counter leaves are deterministic; the wall leaves repeat the cell's
    /// measured `wall_s` / `slots_per_sec` (phase leaves stay zero — bench
    /// does not enable per-phase timing, to keep the measured loop clean).
    pub perf: CellPerf,
    /// World-schedule event list (`"crash@64"`) for scheduled cells; `None`
    /// — and absent from the JSON — otherwise (schema v4).
    pub schedule: Option<String>,
}

/// Batch-lane measurement of one cell (schema v5): `batch_width` lanes of
/// the cell's deterministic trial-seed sequence executed in lockstep by the
/// SoA batch engine, timed under the same wall-clock floor as the scalar
/// engines.
#[derive(Clone, Debug)]
pub struct BatchBench {
    /// Lanes batched (deterministic; clamped to 1..=64).
    pub batch_width: u64,
    /// Slots covered across all lanes in one batched pass (deterministic).
    pub batch_slots_total: u64,
    /// Mean over lanes of `lane slots / longest lane's slots`: 1.0 when
    /// every lane runs the full lockstep walk, lower when lanes finish
    /// early and leave the walk under-occupied (deterministic).
    pub lane_occupancy: f64,
    /// Timing passes the wall-clock floor required (host-dependent).
    pub batch_repeats: u64,
    pub batch_wall_s: f64,
    pub batch_slots_per_sec: f64,
    /// `batch_slots_per_sec / slots_per_sec` — the batch lane against the
    /// scalar fast engine on the same cell (host-dependent).
    pub batch_speedup: f64,
    /// `batch_slots_per_sec / ref_slots_per_sec` — batch execution against
    /// the slot-by-slot reference, i.e. the compound win of idle
    /// fast-forward plus lane amortization (host-dependent; `None` under
    /// `--no-reference`).
    pub batch_vs_reference: Option<f64>,
}

impl BatchBench {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("batch_width", Json::from(self.batch_width)),
            ("batch_slots_total", self.batch_slots_total.into()),
            ("lane_occupancy", self.lane_occupancy.into()),
            ("batch_repeats", self.batch_repeats.into()),
            ("batch_wall_s", self.batch_wall_s.into()),
            ("batch_slots_per_sec", self.batch_slots_per_sec.into()),
            ("batch_speedup", ratio_json(self.batch_speedup)),
        ];
        if let Some(v) = self.batch_vs_reference {
            fields.push(("batch_vs_reference", ratio_json(v)));
        }
        Json::obj(fields)
    }
}

/// Serialize a throughput *ratio* at measurement resolution. Pass-to-pass
/// noise on a shared host is ±1% on a good day, so a ratio leaf carrying
/// ten digits is false precision — and lets a cell whose true ratio is 1.0
/// commit as `0.9973…` in one run and `1.0041…` in the next. Two decimals
/// is what the measurement actually resolves.
fn ratio_json(r: f64) -> Json {
    ((r * 100.0).round() / 100.0).into()
}

impl CellBench {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("protocol", Json::from(self.protocol.as_str())),
            ("adversary", self.adversary.as_str().into()),
            ("topology", self.topology.as_str().into()),
            ("n", self.n.into()),
            ("budget", self.budget.into()),
            ("trials", self.trials.into()),
            ("slots_total", self.slots_total.into()),
            ("repeats", self.repeats.into()),
            ("wall_s", self.wall_s.into()),
            ("slots_per_sec", self.slots_per_sec.into()),
        ];
        if let (Some(rr), Some(w), Some(r), Some(s)) = (
            self.ref_repeats,
            self.ref_wall_s,
            self.ref_slots_per_sec,
            self.speedup,
        ) {
            fields.push(("ref_repeats", rr.into()));
            fields.push(("ref_wall_s", w.into()));
            fields.push(("ref_slots_per_sec", r.into()));
            fields.push(("speedup", ratio_json(s)));
        }
        if let Some(batch) = &self.batch {
            fields.push(("batch", batch.to_json()));
        }
        fields.push(("perf", self.perf.to_json()));
        if let Some(sched) = &self.schedule {
            fields.push(("schedule", sched.as_str().into()));
        }
        Json::obj(fields)
    }
}

/// All cell measurements of one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioBench {
    pub scenario: String,
    pub cells: Vec<CellBench>,
}

/// The full bench artifact.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Git revision of the producing binary (see [`code_version`]).
    pub code_version: String,
    pub seed: u64,
    pub trials_per_cell: u64,
    pub max_slots: Option<u64>,
    pub scenarios: Vec<ScenarioBench>,
}

impl BenchReport {
    /// Serialize as the schema-versioned JSON artifact.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("schema_version", BENCH_SCHEMA_VERSION.into()),
            ("kind", "rcb-bench-report".into()),
            ("code_version", self.code_version.as_str().into()),
            ("seed", self.seed.into()),
            ("trials_per_cell", self.trials_per_cell.into()),
            (
                "max_slots",
                self.max_slots.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "scenarios",
                Json::arr(
                    self.scenarios
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("scenario", s.scenario.as_str().into()),
                                (
                                    "cells",
                                    Json::arr(s.cells.iter().map(CellBench::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// Render the human-facing throughput table.
    pub fn to_table(&self) -> String {
        let mut table = Table::new(&[
            "scenario",
            "protocol",
            "adversary",
            "topo",
            "n",
            "T",
            "slots",
            "wall",
            "Mslots/s",
            "ref Mslots/s",
            "speedup",
            "batch",
        ]);
        for s in &self.scenarios {
            for c in &s.cells {
                table.row(&[
                    s.scenario.clone(),
                    c.protocol.clone(),
                    c.adversary.clone(),
                    c.topology.clone(),
                    c.n.to_string(),
                    c.budget.to_string(),
                    c.slots_total.to_string(),
                    format!("{:.2}s", c.wall_s),
                    format!("{:.1}", c.slots_per_sec / 1e6),
                    c.ref_slots_per_sec
                        .map(|r| format!("{:.1}", r / 1e6))
                        .unwrap_or_else(|| "-".into()),
                    c.speedup
                        .map(|s| format!("{s:.1}x"))
                        .unwrap_or_else(|| "-".into()),
                    c.batch
                        .as_ref()
                        .map(|b| format!("{:.1}x", b.batch_speedup))
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
        }
        format!(
            "# bench — seed {}, {} trials/cell (single-threaded)\n\n{}",
            self.seed,
            self.trials_per_cell,
            table.markdown()
        )
    }
}

/// Stable 64-bit FNV-1a of a scenario name, so per-cell trial seeds are a
/// pure function of `(bench seed, scenario, cell index, trial)` — benching
/// a subset of scenarios reproduces exactly the cells the full catalog run
/// produced.
pub(crate) fn name_stream(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The engine master seed bench uses for `trial` of cell `ci` of a named
/// scenario. Shared with `rcb profile` so a profile reproduces exactly the
/// trials a bench artifact measured.
pub(crate) fn bench_trial_seed(bench_seed: u64, scenario_name: &str, ci: usize, trial: u64) -> u64 {
    let scenario_seed = derive_seed(bench_seed, name_stream(scenario_name));
    derive_seed(scenario_seed, ((ci as u64) << 32) | trial)
}

/// Upper bound on wall-clock floor repeats, so a pathological floor cannot
/// spin a cell forever.
const MAX_FLOOR_REPEATS: u64 = 100_000;

/// Repeat `pass` (one timed pass over a cell's trials, returning its wall
/// seconds) until at least `min_wall_s` of work has been measured; returns
/// `(minimum wall seconds over the passes, passes run)`. Timing noise on an
/// otherwise-deterministic workload is strictly additive (scheduler
/// preemption, cache pollution from neighbors), so the minimum — not the
/// mean — is the stable estimator: means let one preempted pass drag a
/// cell's `speedup` leaf below 1 run-to-run. The repeats are timing-only:
/// every pass recomputes the same deterministic run, so the deterministic
/// artifact leaves are unaffected by how many passes the floor needed.
fn time_floor(min_wall_s: f64, mut pass: impl FnMut() -> f64) -> (f64, u64) {
    let first = pass();
    let mut total = first;
    let mut best = first;
    let mut repeats = 1u64;
    while total < min_wall_s && repeats < MAX_FLOOR_REPEATS {
        let wall = pass();
        total += wall;
        best = best.min(wall);
        repeats += 1;
    }
    (best, repeats)
}

/// Minimum timed passes per engine, even when a single pass already meets
/// the wall-clock floor: a one-sample speedup estimate on a multi-second
/// cell still swings ±2–3% on a shared host, which is enough to flip a
/// near-1 cell across the 1.0 line.
const MIN_TIMED_PASSES: u64 = 3;

/// One engine's share of a paired measurement: deterministic slot total,
/// best (minimum) timed-pass wall, and how many timed passes ran.
struct EngineTiming {
    slots_total: u64,
    wall_s: f64,
    repeats: u64,
}

/// Time the fast engine — and, when given, the slot-by-slot reference — over
/// a cell's trials with *interleaved* passes. Each engine gets one untimed
/// warm-up pass (the fast warm-up collects the telemetry), then the floor
/// loop alternates fast and reference passes until each has `min_wall_s` of
/// measured work and [`MIN_TIMED_PASSES`] passes, reporting each engine's
/// minimum pass wall plus a paired `speedup` estimate.
///
/// Interleaving matters for `speedup`: timing one engine to completion and
/// then the other lets slow drift in the host's clock rate or neighbor load
/// land entirely on one side and push near-1 cells across the 1.0 line
/// run-to-run. Adjacent passes sample the same host conditions, so the
/// common noise divides out of each pair's wall ratio; the reported speedup
/// is the median of the per-pair ratios (slot-count-normalized, since
/// distribution-equivalent adversaries can give the reference a different
/// deterministic slot total), which is robust to the occasional preempted
/// pass in a way no ratio of independent aggregates is.
fn time_cell_pair(
    specs: &[TrialSpec],
    fast: &EngineConfig,
    reference: Option<&EngineConfig>,
    min_wall_s: f64,
) -> (EngineTiming, EngineTelemetry, Option<(EngineTiming, f64)>) {
    let one_pass = |engine: &EngineConfig, collect: bool| -> (u64, f64, EngineTelemetry) {
        let start = Instant::now();
        let mut slots_total = 0u64;
        let mut tel = EngineTelemetry::default();
        for spec in specs {
            let (r, t) = run_trial_telemetry(spec, TrialOptions::with_engine(*engine));
            slots_total += r.slots;
            if collect {
                tel.merge(&t);
            }
        }
        (slots_total, start.elapsed().as_secs_f64(), tel)
    };
    let (fast_slots, _warmup, tel) = one_pass(fast, true);
    let ref_slots = reference.map(|r| one_pass(r, false).0);

    let mut f = EngineTiming {
        slots_total: fast_slots,
        wall_s: f64::INFINITY,
        repeats: 0,
    };
    let mut r = ref_slots.map(|slots_total| EngineTiming {
        slots_total,
        wall_s: f64::INFINITY,
        repeats: 0,
    });
    let mut f_total = 0.0;
    let mut r_total = 0.0;
    let mut pair_ratios: Vec<f64> = Vec::new();
    loop {
        let fast_wall = one_pass(fast, false).1;
        f.wall_s = f.wall_s.min(fast_wall);
        f_total += fast_wall;
        f.repeats += 1;
        if let (Some(engine), Some(rt)) = (reference, r.as_mut()) {
            let ref_wall = one_pass(engine, false).1;
            rt.wall_s = rt.wall_s.min(ref_wall);
            r_total += ref_wall;
            rt.repeats += 1;
            // Per-pair fast-vs-reference throughput ratio.
            pair_ratios.push(
                (f.slots_total as f64 / fast_wall.max(1e-9))
                    / (rt.slots_total as f64 / ref_wall.max(1e-9)),
            );
        }
        let floored = |total: f64, reps: u64| {
            (total >= min_wall_s && reps >= MIN_TIMED_PASSES) || reps >= MAX_FLOOR_REPEATS
        };
        let f_done = floored(f_total, f.repeats);
        let r_done = r.as_ref().is_none_or(|rt| floored(r_total, rt.repeats));
        if f_done && r_done {
            break;
        }
    }
    pair_ratios.sort_by(|a, b| a.total_cmp(b));
    let speedup = pair_ratios.get(pair_ratios.len() / 2).copied();
    (f, tel, r.zip(speedup))
}

/// Time the trial-batched lane on one cell: `width` lanes of the cell's
/// deterministic seed sequence run in lockstep, under the same wall-clock
/// floor as the scalar engines. Returns `None` on cells outside the batch
/// lane's scope.
fn time_batch(
    spec: &TrialSpec,
    scenario_name: &str,
    ci: usize,
    cfg: &BenchConfig,
    engine: &EngineConfig,
    scalar_slots_per_sec: f64,
    ref_slots_per_sec: Option<f64>,
) -> Option<BatchBench> {
    if cfg.batch_width == 0 || !batch_supported(spec) {
        return None;
    }
    let width = cfg.batch_width.clamp(1, 64);
    let seeds: Vec<u64> = (0..width)
        .map(|lane| bench_trial_seed(cfg.seed, scenario_name, ci, lane))
        .collect();
    let one_pass = || -> (Vec<u64>, f64) {
        let start = Instant::now();
        let results = run_trial_batch(spec, &seeds, *engine);
        let lane_slots = results.iter().map(|(r, _)| r.slots).collect();
        (lane_slots, start.elapsed().as_secs_f64())
    };
    let (lane_slots, _warmup_wall) = one_pass();
    let (batch_wall_s, batch_repeats) = time_floor(cfg.min_wall_s, || one_pass().1);
    let batch_slots_total: u64 = lane_slots.iter().sum();
    let longest = lane_slots.iter().copied().max().unwrap_or(0).max(1);
    let lane_occupancy =
        batch_slots_total as f64 / (longest as f64 * lane_slots.len().max(1) as f64);
    let batch_slots_per_sec = batch_slots_total as f64 / batch_wall_s.max(1e-9);
    Some(BatchBench {
        batch_width: width,
        batch_slots_total,
        lane_occupancy,
        batch_repeats,
        batch_wall_s,
        batch_slots_per_sec,
        batch_speedup: batch_slots_per_sec / scalar_slots_per_sec.max(1e-9),
        batch_vs_reference: ref_slots_per_sec.map(|r| batch_slots_per_sec / r.max(1e-9)),
    })
}

/// Run the bench over the given catalog entries.
///
/// # Panics
/// Panics if `scenarios` is empty or `trials_per_cell` is 0.
pub fn run_bench(scenarios: &[Scenario], cfg: &BenchConfig) -> BenchReport {
    assert!(!scenarios.is_empty(), "bench needs at least one scenario");
    assert!(cfg.trials_per_cell > 0, "bench needs at least one trial");
    let fast = EngineConfig::default();
    let reference = EngineConfig {
        fast_forward: false,
        ..EngineConfig::default()
    };
    let mut out = Vec::new();
    for scenario in scenarios {
        let spec = (scenario.build)();
        let mut cells = Vec::new();
        for (ci, cell) in spec.cells.iter().enumerate() {
            let specs: Vec<TrialSpec> = (0..cfg.trials_per_cell)
                .map(|trial| {
                    let seed = bench_trial_seed(cfg.seed, &spec.name, ci, trial);
                    TrialSpec::new(cell.protocol.clone(), cell.adversary.clone(), seed)
                        .with_topology(cell.topology.clone())
                        .with_schedule(cell.schedule.clone())
                        .with_max_slots(cfg.max_slots.unwrap_or(cell.max_slots))
                })
                .collect();
            let (ft, tel, rt) = time_cell_pair(
                &specs,
                &fast,
                cfg.reference.then_some(&reference),
                cfg.min_wall_s,
            );
            let (slots_total, wall_s, repeats) = (ft.slots_total, ft.wall_s, ft.repeats);
            let (ref_wall, ref_repeats) = (
                rt.as_ref().map(|(t, _)| t.wall_s),
                rt.as_ref().map(|(t, _)| t.repeats),
            );
            let slots_per_sec = slots_total as f64 / wall_s.max(1e-9);
            let ref_slots_per_sec = rt
                .as_ref()
                .map(|(t, _)| t.slots_total as f64 / t.wall_s.max(1e-9));
            // When the heuristic gate declines every segment the fast engine
            // runs the identical plain slot loop as the reference (the gate
            // check itself is a per-segment constant), so the true ratio is
            // 1 by construction — serialize it as such instead of reporting
            // host timing noise as a regression.
            let speedup = rt.as_ref().map(|(_, s)| {
                if tel.slots_fast_forwarded == 0 {
                    1.0
                } else {
                    *s
                }
            });
            let batch = time_batch(
                &specs[0],
                &spec.name,
                ci,
                cfg,
                &fast,
                slots_per_sec,
                ref_slots_per_sec,
            );
            if cfg.progress {
                eprintln!(
                    "[rcb bench] {} cell {}/{}: {:.1}M slots/s{}",
                    spec.name,
                    ci + 1,
                    spec.cells.len(),
                    slots_per_sec / 1e6,
                    ref_slots_per_sec
                        .map(|r| format!(" ({:.1}x vs reference)", slots_per_sec / r))
                        .unwrap_or_default(),
                );
            }
            cells.push(CellBench {
                protocol: cell.protocol.name().to_string(),
                adversary: cell.adversary.name().to_string(),
                topology: cell.topology.name().to_string(),
                n: cell.protocol.n(),
                budget: cell.adversary.budget(),
                trials: cfg.trials_per_cell,
                slots_total,
                repeats,
                wall_s,
                slots_per_sec,
                ref_repeats,
                ref_wall_s: ref_wall,
                ref_slots_per_sec,
                speedup,
                batch,
                perf: CellPerf::from_telemetry(&tel, wall_s),
                schedule: (!cell.schedule.is_empty()).then(|| cell.schedule.detail()),
            });
        }
        out.push(ScenarioBench {
            scenario: spec.name,
            cells,
        });
    }
    BenchReport {
        code_version: code_version().to_string(),
        seed: cfg.seed,
        trials_per_cell: cfg.trials_per_cell,
        max_slots: cfg.max_slots,
        scenarios: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::find;
    use crate::Json;

    fn tiny_bench() -> BenchReport {
        let cfg = BenchConfig {
            trials_per_cell: 1,
            max_slots: Some(30_000),
            reference: true,
            ..BenchConfig::default()
        };
        run_bench(&[find("epidemic-race").expect("catalog entry")], &cfg)
    }

    #[test]
    fn bench_measures_every_cell_with_reference() {
        let report = tiny_bench();
        assert_eq!(report.scenarios.len(), 1);
        let cells = &report.scenarios[0].cells;
        assert_eq!(cells.len(), 8, "epidemic-race has 8 cells");
        for c in cells {
            assert!(c.slots_total > 0, "{c:?}");
            assert!(c.slots_per_sec > 0.0);
            assert!(c.ref_slots_per_sec.unwrap() > 0.0);
            assert!(c.speedup.unwrap() > 0.0);
            // The perf counters must agree with the cell's own totals.
            assert_eq!(c.perf.slots_total, c.slots_total, "{c:?}");
            assert_eq!(
                c.perf.slots_stepped + c.perf.slots_fast_forwarded,
                c.slots_total
            );
            assert!(c.perf.wall_s > 0.0);
            assert!(c.perf.slots_per_sec > 0.0);
        }
    }

    #[test]
    fn bench_slot_totals_are_seed_deterministic() {
        let totals = |seed: u64| -> Vec<u64> {
            let cfg = BenchConfig {
                seed,
                trials_per_cell: 1,
                max_slots: Some(30_000),
                reference: false,
                ..BenchConfig::default()
            };
            run_bench(&[find("epidemic-race").expect("entry")], &cfg).scenarios[0]
                .cells
                .iter()
                .map(|c| c.slots_total)
                .collect()
        };
        assert_eq!(totals(7), totals(7));
        assert_ne!(totals(7), totals(8));
    }

    /// A cell's deterministic measurements must not depend on which other
    /// scenarios were benched alongside it.
    #[test]
    fn bench_seeds_are_scenario_position_independent() {
        let cfg = BenchConfig {
            trials_per_cell: 1,
            max_slots: Some(20_000),
            reference: false,
            ..BenchConfig::default()
        };
        let race = find("epidemic-race").expect("entry");
        let ladder = find("scaling-ladder").expect("entry");
        let alone = run_bench(&[race], &cfg);
        let paired = run_bench(&[ladder, race], &cfg);
        let totals = |r: &BenchReport, s: &str| -> Vec<u64> {
            r.scenarios
                .iter()
                .find(|x| x.scenario == s)
                .expect("scenario present")
                .cells
                .iter()
                .map(|c| c.slots_total)
                .collect()
        };
        assert_eq!(
            totals(&alone, "epidemic-race"),
            totals(&paired, "epidemic-race"),
            "cell seeds must be position-independent"
        );
    }

    #[test]
    fn bench_artifact_parses_and_has_schema_markers() {
        let json = tiny_bench().to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 5,"));
        assert!(json.contains("\"kind\": \"rcb-bench-report\""));
        // epidemic-race is unscheduled: no cell may grow the schedule leaf.
        assert!(!json.contains("\"schedule\""));
        assert!(json.contains("\"code_version\""));
        assert!(json.contains("\"topology\": \"complete\""));
        assert!(json.contains("\"slots_per_sec\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"batch\""));
        assert!(json.contains("\"batch_width\""));
        assert!(json.contains("\"lane_occupancy\""));
        assert!(json.contains("\"perf\""));
        assert!(json.contains("\"span_len_hist\""));
        let parsed = crate::jsonin::parse(&json).expect("bench artifact parses");
        let Json::Object(fields) = parsed else {
            panic!("not an object")
        };
        assert!(fields.iter().any(|(k, _)| k == "scenarios"));
    }

    #[test]
    fn batch_columns_cover_single_hop_cells() {
        let report = tiny_bench();
        for c in &report.scenarios[0].cells {
            let b = c.batch.as_ref().expect("epidemic-race cells are batchable");
            assert!((1..=64).contains(&b.batch_width), "{b:?}");
            assert!(b.batch_slots_total > 0, "{b:?}");
            assert!(
                b.lane_occupancy > 0.0 && b.lane_occupancy <= 1.0 + 1e-12,
                "{b:?}"
            );
            assert!(b.batch_slots_per_sec > 0.0, "{b:?}");
            assert!(b.batch_repeats >= 1, "{b:?}");
        }
    }

    /// Batch measurement is deterministic where it claims to be: the
    /// deterministic batch leaves must agree across two bench runs.
    #[test]
    fn batch_deterministic_leaves_are_stable() {
        let leaves = |_: ()| -> Vec<(u64, u64)> {
            tiny_bench().scenarios[0]
                .cells
                .iter()
                .map(|c| {
                    let b = c.batch.as_ref().expect("batchable");
                    (b.batch_width, b.batch_slots_total)
                })
                .collect()
        };
        assert_eq!(leaves(()), leaves(()));
    }

    #[test]
    fn quick_preset_caps_workloads() {
        let q = BenchConfig::quick();
        assert_eq!(q.trials_per_cell, 1);
        assert!(q.max_slots.is_some());
        assert!(q.reference);
    }
}
