//! `rcb bench` — engine throughput measurement over the scenario catalog.
//!
//! Criterion is unavailable offline, so this module is the repo's
//! performance trajectory: for every cell of the selected scenarios it runs
//! a few single-threaded trials through the production engine and records
//! **slots/sec** and wall time, optionally alongside the slot-by-slot
//! reference engine (`fast_forward: false`) so each artifact carries its own
//! fast-forward speedup column.
//!
//! The artifact (`rcb bench --out BENCH_engine.json`) is schema-versioned
//! like campaign reports. Two kinds of fields coexist deliberately:
//!
//! * **Deterministic** fields (`trials`, `slots_total`) are pure functions
//!   of `(scenario, seed, trials, max-slots)` — identical on any host; the
//!   CI `rcb diff` gate compares them tightly.
//! * **Timing** fields (`wall_s`, `slots_per_sec`, `speedup`) depend on the
//!   host; gates should pass them through `--ignore` or use a generous
//!   threshold.
//!
//! Measurements are single-threaded on purpose: the engine's per-core
//! throughput is the quantity the fast-forward work optimizes, and thread
//! scaling is the campaign engine's (already measured) job.

use crate::json::Json;
use crate::report::{code_version, CellPerf};
use crate::scenario::Scenario;
use rcb_harness::{run_trial_telemetry, TrialOptions, TrialSpec};
use rcb_sim::{derive_seed, EngineConfig, EngineTelemetry};
use rcb_stats::Table;
use std::time::Instant;

/// Version of the bench artifact schema. History:
///
/// * **1** — initial schema: header + per-scenario cell list with
///   deterministic slot totals and host-dependent throughput fields.
/// * **2** — per-cell `topology` (the connectivity graph the cell's trials
///   run over; `"complete"` is the single-hop model).
/// * **3** — header `code_version` and per-cell `perf` block
///   ([`CellPerf`]): telemetry counters merged over the fast-engine
///   trials; its wall leaves mirror the cell's measured timing.
/// * **4** — cells that run under a world schedule (the `nemesis`
///   scenario) carry a `schedule` string leaf (the event list); the leaf is
///   omitted on unscheduled cells, so pre-existing cells render
///   byte-identically to v3.
pub const BENCH_SCHEMA_VERSION: u64 = 4;

/// How a bench run executes.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Master seed; trial seeds derive positionally from it.
    pub seed: u64,
    /// Trials per cell (sequential, single-threaded).
    pub trials_per_cell: u64,
    /// Override every cell's engine slot cap (None = the cell's own).
    pub max_slots: Option<u64>,
    /// Also time the slot-by-slot reference engine for a speedup column.
    pub reference: bool,
    /// Print progress lines to stderr.
    pub progress: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            trials_per_cell: 3,
            max_slots: None,
            reference: true,
            progress: false,
        }
    }
}

impl BenchConfig {
    /// The CI smoke preset: one trial per cell, capped workloads.
    pub fn quick() -> Self {
        Self {
            trials_per_cell: 1,
            max_slots: Some(2_000_000),
            ..Self::default()
        }
    }
}

/// Throughput measurement for one campaign cell.
#[derive(Clone, Debug)]
pub struct CellBench {
    pub protocol: String,
    pub adversary: String,
    /// Connectivity topology (`"complete"` = single-hop).
    pub topology: String,
    pub n: u64,
    pub budget: u64,
    pub trials: u64,
    /// Total physical slots simulated across the cell's trials
    /// (deterministic for a given seed).
    pub slots_total: u64,
    pub wall_s: f64,
    pub slots_per_sec: f64,
    /// Reference (fast-forward off) timings, when measured. The reference
    /// slot total can differ for distribution-equivalent adversaries
    /// (Gilbert–Elliott), so it is timed against its own slot count.
    pub ref_wall_s: Option<f64>,
    pub ref_slots_per_sec: Option<f64>,
    /// `slots_per_sec / ref_slots_per_sec`.
    pub speedup: Option<f64>,
    /// Engine telemetry merged over the fast-engine trials (schema v3).
    /// Counter leaves are deterministic; the wall leaves repeat the cell's
    /// measured `wall_s` / `slots_per_sec` (phase leaves stay zero — bench
    /// does not enable per-phase timing, to keep the measured loop clean).
    pub perf: CellPerf,
    /// World-schedule event list (`"crash@64"`) for scheduled cells; `None`
    /// — and absent from the JSON — otherwise (schema v4).
    pub schedule: Option<String>,
}

impl CellBench {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("protocol", Json::from(self.protocol.as_str())),
            ("adversary", self.adversary.as_str().into()),
            ("topology", self.topology.as_str().into()),
            ("n", self.n.into()),
            ("budget", self.budget.into()),
            ("trials", self.trials.into()),
            ("slots_total", self.slots_total.into()),
            ("wall_s", self.wall_s.into()),
            ("slots_per_sec", self.slots_per_sec.into()),
        ];
        if let (Some(w), Some(r), Some(s)) = (self.ref_wall_s, self.ref_slots_per_sec, self.speedup)
        {
            fields.push(("ref_wall_s", w.into()));
            fields.push(("ref_slots_per_sec", r.into()));
            fields.push(("speedup", s.into()));
        }
        fields.push(("perf", self.perf.to_json()));
        if let Some(sched) = &self.schedule {
            fields.push(("schedule", sched.as_str().into()));
        }
        Json::obj(fields)
    }
}

/// All cell measurements of one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioBench {
    pub scenario: String,
    pub cells: Vec<CellBench>,
}

/// The full bench artifact.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Git revision of the producing binary (see [`code_version`]).
    pub code_version: String,
    pub seed: u64,
    pub trials_per_cell: u64,
    pub max_slots: Option<u64>,
    pub scenarios: Vec<ScenarioBench>,
}

impl BenchReport {
    /// Serialize as the schema-versioned JSON artifact.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("schema_version", BENCH_SCHEMA_VERSION.into()),
            ("kind", "rcb-bench-report".into()),
            ("code_version", self.code_version.as_str().into()),
            ("seed", self.seed.into()),
            ("trials_per_cell", self.trials_per_cell.into()),
            (
                "max_slots",
                self.max_slots.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "scenarios",
                Json::arr(
                    self.scenarios
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("scenario", s.scenario.as_str().into()),
                                (
                                    "cells",
                                    Json::arr(s.cells.iter().map(CellBench::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// Render the human-facing throughput table.
    pub fn to_table(&self) -> String {
        let mut table = Table::new(&[
            "scenario",
            "protocol",
            "adversary",
            "topo",
            "n",
            "T",
            "slots",
            "wall",
            "Mslots/s",
            "ref Mslots/s",
            "speedup",
        ]);
        for s in &self.scenarios {
            for c in &s.cells {
                table.row(&[
                    s.scenario.clone(),
                    c.protocol.clone(),
                    c.adversary.clone(),
                    c.topology.clone(),
                    c.n.to_string(),
                    c.budget.to_string(),
                    c.slots_total.to_string(),
                    format!("{:.2}s", c.wall_s),
                    format!("{:.1}", c.slots_per_sec / 1e6),
                    c.ref_slots_per_sec
                        .map(|r| format!("{:.1}", r / 1e6))
                        .unwrap_or_else(|| "-".into()),
                    c.speedup
                        .map(|s| format!("{s:.1}x"))
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
        }
        format!(
            "# bench — seed {}, {} trials/cell (single-threaded)\n\n{}",
            self.seed,
            self.trials_per_cell,
            table.markdown()
        )
    }
}

/// Stable 64-bit FNV-1a of a scenario name, so per-cell trial seeds are a
/// pure function of `(bench seed, scenario, cell index, trial)` — benching
/// a subset of scenarios reproduces exactly the cells the full catalog run
/// produced.
pub(crate) fn name_stream(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The engine master seed bench uses for `trial` of cell `ci` of a named
/// scenario. Shared with `rcb profile` so a profile reproduces exactly the
/// trials a bench artifact measured.
pub(crate) fn bench_trial_seed(bench_seed: u64, scenario_name: &str, ci: usize, trial: u64) -> u64 {
    let scenario_seed = derive_seed(bench_seed, name_stream(scenario_name));
    derive_seed(scenario_seed, ((ci as u64) << 32) | trial)
}

/// Time one engine configuration over a cell's trials; returns
/// `(slots_total, wall_seconds, merged telemetry)`.
fn time_cell(specs: &[TrialSpec], engine: &EngineConfig) -> (u64, f64, EngineTelemetry) {
    let start = Instant::now();
    let mut slots_total = 0u64;
    let mut tel = EngineTelemetry::default();
    for spec in specs {
        let (r, t) = run_trial_telemetry(spec, TrialOptions::with_engine(*engine));
        slots_total += r.slots;
        tel.merge(&t);
    }
    (slots_total, start.elapsed().as_secs_f64(), tel)
}

/// Run the bench over the given catalog entries.
///
/// # Panics
/// Panics if `scenarios` is empty or `trials_per_cell` is 0.
pub fn run_bench(scenarios: &[Scenario], cfg: &BenchConfig) -> BenchReport {
    assert!(!scenarios.is_empty(), "bench needs at least one scenario");
    assert!(cfg.trials_per_cell > 0, "bench needs at least one trial");
    let fast = EngineConfig::default();
    let reference = EngineConfig {
        fast_forward: false,
        ..EngineConfig::default()
    };
    let mut out = Vec::new();
    for scenario in scenarios {
        let spec = (scenario.build)();
        let mut cells = Vec::new();
        for (ci, cell) in spec.cells.iter().enumerate() {
            let specs: Vec<TrialSpec> = (0..cfg.trials_per_cell)
                .map(|trial| {
                    let seed = bench_trial_seed(cfg.seed, &spec.name, ci, trial);
                    TrialSpec::new(cell.protocol.clone(), cell.adversary.clone(), seed)
                        .with_topology(cell.topology.clone())
                        .with_schedule(cell.schedule.clone())
                        .with_max_slots(cfg.max_slots.unwrap_or(cell.max_slots))
                })
                .collect();
            let (slots_total, wall_s, tel) = time_cell(&specs, &fast);
            let (ref_slots, ref_wall) = if cfg.reference {
                let (s, w, _) = time_cell(&specs, &reference);
                (Some(s), Some(w))
            } else {
                (None, None)
            };
            let slots_per_sec = slots_total as f64 / wall_s.max(1e-9);
            let ref_slots_per_sec = ref_slots.zip(ref_wall).map(|(s, w)| s as f64 / w.max(1e-9));
            if cfg.progress {
                eprintln!(
                    "[rcb bench] {} cell {}/{}: {:.1}M slots/s{}",
                    spec.name,
                    ci + 1,
                    spec.cells.len(),
                    slots_per_sec / 1e6,
                    ref_slots_per_sec
                        .map(|r| format!(" ({:.1}x vs reference)", slots_per_sec / r))
                        .unwrap_or_default(),
                );
            }
            cells.push(CellBench {
                protocol: cell.protocol.name().to_string(),
                adversary: cell.adversary.name().to_string(),
                topology: cell.topology.name().to_string(),
                n: cell.protocol.n(),
                budget: cell.adversary.budget(),
                trials: cfg.trials_per_cell,
                slots_total,
                wall_s,
                slots_per_sec,
                ref_wall_s: ref_wall,
                ref_slots_per_sec,
                speedup: ref_slots_per_sec.map(|r| slots_per_sec / r.max(1e-9)),
                perf: CellPerf::from_telemetry(&tel, wall_s),
                schedule: (!cell.schedule.is_empty()).then(|| cell.schedule.detail()),
            });
        }
        out.push(ScenarioBench {
            scenario: spec.name,
            cells,
        });
    }
    BenchReport {
        code_version: code_version().to_string(),
        seed: cfg.seed,
        trials_per_cell: cfg.trials_per_cell,
        max_slots: cfg.max_slots,
        scenarios: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::find;
    use crate::Json;

    fn tiny_bench() -> BenchReport {
        let cfg = BenchConfig {
            trials_per_cell: 1,
            max_slots: Some(30_000),
            reference: true,
            ..BenchConfig::default()
        };
        run_bench(&[find("epidemic-race").expect("catalog entry")], &cfg)
    }

    #[test]
    fn bench_measures_every_cell_with_reference() {
        let report = tiny_bench();
        assert_eq!(report.scenarios.len(), 1);
        let cells = &report.scenarios[0].cells;
        assert_eq!(cells.len(), 8, "epidemic-race has 8 cells");
        for c in cells {
            assert!(c.slots_total > 0, "{c:?}");
            assert!(c.slots_per_sec > 0.0);
            assert!(c.ref_slots_per_sec.unwrap() > 0.0);
            assert!(c.speedup.unwrap() > 0.0);
            // The perf counters must agree with the cell's own totals.
            assert_eq!(c.perf.slots_total, c.slots_total, "{c:?}");
            assert_eq!(
                c.perf.slots_stepped + c.perf.slots_fast_forwarded,
                c.slots_total
            );
            assert!(c.perf.wall_s > 0.0);
            assert!(c.perf.slots_per_sec > 0.0);
        }
    }

    #[test]
    fn bench_slot_totals_are_seed_deterministic() {
        let totals = |seed: u64| -> Vec<u64> {
            let cfg = BenchConfig {
                seed,
                trials_per_cell: 1,
                max_slots: Some(30_000),
                reference: false,
                ..BenchConfig::default()
            };
            run_bench(&[find("epidemic-race").expect("entry")], &cfg).scenarios[0]
                .cells
                .iter()
                .map(|c| c.slots_total)
                .collect()
        };
        assert_eq!(totals(7), totals(7));
        assert_ne!(totals(7), totals(8));
    }

    /// A cell's deterministic measurements must not depend on which other
    /// scenarios were benched alongside it.
    #[test]
    fn bench_seeds_are_scenario_position_independent() {
        let cfg = BenchConfig {
            trials_per_cell: 1,
            max_slots: Some(20_000),
            reference: false,
            ..BenchConfig::default()
        };
        let race = find("epidemic-race").expect("entry");
        let ladder = find("scaling-ladder").expect("entry");
        let alone = run_bench(&[race], &cfg);
        let paired = run_bench(&[ladder, race], &cfg);
        let totals = |r: &BenchReport, s: &str| -> Vec<u64> {
            r.scenarios
                .iter()
                .find(|x| x.scenario == s)
                .expect("scenario present")
                .cells
                .iter()
                .map(|c| c.slots_total)
                .collect()
        };
        assert_eq!(
            totals(&alone, "epidemic-race"),
            totals(&paired, "epidemic-race"),
            "cell seeds must be position-independent"
        );
    }

    #[test]
    fn bench_artifact_parses_and_has_schema_markers() {
        let json = tiny_bench().to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 4,"));
        assert!(json.contains("\"kind\": \"rcb-bench-report\""));
        // epidemic-race is unscheduled: no cell may grow the schedule leaf.
        assert!(!json.contains("\"schedule\""));
        assert!(json.contains("\"code_version\""));
        assert!(json.contains("\"topology\": \"complete\""));
        assert!(json.contains("\"slots_per_sec\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"perf\""));
        assert!(json.contains("\"span_len_hist\""));
        let parsed = crate::jsonin::parse(&json).expect("bench artifact parses");
        let Json::Object(fields) = parsed else {
            panic!("not an object")
        };
        assert!(fields.iter().any(|(k, _)| k == "scenarios"));
    }

    #[test]
    fn quick_preset_caps_workloads() {
        let q = BenchConfig::quick();
        assert_eq!(q.trials_per_cell, 1);
        assert!(q.max_slots.is_some());
        assert!(q.reference);
    }
}
