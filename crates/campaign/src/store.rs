//! Content-addressed cell result store (`.rcb-store/`).
//!
//! Every completed campaign cell can be filed under a **content key**: a
//! 128-bit FNV-1a hash over everything that determines the cell's
//! deterministic artifact bytes — artifact schema version, build stamp,
//! campaign name and master seed, the cell's index (its seed stream), the
//! full parameter renderings of protocol/adversary/topology/schedule, the
//! effective slot cap, and the trial count. `rcb run --store DIR` consults
//! the store per cell before simulating and inserts every cell it computes,
//! so re-running an unchanged scenario does **zero** simulation work and
//! still emits a byte-identical artifact; any parameter change misses the
//! store and re-simulates.
//!
//! An entry is the cell's exact accumulator state at `trials` (the same
//! bit-exact codec checkpoints use — see [`crate::checkpoint`]) with the
//! wall-clock phase counters zeroed: wall time is host noise, excluded
//! from the byte-identity contract (`rcb diff`'s default ignores), so
//! entries stay content-pure. Writes are atomic (temp + rename) and loads
//! are checksum-validated, exactly like checkpoints.
//!
//! ## Keys vs. checkpoint keys
//!
//! [`store_key`] includes the trial count — a store hit must cover the
//! whole cell. [`checkpoint_key`] is the same identity **without** the
//! trial count: a checkpoint is valid to resume at any requested trial
//! count at or above its watermark, because the per-cell seed streams
//! (`cell_trial_seed`) do not depend on trials-per-cell.
//!
//! ## GC policy
//!
//! `rcb store gc` keeps exactly the entries the **current catalog can
//! regenerate**: the entry's campaign exists in the registry and hashing
//! the catalog's current cell spec at the entry's recorded seed, trial
//! count, and slot cap reproduces the entry's key. Everything else —
//! entries from renamed/removed scenarios, changed cell parameters, older
//! build stamps, or ad-hoc `--spec` files — is garbage and is removed. An
//! entry the catalog still references is therefore never collected, no
//! matter its age.

use crate::checkpoint::{
    checkpoint_from_json, checkpoint_to_json, fnv1a64, write_atomic, CellCheckpoint, ServiceError,
    FNV_BASIS,
};
use crate::engine::CellAccumulator;
use crate::json::Json;
use crate::jsonin;
use crate::report::{code_version, SCHEMA_VERSION};
use crate::scenario::{find, CellSpec};
use rcb_sim::PhaseNanos;
use std::path::{Path, PathBuf};

/// Version of the store entry schema (independent of the campaign
/// artifact's; entries embed the checkpoint state codec, so this tracks
/// [`crate::checkpoint::CHECKPOINT_SCHEMA_VERSION`]). History:
///
/// * **1** — initial format: a checkpoint document of kind
///   `rcb-store-entry` plus an advisory `meta` block for listing and gc.
pub const STORE_SCHEMA_VERSION: u64 = 1;

/// Default store directory, relative to the working directory.
pub const DEFAULT_STORE_DIR: &str = ".rcb-store";

/// Second FNV-1a offset basis (the standard basis with its halves swapped)
/// — a second independent 64-bit pass gives the 128-bit content key.
const FNV_BASIS_ALT: u64 = 0x8422_2325_cbf2_9ce4;

/// Canonical identity string of one campaign cell — everything its
/// deterministic artifact bytes depend on, **except** the trial count.
/// `{:?}` renderings carry every parameter of the kinds, including tuning
/// fields their `name()`/`detail()` summaries omit.
fn cell_identity(
    campaign: &str,
    seed: u64,
    cell_index: u64,
    cell: &CellSpec,
    max_slots: u64,
) -> String {
    format!(
        "schema={}|code={}|campaign={campaign}|seed={seed}|cell={cell_index}|max_slots={max_slots}\
         |protocol={:?}|adversary={:?}|topology={:?}|schedule={:?}",
        SCHEMA_VERSION,
        code_version(),
        cell.protocol,
        cell.adversary,
        cell.topology,
        cell.schedule,
    )
}

/// 32-hex-digit content hash: two independent FNV-1a 64-bit passes.
pub(crate) fn hash128(identity: &str) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a64(identity.as_bytes(), FNV_BASIS),
        fnv1a64(identity.as_bytes(), FNV_BASIS_ALT)
    )
}

/// Watermark-independent cell identity key: what a checkpoint must match
/// to be resumed into this cell (any trial count ≥ its watermark).
pub fn checkpoint_key(
    campaign: &str,
    seed: u64,
    cell_index: u64,
    cell: &CellSpec,
    max_slots: u64,
) -> String {
    hash128(&cell_identity(campaign, seed, cell_index, cell, max_slots))
}

/// Full content key of a completed cell at exactly `trials` trials.
pub fn store_key(
    campaign: &str,
    seed: u64,
    cell_index: u64,
    cell: &CellSpec,
    max_slots: u64,
    trials: u64,
) -> String {
    hash128(&format!(
        "{}|trials={trials}",
        cell_identity(campaign, seed, cell_index, cell, max_slots)
    ))
}

/// One store entry's advisory metadata (the `meta` block): enough to list
/// the store and to decide gc liveness without the heavy state payload.
#[derive(Clone, Debug)]
pub struct EntrySummary {
    /// Full 32-hex content key (also the file stem).
    pub key: String,
    pub campaign: String,
    pub cell_index: u64,
    pub seed: u64,
    pub trials: u64,
    /// Effective slot cap the cell ran under.
    pub max_slots: u64,
    /// Human-readable cell description (`protocol/adversary` names).
    pub cell: String,
}

/// Parsed advisory `meta` block of one entry.
struct EntryMeta {
    max_slots: u64,
    cell: String,
    /// Build stamp recorded at insert time; absent in entries written
    /// before the stamp joined the meta block.
    code_version: Option<String>,
}

/// One row of `rcb store trend`: the same logical cell observed under one
/// build of the code.
#[derive(Clone, Debug)]
pub struct TrendRow {
    /// Full content key of the entry.
    pub key: String,
    /// Build stamp that produced the entry (`?` for entries predating the
    /// stamp in the meta block).
    pub code_version: String,
    /// Entry file modification time (ms since epoch) — the trend's time
    /// axis, since content keys carry no chronology.
    pub mtime_ms: u64,
    /// The requested leaf, rendered from the entry's state under the
    /// current catalog's cell spec. `None` when the leaf is absent from
    /// this entry's report (metric-schema drift between builds).
    pub value: Option<Json>,
}

/// Handle on a store directory. Creating the handle does not touch the
/// filesystem; the directory is created on first insert.
pub struct Store {
    dir: PathBuf,
}

impl Store {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Load and validate one entry by full key. `Ok(None)` when absent.
    fn load(&self, key: &str) -> Result<Option<CellCheckpoint>, ServiceError> {
        let path = self.path_for(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ServiceError::at(&path, e.to_string())),
        };
        let v = jsonin::parse(&text).map_err(|e| ServiceError::at(&path, e))?;
        let ckpt =
            checkpoint_from_json(&v, "rcb-store-entry").map_err(|e| ServiceError::at(&path, e))?;
        if ckpt.key != key {
            return Err(ServiceError::at(
                &path,
                format!("entry key {} does not match its file name", ckpt.key),
            ));
        }
        Ok(Some(ckpt))
    }

    /// Look up the completed-cell state for exactly this cell configuration
    /// and trial count. A hit returns the bit-exact accumulator an
    /// uninterrupted run of the cell would have produced (phase clocks
    /// zeroed); any parameter difference is a clean miss.
    pub(crate) fn lookup_cell(
        &self,
        campaign: &str,
        seed: u64,
        cell_index: u64,
        cell: &CellSpec,
        max_slots: u64,
        trials: u64,
    ) -> Result<Option<CellAccumulator>, ServiceError> {
        let key = store_key(campaign, seed, cell_index, cell, max_slots, trials);
        Ok(self.load(&key)?.map(|ckpt| ckpt.state))
    }

    /// Insert a completed cell's state under its content key (atomically;
    /// re-inserting the same key just rewrites identical bytes). Returns
    /// the key. Wall-clock phase counters are zeroed on the way in — they
    /// are host noise, not content.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_cell(
        &self,
        campaign: &str,
        seed: u64,
        cell_index: u64,
        cell: &CellSpec,
        max_slots: u64,
        trials: u64,
        state: &CellAccumulator,
    ) -> Result<String, ServiceError> {
        let key = store_key(campaign, seed, cell_index, cell, max_slots, trials);
        let mut state = state.clone();
        state.telemetry.phases = PhaseNanos::default();
        let ckpt = CellCheckpoint {
            key: key.clone(),
            campaign: campaign.to_string(),
            cell_index,
            seed,
            trials_done: trials,
            state,
        };
        let mut doc = checkpoint_to_json(&ckpt, "rcb-store-entry");
        if let Json::Object(fields) = &mut doc {
            fields.push((
                "meta".to_string(),
                Json::obj(vec![
                    ("store_schema_version", STORE_SCHEMA_VERSION.into()),
                    ("trials", trials.into()),
                    ("max_slots", max_slots.into()),
                    (
                        "cell",
                        format!("{}/{}", cell.protocol.name(), cell.adversary.name())
                            .as_str()
                            .into(),
                    ),
                    // Advisory: which build produced the entry. The build
                    // stamp is already baked into the key; recording it in
                    // clear text is what lets `rcb store trend` label its
                    // rows without reversing hashes.
                    ("code_version", code_version().into()),
                ]),
            ));
        }
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| ServiceError::at(&self.dir, e.to_string()))?;
        write_atomic(&self.path_for(&key), &doc.to_pretty())?;
        Ok(key)
    }

    /// Every entry's summary, sorted by (campaign, cell index, key) for
    /// stable listings.
    pub fn list(&self) -> Result<Vec<EntrySummary>, ServiceError> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(ServiceError::at(&self.dir, e.to_string())),
        };
        for entry in entries {
            let path = entry
                .map_err(|e| ServiceError::at(&self.dir, e.to_string()))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(key) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            // Shard planrefs live beside entries but are scheduler
            // registrations, not content (see `crate::shard`).
            if key.ends_with(".planref") {
                continue;
            }
            let ckpt = self.load(key)?.ok_or_else(|| {
                ServiceError::at(&path, "entry disappeared during listing".to_string())
            })?;
            let meta = self.entry_meta(key)?;
            out.push(EntrySummary {
                key: key.to_string(),
                campaign: ckpt.campaign,
                cell_index: ckpt.cell_index,
                seed: ckpt.seed,
                trials: ckpt.trials_done,
                max_slots: meta.as_ref().map(|m| m.max_slots).unwrap_or(0),
                cell: meta.map(|m| m.cell).unwrap_or_else(|| String::from("?")),
            });
        }
        out.sort_by(|a, b| {
            (&a.campaign, a.cell_index, &a.key).cmp(&(&b.campaign, b.cell_index, &b.key))
        });
        Ok(out)
    }

    /// The advisory meta block of an entry, if present and well-formed.
    fn entry_meta(&self, key: &str) -> Result<Option<EntryMeta>, ServiceError> {
        let path = self.path_for(key);
        let text =
            std::fs::read_to_string(&path).map_err(|e| ServiceError::at(&path, e.to_string()))?;
        let v = jsonin::parse(&text).map_err(|e| ServiceError::at(&path, e))?;
        let Json::Object(fields) = &v else {
            return Ok(None);
        };
        let Some((_, Json::Object(meta))) = fields.iter().find(|(k, _)| k == "meta") else {
            return Ok(None);
        };
        let get_u64 = |key: &str| {
            meta.iter().find_map(|(k, v)| match v {
                Json::Int(i) if k == key && *i >= 0 => Some(*i as u64),
                _ => None,
            })
        };
        let get_str = |key: &str| {
            meta.iter().find_map(|(k, v)| match v {
                Json::Str(s) if k == key => Some(s.clone()),
                _ => None,
            })
        };
        Ok(get_u64("max_slots")
            .zip(get_str("cell"))
            .map(|(max_slots, cell)| EntryMeta {
                max_slots,
                cell,
                // Entries written before the stamp was recorded have none.
                code_version: get_str("code_version"),
            }))
    }

    /// Resolve a (possibly abbreviated) key to the unique entry it
    /// prefixes. Zero or multiple matches are errors.
    pub fn resolve(&self, prefix: &str) -> Result<String, ServiceError> {
        let matches: Vec<String> = self
            .list()?
            .into_iter()
            .map(|e| e.key)
            .filter(|k| k.starts_with(prefix))
            .collect();
        match matches.len() {
            0 => Err(ServiceError::msg(format!(
                "no store entry matches key prefix `{prefix}` in {}",
                self.dir.display()
            ))),
            1 => Ok(matches.into_iter().next().expect("one match")),
            n => Err(ServiceError::msg(format!(
                "key prefix `{prefix}` is ambiguous ({n} matches); use more digits"
            ))),
        }
    }

    /// Render one entry as a standalone schema-versioned cell document
    /// (kind `rcb-store-cell`) — the form `rcb store show` prints and
    /// `rcb diff store:<key>` compares. The cell spec is resolved from the
    /// current catalog, so entries the catalog cannot regenerate (gc-dead
    /// ones) cannot be rendered.
    pub fn render_cell(&self, prefix: &str) -> Result<String, ServiceError> {
        let key = self.resolve(prefix)?;
        let ckpt = self.load(&key)?.expect("resolved keys exist");
        let scenario = find(&ckpt.campaign).ok_or_else(|| {
            ServiceError::msg(format!(
                "entry {key} belongs to campaign `{}`, which is not in the catalog; \
                 cannot resolve its cell spec to render the report",
                ckpt.campaign
            ))
        })?;
        let spec = (scenario.build)();
        let cell = spec.cells.get(ckpt.cell_index as usize).ok_or_else(|| {
            ServiceError::msg(format!(
                "entry {key} names cell {} but `{}` has only {} cells",
                ckpt.cell_index,
                ckpt.campaign,
                spec.cells.len()
            ))
        })?;
        let max_slots = self
            .entry_meta(&key)?
            .ok_or_else(|| ServiceError::at(&self.path_for(&key), "entry has no meta block"))?
            .max_slots;
        let doc = Json::obj(vec![
            ("schema_version", SCHEMA_VERSION.into()),
            ("kind", "rcb-store-cell".into()),
            ("key", key.as_str().into()),
            ("campaign", ckpt.campaign.as_str().into()),
            ("cell_index", ckpt.cell_index.into()),
            ("seed", ckpt.seed.into()),
            ("trials", ckpt.trials_done.into()),
            ("cell", ckpt.state.report(cell, max_slots).to_json()),
        ]);
        Ok(doc.to_pretty())
    }

    /// Collect garbage: remove every entry the current catalog cannot
    /// regenerate (see the module docs for the policy). Returns
    /// `(kept, removed)` key lists.
    ///
    /// Lease-aware: entries referenced by an **unfinished shard plan**
    /// (registered via a `*.planref.json` file beside the entries — see
    /// [`crate::shard`]) are never collected, even when dead under the
    /// catalog policy; collecting them would steal warm cells out from
    /// under a running fleet. Planrefs whose plan is gone or complete are
    /// retired here, returning their keys to the normal policy.
    pub fn gc(&self) -> Result<(Vec<String>, Vec<String>), ServiceError> {
        let protected = crate::shard::protected_store_keys(&self.dir)?;
        let mut kept = Vec::new();
        let mut removed = Vec::new();
        for entry in self.list()? {
            if protected.contains(&entry.key) || self.is_live(&entry)? {
                kept.push(entry.key);
            } else {
                let path = self.path_for(&entry.key);
                std::fs::remove_file(&path).map_err(|e| ServiceError::at(&path, e.to_string()))?;
                removed.push(entry.key);
            }
        }
        Ok((kept, removed))
    }

    /// An entry is live iff hashing the current catalog's cell spec at the
    /// entry's recorded parameters reproduces its key.
    fn is_live(&self, entry: &EntrySummary) -> Result<bool, ServiceError> {
        let Some(scenario) = find(&entry.campaign) else {
            return Ok(false);
        };
        let spec = (scenario.build)();
        let Some(cell) = spec.cells.get(entry.cell_index as usize) else {
            return Ok(false);
        };
        let Some(meta) = self.entry_meta(&entry.key)? else {
            return Ok(false);
        };
        Ok(store_key(
            &entry.campaign,
            entry.seed,
            entry.cell_index,
            cell,
            meta.max_slots,
            entry.trials,
        ) == entry.key)
    }

    /// Trend one report leaf across store history: every entry recording
    /// the **same logical cell** as the anchor (same campaign, cell index,
    /// seed, trial count, slot cap) under a *different build* has a
    /// different content key — the build stamp is part of the identity —
    /// so the store naturally accumulates one entry per code version the
    /// cell ran under. This renders each of them and extracts `leaf` (a
    /// dotted path into the cell report, e.g. `metrics[0].p50` or
    /// `perf.counters.slots_stepped`), giving the leaf's trajectory over
    /// `code_version`.
    ///
    /// Rows are ordered by entry file mtime (then key) — insertion order,
    /// oldest first. A row whose report lacks the leaf (metric-schema
    /// drift) carries `value: None` rather than failing the whole trend.
    ///
    /// # Errors
    /// Unresolvable anchor prefix, a campaign the catalog no longer has
    /// (the report rendering needs the current cell spec), or a leaf path
    /// absent even from the anchor's own report.
    pub fn trend(&self, prefix: &str, leaf: &str) -> Result<Vec<TrendRow>, ServiceError> {
        let anchor_key = self.resolve(prefix)?;
        let entries = self.list()?;
        let anchor = entries
            .iter()
            .find(|e| e.key == anchor_key)
            .expect("resolved keys are listed");
        let scenario = find(&anchor.campaign).ok_or_else(|| {
            ServiceError::msg(format!(
                "entry {anchor_key} belongs to campaign `{}`, which is not in the catalog; \
                 cannot resolve its cell spec to render reports",
                anchor.campaign
            ))
        })?;
        let spec = (scenario.build)();
        let cell = spec.cells.get(anchor.cell_index as usize).ok_or_else(|| {
            ServiceError::msg(format!(
                "entry {anchor_key} names cell {} but `{}` has only {} cells",
                anchor.cell_index,
                anchor.campaign,
                spec.cells.len()
            ))
        })?;

        let mut rows = Vec::new();
        for entry in &entries {
            let same_cell = entry.campaign == anchor.campaign
                && entry.cell_index == anchor.cell_index
                && entry.seed == anchor.seed
                && entry.trials == anchor.trials
                && entry.max_slots == anchor.max_slots;
            if !same_cell {
                continue;
            }
            let ckpt = self.load(&entry.key)?.expect("listed keys exist");
            let meta = self.entry_meta(&entry.key)?.ok_or_else(|| {
                ServiceError::at(&self.path_for(&entry.key), "entry has no meta block")
            })?;
            let report = ckpt.state.report(cell, meta.max_slots).to_json();
            let value = report.at_path(leaf).cloned();
            if value.is_none() && entry.key == anchor_key {
                return Err(ServiceError::msg(format!(
                    "leaf `{leaf}` not found in the cell report of entry {anchor_key}; \
                     inspect the report shape with `rcb store show {}`",
                    &anchor_key[..8]
                )));
            }
            let path = self.path_for(&entry.key);
            let mtime_ms = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.duration_since(std::time::SystemTime::UNIX_EPOCH).ok())
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            rows.push(TrendRow {
                key: entry.key.clone(),
                code_version: meta.code_version.unwrap_or_else(|| String::from("?")),
                mtime_ms,
                value,
            });
        }
        rows.sort_by(|a, b| (a.mtime_ms, &a.key).cmp(&(b.mtime_ms, &b.key)));
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::registry;
    use rcb_harness::{AdversaryKind, ProtocolKind, ScheduleEventKind, ScheduleSpec, TopologyKind};

    fn base_cell() -> CellSpec {
        CellSpec::new(
            ProtocolKind::Naive {
                n: 16,
                act_prob: 1.0,
            },
            AdversaryKind::Uniform { t: 500, frac: 0.5 },
        )
        .with_max_slots(100_000)
    }

    fn base_key(cell: &CellSpec) -> String {
        store_key("camp", 7, 2, cell, 100_000, 50)
    }

    /// Satellite requirement: any change to protocol/adversary/topology/
    /// schedule params, trials, seed base, cell position, or slot cap
    /// changes the key.
    #[test]
    fn every_identity_component_moves_the_key() {
        let cell = base_cell();
        let reference = base_key(&cell);
        assert_eq!(reference.len(), 32, "two 64-bit hex halves");
        assert_eq!(reference, base_key(&cell), "keys are deterministic");

        let mut perturbed = Vec::new();
        // Protocol param (an internal tuning field detail() would omit).
        let mut c = base_cell();
        c.protocol = ProtocolKind::Naive {
            n: 16,
            act_prob: 0.99,
        };
        perturbed.push(("protocol param", base_key(&c)));
        // Adversary param.
        let mut c = base_cell();
        c.adversary = AdversaryKind::Uniform { t: 501, frac: 0.5 };
        perturbed.push(("adversary param", base_key(&c)));
        // Topology.
        let mut c = base_cell();
        c.topology = TopologyKind::Line;
        perturbed.push(("topology", base_key(&c)));
        // Schedule.
        let mut c = base_cell();
        c.schedule = ScheduleSpec::new().at(10, ScheduleEventKind::CrashNodes { nodes: vec![3] });
        perturbed.push(("schedule", base_key(&c)));
        // Trial count, seed base, cell position, slot cap, campaign name.
        let cell = base_cell();
        perturbed.push(("trials", store_key("camp", 7, 2, &cell, 100_000, 51)));
        perturbed.push(("seed", store_key("camp", 8, 2, &cell, 100_000, 50)));
        perturbed.push(("cell index", store_key("camp", 7, 3, &cell, 100_000, 50)));
        perturbed.push(("max_slots", store_key("camp", 7, 2, &cell, 100_001, 50)));
        perturbed.push(("campaign", store_key("pmac", 7, 2, &cell, 100_000, 50)));

        for (what, key) in &perturbed {
            assert_ne!(key, &reference, "{what} change must move the key");
        }
        // And all perturbations are mutually distinct (no accidental
        // collisions among these near-identical identities).
        let mut all: Vec<&String> = perturbed.iter().map(|(_, k)| k).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), perturbed.len());
    }

    /// The checkpoint key ignores the trial count but nothing else.
    #[test]
    fn checkpoint_key_is_watermark_independent() {
        let cell = base_cell();
        let k = checkpoint_key("camp", 7, 2, &cell, 100_000);
        assert_eq!(k, checkpoint_key("camp", 7, 2, &cell, 100_000));
        assert_ne!(k, checkpoint_key("camp", 8, 2, &cell, 100_000));
        assert_ne!(k, store_key("camp", 7, 2, &cell, 100_000, 50));
    }

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("rcb-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::new(dir)
    }

    fn filled_state(trials: u64) -> CellAccumulator {
        let mut acc = CellAccumulator::new();
        for i in 0..trials {
            acc.trials += 1;
            acc.completed += 1;
            acc.completion_slots.push((i * 37 % 101) as f64);
            acc.max_cost.push(i as f64);
            acc.mean_cost.push(i as f64 * 0.5);
            acc.source_cost.push(1.0);
            acc.eve_spent.push(0.0);
            acc.crashed.push(0.0);
            acc.survivors.push(16.0);
            acc.survivors_informed.push(16.0);
        }
        acc.telemetry.slots_stepped = trials * 1000;
        acc.telemetry.phases.slot_loop = 5_000; // must be zeroed on insert
        acc
    }

    #[test]
    fn insert_then_lookup_round_trips_bit_identically() {
        let store = temp_store("roundtrip");
        let cell = base_cell();
        let state = filled_state(50);
        let key = store
            .insert_cell("camp", 7, 2, &cell, 100_000, 50, &state)
            .expect("insert");
        assert_eq!(key, base_key(&cell));
        let hit = store
            .lookup_cell("camp", 7, 2, &cell, 100_000, 50)
            .expect("lookup")
            .expect("hit");
        // Bit-identical modulo the zeroed phase clocks.
        let mut expect = state.clone();
        expect.telemetry.phases = PhaseNanos::default();
        assert_eq!(
            crate::checkpoint::state_to_json(&hit).to_compact(),
            crate::checkpoint::state_to_json(&expect).to_compact()
        );
        // A different trial count is a clean miss, not a partial hit.
        assert!(store
            .lookup_cell("camp", 7, 2, &cell, 100_000, 51)
            .expect("lookup")
            .is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn list_and_prefix_resolution() {
        let store = temp_store("list");
        let cell = base_cell();
        let key = store
            .insert_cell("camp", 7, 0, &cell, 100_000, 10, &filled_state(10))
            .expect("insert");
        let entries = store.list().expect("list");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, key);
        assert_eq!(entries[0].campaign, "camp");
        assert_eq!(entries[0].trials, 10);
        assert_eq!(entries[0].cell, "NaiveEpidemic/uniform");
        assert_eq!(store.resolve(&key[..8]).expect("prefix"), key);
        assert!(store.resolve("zzzz").is_err(), "no match is an error");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Satellite requirement: gc never removes an entry the current
    /// catalog references, and does remove entries it cannot regenerate.
    #[test]
    fn gc_keeps_catalog_entries_and_drops_orphans() {
        let store = temp_store("gc");
        // A live entry: a real catalog scenario, hashed from its current
        // cell spec.
        let scenario = &registry()[0];
        let spec = (scenario.build)();
        let cell = &spec.cells[0];
        let live = store
            .insert_cell(&spec.name, 7, 0, cell, cell.max_slots, 5, &filled_state(5))
            .expect("insert live");
        // A dead entry: a campaign name no catalog scenario has.
        let dead = store
            .insert_cell(
                "no-such-scenario",
                7,
                0,
                &base_cell(),
                100_000,
                5,
                &filled_state(5),
            )
            .expect("insert dead");
        let (kept, removed) = store.gc().expect("gc");
        assert_eq!(kept, vec![live.clone()]);
        assert_eq!(removed, vec![dead]);
        assert!(
            store.load(&live).expect("load").is_some(),
            "live entry intact"
        );
        // gc is idempotent.
        let (kept2, removed2) = store.gc().expect("gc again");
        assert_eq!(kept2, vec![live]);
        assert!(removed2.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Satellite requirement: `rcb store trend` lines up entries of the
    /// same logical cell across build stamps, oldest first, labelled with
    /// the recorded `code_version` (`?` for pre-stamp entries).
    #[test]
    fn trend_follows_one_cell_across_code_versions() {
        let store = temp_store("trend");
        let scenario = &registry()[0];
        let spec = (scenario.build)();
        let cell = &spec.cells[0];
        let state = filled_state(5);

        // Forge two entries as if written by older builds: same logical
        // cell, fake content keys, distinct (or missing) recorded stamps.
        // The checkpoint checksum binds the key, so each doc is rebuilt
        // around its fake key rather than copied.
        let forge = |key: &str, stamp: Option<&str>| {
            let mut state = state.clone();
            state.telemetry.phases = PhaseNanos::default();
            let ckpt = CellCheckpoint {
                key: key.to_string(),
                campaign: spec.name.clone(),
                cell_index: 0,
                seed: 7,
                trials_done: 5,
                state,
            };
            let mut doc = checkpoint_to_json(&ckpt, "rcb-store-entry");
            let mut meta = vec![
                ("store_schema_version", STORE_SCHEMA_VERSION.into()),
                ("trials", 5u64.into()),
                ("max_slots", cell.max_slots.into()),
                (
                    "cell",
                    format!("{}/{}", cell.protocol.name(), cell.adversary.name())
                        .as_str()
                        .into(),
                ),
            ];
            if let Some(stamp) = stamp {
                meta.push(("code_version", stamp.into()));
            }
            if let Json::Object(fields) = &mut doc {
                fields.push(("meta".to_string(), Json::obj(meta)));
            }
            std::fs::create_dir_all(store.dir()).unwrap();
            write_atomic(&store.path_for(key), &doc.to_pretty()).expect("forge");
            std::thread::sleep(std::time::Duration::from_millis(5)); // distinct mtimes
        };
        forge("00000000000000000000000000000001", None); // pre-stamp entry
        forge("00000000000000000000000000000002", Some("build-old"));
        let anchor = store
            .insert_cell(&spec.name, 7, 0, cell, cell.max_slots, 5, &state)
            .expect("insert current");
        // A same-campaign entry at a different seed stays out of the trend.
        store
            .insert_cell(&spec.name, 8, 0, cell, cell.max_slots, 5, &state)
            .expect("insert other seed");

        let rows = store
            .trend(&anchor[..8], "metrics.completion_slots.mean")
            .expect("trend");
        assert_eq!(rows.len(), 3, "three builds of the same logical cell");
        let stamps: Vec<&str> = rows.iter().map(|r| r.code_version.as_str()).collect();
        assert_eq!(stamps, vec!["?", "build-old", code_version()]);
        assert!(
            rows.windows(2).all(|w| w[0].mtime_ms <= w[1].mtime_ms),
            "oldest first"
        );
        // All three rows carry the leaf, rendered from identical state.
        for row in &rows {
            assert_eq!(row.value, rows[0].value, "same state, same leaf");
            assert!(matches!(row.value, Some(Json::Float(_))));
        }
        // Indexed path segments work (this fixture's report arrays are
        // empty, so exercise the walker against a literal value).
        let doc = Json::obj(vec![(
            "hist",
            Json::arr(vec![Json::obj(vec![("log2", 3u64.into())])]),
        )]);
        assert_eq!(doc.at_path("hist[0].log2"), Some(&Json::Int(3)));
        assert_eq!(doc.at_path("hist[1].log2"), None);
        // A bogus leaf names the probe command in its error.
        let err = store.trend(&anchor[..8], "no.such.leaf").expect_err("leaf");
        assert!(err.to_string().contains("rcb store show"), "{err}");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Satellite requirement: gc never collects entries an unfinished
    /// shard plan references, and retires the planref (returning the keys
    /// to the normal policy) once the plan completes.
    #[test]
    fn gc_protects_unfinished_shard_plan_entries() {
        use crate::engine::CampaignConfig;
        use crate::scenario::CampaignSpec;
        use crate::shard::{shard_work, write_plan, PlanOptions, WorkerOptions};

        let store = temp_store("gc-planref");
        let state_dir = std::env::temp_dir().join(format!(
            "rcb-store-test-gc-planref-state-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&state_dir);
        // A campaign the catalog does not know: its entries are dead under
        // the catalog policy, so only the planref can keep them alive.
        let spec = CampaignSpec {
            name: "no-such-scenario".into(),
            description: "gc planref fixture".into(),
            cells: vec![base_cell()],
        };
        let cfg = CampaignConfig {
            seed: 7,
            trials_per_cell: 3,
            threads: 1,
            ..Default::default()
        };
        write_plan(
            &spec,
            &cfg,
            &state_dir,
            &PlanOptions {
                store_dir: Some(store.dir().to_path_buf()),
                ..Default::default()
            },
        )
        .expect("plan");
        let key = store
            .insert_cell(
                "no-such-scenario",
                7,
                0,
                &base_cell(),
                100_000,
                3,
                &filled_state(3),
            )
            .expect("insert");
        // The planref sits beside the entries but is not an entry.
        let entries = store.list().expect("list skips planrefs");
        assert_eq!(entries.len(), 1);

        let (kept, removed) = store.gc().expect("gc");
        assert_eq!(
            kept,
            vec![key.clone()],
            "unfinished plan protects the entry"
        );
        assert!(removed.is_empty());

        // Finish the plan (the protected entry itself serves the cell as a
        // warm hit); the next gc retires the planref and the entry reverts
        // to the normal policy — dead, collected.
        shard_work(
            &spec,
            &state_dir,
            &WorkerOptions {
                worker_id: "gc-test".into(),
                threads: 1,
                ..Default::default()
            },
        )
        .expect("work");
        let (kept, removed) = store.gc().expect("gc after completion");
        assert!(kept.is_empty());
        assert_eq!(removed, vec![key]);
        let _ = std::fs::remove_dir_all(store.dir());
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    #[test]
    fn corrupt_entries_fail_with_file_context() {
        let store = temp_store("corrupt");
        let cell = base_cell();
        let key = store
            .insert_cell("camp", 7, 2, &cell, 100_000, 5, &filled_state(5))
            .expect("insert");
        let path = store.path_for(&key);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"trials\": 5", "\"trials\": 6")).unwrap();
        let err = store
            .lookup_cell("camp", 7, 2, &cell, 100_000, 5)
            .expect_err("tamper detected");
        let rendered = err.to_string();
        assert!(
            rendered.starts_with(&path.display().to_string()),
            "{rendered}"
        );
        assert!(rendered.contains("checksum mismatch"), "{rendered}");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
