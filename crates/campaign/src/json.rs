//! A minimal, deterministic JSON writer.
//!
//! The offline dependency set has no `serde`, so campaign artifacts are
//! emitted through this hand-rolled value tree. Object keys keep insertion
//! order (a `Vec`, not a map), floats print via Rust's shortest-round-trip
//! `Display`, and there is no whitespace dependence on the environment —
//! the same report value always serializes to the same bytes, which is what
//! the campaign determinism guarantee ("same seed ⇒ byte-identical
//! artifact, any thread count") rests on.

/// A JSON value. Build with the `From` impls and [`Json::obj`]/[`Json::arr`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers get their own variant so counts/seeds never pick up a
    /// decimal point or exponent.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn arr(items: Vec<Json>) -> Json {
        Json::Array(items)
    }

    /// Walk a dotted path into the value: segments are object keys,
    /// optionally with one `[i]` index suffix (`metrics[2].mean`,
    /// `cell.completion_slots.p50`). `None` when any segment is absent or
    /// the shape does not match.
    pub fn at_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('.') {
            let (key, index) = match seg.strip_suffix(']').and_then(|s| s.split_once('[')) {
                Some((key, idx)) => (key, Some(idx.parse::<usize>().ok()?)),
                None => (seg, None),
            };
            if !key.is_empty() {
                let Json::Object(fields) = cur else {
                    return None;
                };
                cur = fields.iter().find_map(|(k, v)| (k == key).then_some(v))?;
            }
            if let Some(i) = index {
                let Json::Array(items) = cur else {
                    return None;
                };
                cur = items.get(i)?;
            }
        }
        Some(cur)
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize pretty-printed with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    // JSON has no NaN/Inf; campaigns never produce them, but
                    // degrade to null rather than emit an invalid document.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i128)
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i128)
    }
}
impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i as i128)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i as i128)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(Json::Null.to_compact(), "null");
        assert_eq!(Json::from(true).to_compact(), "true");
        assert_eq!(Json::from(42u64).to_compact(), "42");
        assert_eq!(Json::from(1.5).to_compact(), "1.5");
        assert_eq!(Json::from(3.0).to_compact(), "3");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").to_compact(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nested_structure_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", "x".into()),
            ("xs", Json::arr(vec![1u64.into(), 2u64.into()])),
            ("empty", Json::arr(vec![])),
            ("sub", Json::obj(vec![("k", Json::Null)])),
        ]);
        assert_eq!(
            v.to_compact(),
            r#"{"name":"x","xs":[1,2],"empty":[],"sub":{"k":null}}"#
        );
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"name\": \"x\","));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn key_order_is_insertion_order() {
        let v = Json::obj(vec![("zzz", 1u64.into()), ("aaa", 2u64.into())]);
        assert_eq!(v.to_compact(), r#"{"zzz":1,"aaa":2}"#);
    }
}
