//! `rcb run --spec file.toml` — campaign specs from files.
//!
//! Loads a [`CampaignSpec`] — cells, adversaries, topologies, **and world
//! schedules** — from a declarative spec file, so nemesis experiments can
//! be written and shared without recompiling the scenario registry.
//!
//! Two front-ends share one builder:
//!
//! * a hand-rolled **TOML subset** (no external dependency, in the spirit
//!   of [`crate::jsonin`]): `key = value` pairs, `[[cell]]` and
//!   `[[cell.event]]` array-of-tables headers, `#` comments, strings,
//!   integers, floats, booleans, and (nested) single-line arrays;
//! * **JSON** (detected by a leading `{`), parsed with [`crate::jsonin`]
//!   and mapped onto the same intermediate form — the layout is the same
//!   (`cells` array, each with an `events` array).
//!
//! Every failure is a [`SpecError`] carrying the file, the line (TOML), and
//! the offending key — malformed files fail loudly with context, never
//! panic. Unknown keys are rejected rather than ignored so typos cannot
//! silently drop an event.
//!
//! ## Spec layout
//!
//! ```toml
//! name = "my-nemesis"
//! description = "uniform jammer swapped for a reactive one mid-run"
//!
//! [[cell]]                     # one aggregation cell
//! protocol = "multicast"       # core | multicast | multicast-c | adv |
//!                              # naive | naive-config | single-channel |
//!                              # decay | multi-hop | multi-message
//! n = 32
//! adversary = "uniform"        # silent | uniform | burst | pulse | sweep |
//!                              # random-subset | gilbert-elliott | reactive |
//!                              # reactive-window | hotspot
//! budget = 20000               # adversary knobs: budget, frac, start, ...
//! frac = 0.5
//! topology = "complete"        # complete | line | grid | random-geometric |
//!                              # dynamic (then: cols, radius, base, p_down)
//! max_slots = 50000000
//!
//! [[cell.event]]               # world-schedule events, nondecreasing slots
//! slot = 4096
//! kind = "swap-eve"            # swap-eve | partition | heal | crash |
//!                              # recover | set-link-loss
//! adversary = "reactive"
//! budget = 20000
//! max_channels = 8
//! ```
//!
//! Protocol and adversary keys live in one namespace per table; the
//! adversary budget is spelled `budget` (not `t`) and `random-subset` /
//! `hotspot` use `adv_k`, so they can never collide with protocol knobs.

use crate::jsonin;
use crate::scenario::{CampaignSpec, CellSpec};
use crate::Json;
use rcb_harness::{AdversaryKind, ProtocolKind, ScheduleEventKind, ScheduleSpec, TopologyKind};

/// A spec-file loading error with file/line/key context.
///
/// `line` is `0` when no line information exists (I/O errors, JSON specs —
/// the JSON parser reports byte offsets in `msg` instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    pub file: String,
    pub line: usize,
    pub msg: String,
}

impl SpecError {
    fn new(file: &str, line: usize, msg: impl Into<String>) -> Self {
        Self {
            file: file.to_string(),
            line,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.file, self.line, self.msg)
        } else {
            write!(f, "{}: {}", self.file, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

/// A parsed spec-file value (shared by the TOML and JSON front-ends).
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Arr(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Arr(_) => "array",
        }
    }
}

/// One `key = value` binding with its source line (0 for JSON).
#[derive(Clone, Debug)]
struct Entry {
    key: String,
    value: Value,
    line: usize,
}

/// A flat key/value table (the document head, one cell, or one event).
#[derive(Clone, Debug, Default)]
struct Table {
    line: usize,
    entries: Vec<Entry>,
}

impl Table {
    fn insert(
        &mut self,
        file: &str,
        key: &str,
        value: Value,
        line: usize,
    ) -> Result<(), SpecError> {
        if let Some(prev) = self.entries.iter().find(|e| e.key == key) {
            return Err(SpecError::new(
                file,
                line,
                format!("duplicate key `{key}` (first set on line {})", prev.line),
            ));
        }
        self.entries.push(Entry {
            key: key.to_string(),
            value,
            line,
        });
        Ok(())
    }

    /// Remove and return a key's value, if present.
    fn take(&mut self, key: &str) -> Option<Entry> {
        let i = self.entries.iter().position(|e| e.key == key)?;
        Some(self.entries.remove(i))
    }

    /// After building: any key still present is unknown.
    fn reject_leftovers(&self, file: &str, what: &str) -> Result<(), SpecError> {
        match self.entries.first() {
            None => Ok(()),
            Some(e) => Err(SpecError::new(
                file,
                e.line,
                format!("unknown key `{}` in {what}", e.key),
            )),
        }
    }
}

/// The intermediate form both front-ends produce.
#[derive(Clone, Debug, Default)]
struct RawSpec {
    doc: Table,
    cells: Vec<RawCell>,
}

#[derive(Clone, Debug, Default)]
struct RawCell {
    table: Table,
    events: Vec<Table>,
}

// ---------------------------------------------------------------------------
// TOML-subset front-end
// ---------------------------------------------------------------------------

fn parse_toml(text: &str, file: &str) -> Result<RawSpec, SpecError> {
    let mut raw = RawSpec::default();
    // Which table the next `key = value` line lands in.
    enum Target {
        Doc,
        Cell,
        Event,
    }
    let mut target = Target::Doc;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(SpecError::new(file, lineno, "unterminated table header"));
            };
            match name.trim() {
                "cell" => {
                    raw.cells.push(RawCell {
                        table: Table {
                            line: lineno,
                            entries: Vec::new(),
                        },
                        events: Vec::new(),
                    });
                    target = Target::Cell;
                }
                "cell.event" => {
                    let Some(cell) = raw.cells.last_mut() else {
                        return Err(SpecError::new(
                            file,
                            lineno,
                            "[[cell.event]] before any [[cell]]",
                        ));
                    };
                    cell.events.push(Table {
                        line: lineno,
                        entries: Vec::new(),
                    });
                    target = Target::Event;
                }
                other => {
                    return Err(SpecError::new(
                        file,
                        lineno,
                        format!(
                            "unknown table `[[{other}]]` (expected [[cell]] or [[cell.event]])"
                        ),
                    ))
                }
            }
            continue;
        }
        if line.starts_with('[') {
            return Err(SpecError::new(
                file,
                lineno,
                format!("unsupported table header `{line}` (only [[cell]] and [[cell.event]])"),
            ));
        }
        let Some(eq) = line.find('=') else {
            return Err(SpecError::new(
                file,
                lineno,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(SpecError::new(file, lineno, format!("invalid key `{key}`")));
        }
        let value = parse_value(line[eq + 1..].trim(), file, lineno)?;
        let table = match target {
            Target::Doc => &mut raw.doc,
            Target::Cell => &mut raw.cells.last_mut().expect("cell exists").table,
            Target::Event => raw
                .cells
                .last_mut()
                .expect("cell exists")
                .events
                .last_mut()
                .expect("event exists"),
        };
        table.insert(file, key, value, lineno)?;
    }
    Ok(raw)
}

/// Parse one (possibly nested-array) value from the text after `=`.
fn parse_value(s: &str, file: &str, line: usize) -> Result<Value, SpecError> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value_at(s, bytes, &mut pos, file, line)?;
    skip_ws(bytes, &mut pos);
    if pos < bytes.len() && bytes[pos] != b'#' {
        return Err(SpecError::new(
            file,
            line,
            format!("trailing characters after value: `{}`", &s[pos..]),
        ));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && (bytes[*pos] == b' ' || bytes[*pos] == b'\t') {
        *pos += 1;
    }
}

fn parse_value_at(
    s: &str,
    bytes: &[u8],
    pos: &mut usize,
    file: &str,
    line: usize,
) -> Result<Value, SpecError> {
    skip_ws(bytes, pos);
    if *pos >= bytes.len() {
        return Err(SpecError::new(file, line, "missing value after `=`"));
    }
    match bytes[*pos] {
        b'"' => {
            let mut out = String::new();
            let mut i = *pos + 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'"' => {
                        *pos = i + 1;
                        return Ok(Value::Str(out));
                    }
                    b'\\' if i + 1 < bytes.len() => {
                        out.push(bytes[i + 1] as char);
                        i += 2;
                    }
                    _ => {
                        // Strings in specs are names/descriptions: plain
                        // (possibly multi-byte) text copied through.
                        let ch = s[i..].chars().next().expect("in bounds");
                        out.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            Err(SpecError::new(file, line, "unterminated string"))
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(bytes, pos);
                if *pos >= bytes.len() {
                    return Err(SpecError::new(file, line, "unterminated array"));
                }
                if bytes[*pos] == b']' {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                items.push(parse_value_at(s, bytes, pos, file, line)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {}
                    _ => return Err(SpecError::new(file, line, "expected `,` or `]` in array")),
                }
            }
        }
        _ => {
            let start = *pos;
            while *pos < bytes.len() && !b" \t,]#".contains(&bytes[*pos]) {
                *pos += 1;
            }
            let tok = &s[start..*pos];
            match tok {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => {
                    if tok.contains(['.', 'e', 'E']) {
                        tok.parse::<f64>().map(Value::Float).map_err(|_| {
                            SpecError::new(file, line, format!("invalid value `{tok}`"))
                        })
                    } else {
                        tok.parse::<i64>().map(Value::Int).map_err(|_| {
                            SpecError::new(file, line, format!("invalid value `{tok}`"))
                        })
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// JSON front-end (same layout, via jsonin)
// ---------------------------------------------------------------------------

fn parse_json(text: &str, file: &str) -> Result<RawSpec, SpecError> {
    let json = jsonin::parse(text).map_err(|e| SpecError::new(file, 0, e.to_string()))?;
    let Json::Object(fields) = json else {
        return Err(SpecError::new(file, 0, "spec must be a JSON object"));
    };
    let mut raw = RawSpec::default();
    for (key, value) in fields {
        if key == "cells" {
            let Json::Array(cells) = value else {
                return Err(SpecError::new(file, 0, "`cells` must be an array"));
            };
            for (ci, cell) in cells.into_iter().enumerate() {
                let Json::Object(cell_fields) = cell else {
                    return Err(SpecError::new(
                        file,
                        0,
                        format!("cell {ci} must be an object"),
                    ));
                };
                let mut rc = RawCell::default();
                for (ck, cv) in cell_fields {
                    if ck == "events" {
                        let Json::Array(events) = cv else {
                            return Err(SpecError::new(
                                file,
                                0,
                                format!("cell {ci}: `events` must be an array"),
                            ));
                        };
                        for (ei, ev) in events.into_iter().enumerate() {
                            let Json::Object(ev_fields) = ev else {
                                return Err(SpecError::new(
                                    file,
                                    0,
                                    format!("cell {ci} event {ei} must be an object"),
                                ));
                            };
                            let mut et = Table::default();
                            for (ek, evv) in ev_fields {
                                let v = json_value(evv, file, &ek)?;
                                et.insert(file, &ek, v, 0)?;
                            }
                            rc.events.push(et);
                        }
                    } else {
                        let v = json_value(cv, file, &ck)?;
                        rc.table.insert(file, &ck, v, 0)?;
                    }
                }
                raw.cells.push(rc);
            }
        } else {
            let v = json_value(value, file, &key)?;
            raw.doc.insert(file, &key, v, 0)?;
        }
    }
    Ok(raw)
}

fn json_value(j: Json, file: &str, key: &str) -> Result<Value, SpecError> {
    match j {
        Json::Bool(b) => Ok(Value::Bool(b)),
        Json::Int(i) => i64::try_from(i)
            .map(Value::Int)
            .map_err(|_| SpecError::new(file, 0, format!("`{key}`: integer out of range"))),
        Json::Float(f) => Ok(Value::Float(f)),
        Json::Str(s) => Ok(Value::Str(s)),
        Json::Array(items) => Ok(Value::Arr(
            items
                .into_iter()
                .map(|v| json_value(v, file, key))
                .collect::<Result<_, _>>()?,
        )),
        Json::Null | Json::Object(_) => Err(SpecError::new(
            file,
            0,
            format!("`{key}`: nulls and nested objects are not spec values"),
        )),
    }
}

// ---------------------------------------------------------------------------
// Shared builder: RawSpec -> CampaignSpec
// ---------------------------------------------------------------------------

/// Typed take: required key of a given shape, with key context in errors.
fn req(t: &mut Table, file: &str, what: &str, key: &str) -> Result<Entry, SpecError> {
    t.take(key).ok_or_else(|| {
        SpecError::new(
            file,
            t.line,
            format!("{what}: missing required key `{key}`"),
        )
    })
}

fn as_u64(e: &Entry, file: &str) -> Result<u64, SpecError> {
    match e.value {
        Value::Int(i) if i >= 0 => Ok(i as u64),
        _ => Err(SpecError::new(
            file,
            e.line,
            format!(
                "`{}` must be a nonnegative integer, got {}",
                e.key,
                e.value.type_name()
            ),
        )),
    }
}

fn as_u32(e: &Entry, file: &str) -> Result<u32, SpecError> {
    u32::try_from(as_u64(e, file)?)
        .map_err(|_| SpecError::new(file, e.line, format!("`{}` does not fit in 32 bits", e.key)))
}

fn as_f64(e: &Entry, file: &str) -> Result<f64, SpecError> {
    match e.value {
        Value::Float(f) => Ok(f),
        Value::Int(i) => Ok(i as f64),
        _ => Err(SpecError::new(
            file,
            e.line,
            format!("`{}` must be a number, got {}", e.key, e.value.type_name()),
        )),
    }
}

fn as_str(e: &Entry, file: &str) -> Result<String, SpecError> {
    match &e.value {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(SpecError::new(
            file,
            e.line,
            format!("`{}` must be a string, got {}", e.key, e.value.type_name()),
        )),
    }
}

fn as_u32_list(e: &Entry, file: &str) -> Result<Vec<u32>, SpecError> {
    let Value::Arr(items) = &e.value else {
        return Err(SpecError::new(
            file,
            e.line,
            format!("`{}` must be an array of node ids", e.key),
        ));
    };
    items
        .iter()
        .map(|v| match v {
            Value::Int(i) if *i >= 0 && *i <= u32::MAX as i64 => Ok(*i as u32),
            _ => Err(SpecError::new(
                file,
                e.line,
                format!(
                    "`{}` entries must be node ids (nonnegative integers)",
                    e.key
                ),
            )),
        })
        .collect()
}

fn req_u64(t: &mut Table, file: &str, what: &str, key: &str) -> Result<u64, SpecError> {
    let e = req(t, file, what, key)?;
    as_u64(&e, file)
}

fn req_f64(t: &mut Table, file: &str, what: &str, key: &str) -> Result<f64, SpecError> {
    let e = req(t, file, what, key)?;
    as_f64(&e, file)
}

fn req_str(t: &mut Table, file: &str, what: &str, key: &str) -> Result<String, SpecError> {
    let e = req(t, file, what, key)?;
    as_str(&e, file)
}

fn opt_u64(t: &mut Table, file: &str, key: &str) -> Result<Option<u64>, SpecError> {
    t.take(key).map(|e| as_u64(&e, file)).transpose()
}

fn opt_f64(t: &mut Table, file: &str, key: &str) -> Result<Option<f64>, SpecError> {
    t.take(key).map(|e| as_f64(&e, file)).transpose()
}

fn opt_str(t: &mut Table, file: &str, key: &str) -> Result<Option<String>, SpecError> {
    t.take(key).map(|e| as_str(&e, file)).transpose()
}

/// Build an [`AdversaryKind`] from a name plus its knobs in `t`. Shared by
/// the cell adversary and `swap-eve` events. The budget key is `budget`
/// and `random-subset`/`hotspot` take `adv_k`, so adversary knobs never
/// collide with protocol knobs in the flat cell namespace.
fn build_adversary(
    t: &mut Table,
    file: &str,
    what: &str,
    name: &str,
) -> Result<AdversaryKind, SpecError> {
    Ok(match name {
        "silent" => AdversaryKind::Silent,
        "uniform" => AdversaryKind::Uniform {
            t: req_u64(t, file, what, "budget")?,
            frac: req_f64(t, file, what, "frac")?,
        },
        "burst" => AdversaryKind::Burst {
            t: req_u64(t, file, what, "budget")?,
            start: opt_u64(t, file, "start")?.unwrap_or(0),
        },
        "pulse" => AdversaryKind::Pulse {
            t: req_u64(t, file, what, "budget")?,
            period: req_u64(t, file, what, "period")?,
            duty: req_u64(t, file, what, "duty")?,
            frac: req_f64(t, file, what, "frac")?,
        },
        "sweep" => AdversaryKind::Sweep {
            t: req_u64(t, file, what, "budget")?,
            width: req_u64(t, file, what, "width")?,
            step: req_u64(t, file, what, "step")?,
        },
        "random-subset" => AdversaryKind::RandomSubset {
            t: req_u64(t, file, what, "budget")?,
            k: req_u64(t, file, what, "adv_k")?,
        },
        "gilbert-elliott" => AdversaryKind::GilbertElliott {
            t: req_u64(t, file, what, "budget")?,
            p_gb: req_f64(t, file, what, "p_gb")?,
            p_bg: req_f64(t, file, what, "p_bg")?,
            frac: req_f64(t, file, what, "frac")?,
        },
        "reactive" => AdversaryKind::Reactive {
            t: req_u64(t, file, what, "budget")?,
            max_channels: req_u64(t, file, what, "max_channels")?,
        },
        "reactive-window" => AdversaryKind::ReactiveWindow {
            t: req_u64(t, file, what, "budget")?,
            window: req_u64(t, file, what, "window")?,
            max_channels: req_u64(t, file, what, "max_channels")?,
            threshold: req_u64(t, file, what, "threshold")?,
        },
        "hotspot" => AdversaryKind::Hotspot {
            t: req_u64(t, file, what, "budget")?,
            k: req_u64(t, file, what, "adv_k")?,
            decay: req_f64(t, file, what, "decay")?,
        },
        other => {
            return Err(SpecError::new(
                file,
                t.line,
                format!(
                    "{what}: unknown adversary `{other}` (silent, uniform, burst, pulse, \
                     sweep, random-subset, gilbert-elliott, reactive, reactive-window, hotspot)"
                ),
            ))
        }
    })
}

fn build_topology(
    t: &mut Table,
    file: &str,
    what: &str,
    name: &str,
) -> Result<TopologyKind, SpecError> {
    let base = |t: &mut Table, file: &str, name: &str| -> Result<TopologyKind, SpecError> {
        Ok(match name {
            "complete" => TopologyKind::Complete,
            "line" => TopologyKind::Line,
            "grid" => TopologyKind::Grid {
                cols: {
                    let e = req(t, file, what, "cols")?;
                    as_u32(&e, file)?
                },
            },
            "random-geometric" => TopologyKind::RandomGeometric {
                radius: req_f64(t, file, what, "radius")?,
            },
            other => {
                return Err(SpecError::new(
                    file,
                    t.line,
                    format!(
                        "{what}: unknown topology `{other}` (complete, line, grid, \
                         random-geometric, dynamic)"
                    ),
                ))
            }
        })
    };
    if name == "dynamic" {
        let inner = req_str(t, file, what, "base")?;
        let inner = base(t, file, &inner)?;
        Ok(TopologyKind::Dynamic {
            base: Box::new(inner),
            p_down: req_f64(t, file, what, "p_down")?,
        })
    } else {
        base(t, file, name)
    }
}

fn build_protocol(
    t: &mut Table,
    file: &str,
    what: &str,
    name: &str,
) -> Result<ProtocolKind, SpecError> {
    let n = req_u64(t, file, what, "n")?;
    Ok(match name {
        "core" | "multicast-core" => ProtocolKind::Core {
            n,
            t: req_u64(t, file, what, "t")?,
            params: Default::default(),
        },
        "multicast" => ProtocolKind::MultiCast {
            n,
            params: Default::default(),
        },
        "multicast-c" => ProtocolKind::MultiCastC {
            n,
            c: req_u64(t, file, what, "c")?,
            params: Default::default(),
        },
        "adv" | "multicast-adv" => ProtocolKind::Adv {
            n,
            params: Default::default(),
        },
        "naive" => ProtocolKind::Naive {
            n,
            act_prob: opt_f64(t, file, "act_prob")?.unwrap_or(1.0),
        },
        "naive-config" => ProtocolKind::NaiveConfig {
            n,
            channels: req_u64(t, file, what, "channels")?,
            act_prob: opt_f64(t, file, "act_prob")?.unwrap_or(1.0),
        },
        "single-channel" => ProtocolKind::SingleChannel {
            n,
            params: Default::default(),
        },
        "decay" => ProtocolKind::Decay { n },
        "multi-hop" => ProtocolKind::MultiHop {
            n,
            channels: req_u64(t, file, what, "channels")?,
            p: req_f64(t, file, what, "p")?,
        },
        "multi-message" => ProtocolKind::MultiMessage {
            n,
            k: {
                let e = req(t, file, what, "k")?;
                as_u32(&e, file)?
            },
            channels: req_u64(t, file, what, "channels")?,
            p: req_f64(t, file, what, "p")?,
        },
        other => {
            return Err(SpecError::new(
                file,
                t.line,
                format!(
                    "{what}: unknown protocol `{other}` (core, multicast, multicast-c, adv, \
                     naive, naive-config, single-channel, decay, multi-hop, multi-message)"
                ),
            ))
        }
    })
}

fn build_event(
    t: &mut Table,
    file: &str,
    what: &str,
) -> Result<(u64, ScheduleEventKind), SpecError> {
    let slot = req_u64(t, file, what, "slot")?;
    let kind = req_str(t, file, what, "kind")?;
    let event = match kind.as_str() {
        "swap-eve" => {
            let name = req_str(t, file, what, "adversary")?;
            ScheduleEventKind::SwapEve(build_adversary(t, file, what, &name)?)
        }
        "partition" => {
            let e = req(t, file, what, "groups")?;
            let Value::Arr(groups) = &e.value else {
                return Err(SpecError::new(
                    file,
                    e.line,
                    "`groups` must be an array of node-id arrays",
                ));
            };
            let groups = groups
                .iter()
                .map(|g| {
                    let ge = Entry {
                        key: "groups".into(),
                        value: g.clone(),
                        line: e.line,
                    };
                    as_u32_list(&ge, file)
                })
                .collect::<Result<Vec<_>, _>>()?;
            ScheduleEventKind::Partition { groups }
        }
        "heal" => ScheduleEventKind::Heal,
        "crash" => ScheduleEventKind::CrashNodes {
            nodes: {
                let e = req(t, file, what, "nodes")?;
                as_u32_list(&e, file)?
            },
        },
        "recover" => ScheduleEventKind::RecoverNodes {
            nodes: {
                let e = req(t, file, what, "nodes")?;
                as_u32_list(&e, file)?
            },
        },
        "set-link-loss" => {
            let p = req_f64(t, file, what, "p")?;
            if !(0.0..=1.0).contains(&p) {
                return Err(SpecError::new(
                    file,
                    t.line,
                    format!("{what}: link-loss p must be in [0, 1], got {p}"),
                ));
            }
            ScheduleEventKind::SetLinkLoss { p }
        }
        other => {
            return Err(SpecError::new(
                file,
                t.line,
                format!(
                    "{what}: unknown event kind `{other}` (swap-eve, partition, heal, \
                     crash, recover, set-link-loss)"
                ),
            ))
        }
    };
    Ok((slot, event))
}

fn build_cell(raw: &mut RawCell, file: &str, index: usize) -> Result<CellSpec, SpecError> {
    let what = format!("cell {index}");
    let t = &mut raw.table;
    let proto_name = req_str(t, file, &what, "protocol")?;
    let protocol = build_protocol(t, file, &what, &proto_name)?;
    let adv_name = opt_str(t, file, "adversary")?.unwrap_or_else(|| "silent".into());
    let adversary = build_adversary(t, file, &what, &adv_name)?;
    let topo_name = opt_str(t, file, "topology")?.unwrap_or_else(|| "complete".into());
    let topology = build_topology(t, file, &what, &topo_name)?;
    let max_slots = opt_u64(t, file, "max_slots")?;
    t.reject_leftovers(file, &what)?;

    let mut schedule = ScheduleSpec::new();
    let mut prev_slot: Option<u64> = None;
    for (ei, event_table) in raw.events.iter_mut().enumerate() {
        let ewhat = format!("cell {index} event {ei}");
        let (slot, event) = build_event(event_table, file, &ewhat)?;
        if let Some(prev) = prev_slot {
            if slot < prev {
                return Err(SpecError::new(
                    file,
                    event_table.line,
                    format!(
                        "{ewhat}: out-of-order event — slot {slot} after slot {prev} \
                         (events must be nondecreasing)"
                    ),
                ));
            }
        }
        event_table.reject_leftovers(file, &ewhat)?;
        prev_slot = Some(slot);
        schedule = schedule.at(slot, event);
    }

    let mut cell = CellSpec::new(protocol, adversary)
        .with_topology(topology)
        .with_schedule(schedule);
    if let Some(cap) = max_slots {
        cell = cell.with_max_slots(cap);
    }
    Ok(cell)
}

fn build_spec(mut raw: RawSpec, file: &str) -> Result<CampaignSpec, SpecError> {
    let name = req_str(&mut raw.doc, file, "spec", "name")?;
    let description = opt_str(&mut raw.doc, file, "description")?.unwrap_or_default();
    raw.doc.reject_leftovers(file, "the spec header")?;
    if raw.cells.is_empty() {
        return Err(SpecError::new(file, 0, "spec defines no [[cell]]"));
    }
    let cells = raw
        .cells
        .iter_mut()
        .enumerate()
        .map(|(i, c)| build_cell(c, file, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignSpec {
        name,
        description,
        cells,
    })
}

/// Parse a spec from text. `file` is used for error context only. The
/// format is TOML unless the first non-whitespace byte is `{` (JSON).
pub fn parse_spec(text: &str, file: &str) -> Result<CampaignSpec, SpecError> {
    let raw = if text.trim_start().starts_with('{') {
        parse_json(text, file)?
    } else {
        parse_toml(text, file)?
    };
    build_spec(raw, file)
}

/// Load a campaign spec from a TOML or JSON file (`rcb run --spec`).
pub fn load_spec(path: &str) -> Result<CampaignSpec, SpecError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SpecError::new(path, 0, format!("cannot read spec file: {e}")))?;
    parse_spec(&text, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# A spec exercising every table kind.
name = "demo"
description = "swap then crash"

[[cell]]
protocol = "multicast"
n = 32
adversary = "uniform"
budget = 20000
frac = 0.5
max_slots = 100000

[[cell.event]]
slot = 4096
kind = "swap-eve"
adversary = "reactive"
budget = 20000
max_channels = 8

[[cell.event]]
slot = 8192
kind = "crash"
nodes = [30, 31]

[[cell]]
protocol = "multi-hop"
n = 64
channels = 8
p = 0.25
topology = "grid"
cols = 8

[[cell.event]]
slot = 64
kind = "partition"
groups = [[0, 1, 2, 3]]

[[cell.event]]
slot = 512
kind = "heal"
"#;

    #[test]
    fn full_toml_spec_round_trips() {
        let spec = parse_spec(FULL, "demo.toml").expect("valid spec");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.description, "swap then crash");
        assert_eq!(spec.cells.len(), 2);

        let c0 = &spec.cells[0];
        assert!(matches!(c0.protocol, ProtocolKind::MultiCast { n: 32, .. }));
        assert!(matches!(
            c0.adversary,
            AdversaryKind::Uniform { t: 20000, .. }
        ));
        assert_eq!(c0.max_slots, 100_000);
        assert_eq!(c0.schedule.len(), 2);
        assert_eq!(c0.schedule.detail(), "swap-eve@4096, crash@8192");
        let (_, ScheduleEventKind::SwapEve(swapped)) = &c0.schedule.events[0] else {
            panic!("first event must be the swap");
        };
        assert!(matches!(
            swapped,
            AdversaryKind::Reactive {
                t: 20000,
                max_channels: 8
            }
        ));

        let c1 = &spec.cells[1];
        assert!(matches!(c1.topology, TopologyKind::Grid { cols: 8 }));
        assert_eq!(c1.schedule.detail(), "partition@64, heal@512");
        let (_, ScheduleEventKind::Partition { groups }) = &c1.schedule.events[0] else {
            panic!("first event must be the partition");
        };
        assert_eq!(groups, &vec![vec![0, 1, 2, 3]]);
        assert_eq!(c1.max_slots, 50_000_000, "default cap");
    }

    #[test]
    fn json_spec_parses_to_the_same_cells() {
        let json = r#"{
            "name": "demo",
            "cells": [{
                "protocol": "naive", "n": 16,
                "events": [{"slot": 0, "kind": "crash", "nodes": [14, 15]}]
            }]
        }"#;
        let spec = parse_spec(json, "demo.json").expect("valid JSON spec");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.cells.len(), 1);
        assert!(matches!(spec.cells[0].adversary, AdversaryKind::Silent));
        assert_eq!(spec.cells[0].schedule.detail(), "crash@0");
    }

    #[test]
    fn truncated_file_fails_with_line_context() {
        let err = parse_spec("name = \"demo\"\n[[cell\n", "broken.toml").unwrap_err();
        assert_eq!(err.file, "broken.toml");
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("unterminated table header"), "{err}");
        assert_eq!(err.to_string(), "broken.toml:2: unterminated table header");

        let err = parse_spec("name = \"unterminated\n", "broken.toml").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("unterminated string"), "{err}");

        let err = parse_spec(
            "name = \"x\"\n[[cell]]\nprotocol = \"naive\"\nn =\n",
            "broken.toml",
        )
        .unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("missing value"), "{err}");
    }

    #[test]
    fn unknown_keys_fail_with_key_and_line_context() {
        let text = "name = \"x\"\n\n[[cell]]\nprotocol = \"naive\"\nn = 16\nbananas = 7\n";
        let err = parse_spec(text, "spec.toml").unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.msg.contains("unknown key `bananas`"), "{err}");

        let text = "name = \"x\"\n[[cell]]\nprotocol = \"warp-drive\"\nn = 16\n";
        let err = parse_spec(text, "spec.toml").unwrap_err();
        assert!(err.msg.contains("unknown protocol `warp-drive`"), "{err}");
    }

    #[test]
    fn out_of_order_events_fail_with_line_context() {
        let text = "name = \"x\"\n[[cell]]\nprotocol = \"naive\"\nn = 16\n\
                    [[cell.event]]\nslot = 500\nkind = \"heal\"\n\
                    [[cell.event]]\nslot = 100\nkind = \"heal\"\n";
        let err = parse_spec(text, "spec.toml").unwrap_err();
        assert_eq!(err.line, 8, "error points at the offending event table");
        assert!(err.msg.contains("out-of-order"), "{err}");
        assert!(err.msg.contains("slot 100 after slot 500"), "{err}");
    }

    #[test]
    fn missing_required_keys_name_the_key() {
        let err = parse_spec("[[cell]]\nprotocol = \"naive\"\nn = 4\n", "x.toml").unwrap_err();
        assert!(err.msg.contains("missing required key `name`"), "{err}");

        let err =
            parse_spec("name = \"x\"\n[[cell]]\nprotocol = \"naive\"\n", "x.toml").unwrap_err();
        assert!(err.msg.contains("missing required key `n`"), "{err}");

        let err = parse_spec("name = \"x\"\n", "x.toml").unwrap_err();
        assert!(err.msg.contains("no [[cell]]"), "{err}");
    }

    #[test]
    fn event_validation_catches_bad_kinds_and_probabilities() {
        let base = "name = \"x\"\n[[cell]]\nprotocol = \"naive\"\nn = 4\n[[cell.event]]\n";
        let err = parse_spec(
            &format!("{base}slot = 0\nkind = \"meteor-strike\"\n"),
            "x.toml",
        )
        .unwrap_err();
        assert!(
            err.msg.contains("unknown event kind `meteor-strike`"),
            "{err}"
        );

        let err = parse_spec(
            &format!("{base}slot = 0\nkind = \"set-link-loss\"\np = 1.5\n"),
            "x.toml",
        )
        .unwrap_err();
        assert!(err.msg.contains("must be in [0, 1]"), "{err}");

        let err = parse_spec(&format!("{base}kind = \"heal\"\n"), "x.toml").unwrap_err();
        assert!(err.msg.contains("missing required key `slot`"), "{err}");
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse_spec("name = \"a\"\nname = \"b\"\n", "x.toml").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("duplicate key `name`"), "{err}");
    }

    #[test]
    fn load_spec_reports_missing_files_without_panicking() {
        let err = load_spec("/no/such/spec.toml").unwrap_err();
        assert_eq!(err.file, "/no/such/spec.toml");
        assert_eq!(err.line, 0);
        assert!(err.msg.contains("cannot read spec file"), "{err}");
    }
}
