//! The parallel campaign engine.
//!
//! Executes every cell of a [`CampaignSpec`] for `trials_per_cell` seeds,
//! sharding trials across worker threads, and aggregates **streamingly**:
//! no `TrialResult` vector is ever materialized. Workers distill each trial
//! into a ~100-byte `TrialMetrics` and send it to the aggregator thread,
//! which feeds per-cell accumulators (`CellAccumulator`) built from
//! `rcb-stats` streaming moments and quantile sketches. Memory is
//! `O(cells · sketch)` + a small reorder buffer, independent of the trial
//! count.
//!
//! ## Determinism
//!
//! Two mechanisms make a campaign bit-identical for a given seed at *any*
//! thread count:
//!
//! 1. **Seed derivation is positional.** Trial `g` (global index: cell
//!    `g / trials_per_cell`, replicate `g % trials_per_cell`) always runs
//!    with master seed `derive_seed(campaign_seed, g)`, no matter which
//!    worker claims it.
//! 2. **Aggregation order is positional.** Workers return metrics tagged
//!    with `g`; the aggregator holds them in a reorder buffer and ingests
//!    strictly in increasing `g`. Floating-point accumulation order is
//!    therefore fixed, so even the non-associative Welford updates produce
//!    identical bits.

use crate::report::{
    code_version, CampaignReport, CellPerf, CellReport, MetricReport, ScheduleReport, TimelineEntry,
};
use crate::scenario::{CampaignSpec, CellSpec};
use crate::tracefile::{TraceWriter, TrialTraceObserver};
use rcb_harness::{
    batch_supported, run_trial_batch, run_trial_telemetry, TrialOptions, TrialResult, TrialSpec,
};
use rcb_sim::{derive_seed, EngineConfig, EngineTelemetry, ScheduleMarker};
use rcb_stats::{QuantileSketch, StreamingMoments};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// How a campaign is executed. Everything that affects the *artifact's
/// deterministic leaves* is here except `threads`, `progress`, and
/// `telemetry`, which by design cannot affect them (`telemetry` only fills
/// the wall-clock leaves of the `perf` block, which are zero otherwise).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign master seed; every trial seed derives from it.
    pub seed: u64,
    /// Trials per cell.
    pub trials_per_cell: u64,
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Override every cell's engine slot cap (None = use the cell's own).
    pub max_slots: Option<u64>,
    /// Print progress lines to stderr while running.
    pub progress: bool,
    /// Collect wall-clock phase timing into each cell's `perf` block
    /// (`rcb run --perf`). Off by default so artifacts stay byte-identical
    /// across hosts and repeats; the deterministic perf *counters* are
    /// always collected regardless of this flag.
    pub telemetry: bool,
    /// Trials per lockstep batch (clamped to 1..=64). At 1 — the default —
    /// every trial runs the scalar engine, exactly as before. Above 1,
    /// workers claim blocks of up to this many same-cell trials and run
    /// them through the trial-batched lane ([`rcb_sim::BatchSimulation`])
    /// where the cell's spec supports it (single-hop, unscheduled,
    /// single-message), falling back to scalar trials otherwise. Lanes
    /// replicate per-trial scalar semantics (`tests/batch_equivalence.rs`
    /// pins the artifact against the scalar engine's), so this is a
    /// throughput knob, not a statistics knob.
    pub batch_width: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            trials_per_cell: 100,
            threads: 0,
            max_slots: None,
            progress: false,
            telemetry: false,
            batch_width: 1,
        }
    }
}

/// The distilled per-trial record that crosses the worker/aggregator
/// channel. Near-fixed-size — the helper list is empty for every protocol
/// except `MultiCastAdv`, where it holds at most one entry per node —
/// so campaigns never hold meaningful per-trial data beyond the reorder
/// buffer.
#[derive(Clone, Debug)]
struct TrialMetrics {
    completion_slots: u64,
    max_cost: u64,
    mean_cost: f64,
    source_cost: u64,
    eve_spent: u64,
    completed: bool,
    all_informed: bool,
    safety_violations: u64,
    /// `(epoch, phase)` of each helper-promotion event (`MultiCastAdv`).
    helper_phases: Vec<(u32, u32)>,
    /// Crash-model outcome fields (all zero/`survivors == n`-shaped for
    /// unscheduled cells; only reported on scheduled ones).
    crashed: u32,
    survivors: u32,
    survivors_informed: u32,
    /// Application markers of the trial's world-schedule events, in spec
    /// order (a strict prefix of the schedule when the run ended early).
    timeline: Vec<ScheduleMarker>,
    /// Engine telemetry of the trial (counters always; phase clocks only
    /// under [`CampaignConfig::telemetry`]).
    telemetry: EngineTelemetry,
}

impl TrialMetrics {
    fn new(r: &TrialResult, telemetry: EngineTelemetry) -> Self {
        Self {
            completion_slots: r.completion_time(),
            max_cost: r.max_cost,
            mean_cost: r.mean_cost,
            source_cost: r.source_cost,
            eve_spent: r.eve_spent,
            completed: r.completed,
            all_informed: r.all_informed,
            safety_violations: r.safety_violations as u64,
            helper_phases: r.helper_phases.clone(),
            crashed: r.crashed,
            survivors: r.survivors,
            survivors_informed: r.survivors_informed,
            timeline: r.timeline.clone(),
            telemetry,
        }
    }
}

/// Streaming aggregate over one cell's trials.
#[derive(Clone, Debug)]
pub(crate) struct CellAccumulator {
    trials: u64,
    completed: u64,
    all_informed: u64,
    safety_violations: u64,
    completion_slots: MetricAcc,
    max_cost: MetricAcc,
    mean_cost: MetricAcc,
    source_cost: MetricAcc,
    eve_spent: MetricAcc,
    /// Count per distinct helper `(epoch, phase)` across the cell's trials
    /// (bounded by the handful of phases a schedule visits, not by trials).
    helper_events: std::collections::BTreeMap<(u32, u32), u64>,
    /// Crash-model distributions (reported only for scheduled cells).
    crashed: MetricAcc,
    survivors: MetricAcc,
    survivors_informed: MetricAcc,
    /// Per-event application aggregate: `(applied_trials, min, max)` of the
    /// application slot. Index-aligned with the cell's schedule because
    /// events apply strictly in spec order.
    timeline: Vec<(u64, u64, u64)>,
    /// Engine telemetry merged over the cell's trials (fixed-size).
    telemetry: EngineTelemetry,
}

/// Moments + quantile sketch for one metric.
#[derive(Clone, Debug)]
struct MetricAcc {
    moments: StreamingMoments,
    sketch: QuantileSketch,
}

impl MetricAcc {
    fn new() -> Self {
        Self {
            moments: StreamingMoments::new(),
            sketch: QuantileSketch::new(),
        }
    }

    fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.sketch.push(x);
    }

    fn report(&self) -> MetricReport {
        MetricReport {
            count: self.moments.count(),
            mean: self.moments.mean(),
            std_dev: self.moments.std_dev(),
            min: self.moments.min().unwrap_or(0.0),
            max: self.moments.max().unwrap_or(0.0),
            p50: self.sketch.quantile(0.5).unwrap_or(0.0),
            p90: self.sketch.quantile(0.9).unwrap_or(0.0),
            p99: self.sketch.quantile(0.99).unwrap_or(0.0),
        }
    }
}

impl CellAccumulator {
    fn new() -> Self {
        Self {
            trials: 0,
            completed: 0,
            all_informed: 0,
            safety_violations: 0,
            completion_slots: MetricAcc::new(),
            max_cost: MetricAcc::new(),
            mean_cost: MetricAcc::new(),
            source_cost: MetricAcc::new(),
            eve_spent: MetricAcc::new(),
            helper_events: std::collections::BTreeMap::new(),
            crashed: MetricAcc::new(),
            survivors: MetricAcc::new(),
            survivors_informed: MetricAcc::new(),
            timeline: Vec::new(),
            telemetry: EngineTelemetry::default(),
        }
    }

    fn push(&mut self, m: &TrialMetrics) {
        self.trials += 1;
        self.completed += m.completed as u64;
        self.all_informed += m.all_informed as u64;
        self.safety_violations += m.safety_violations;
        self.completion_slots.push(m.completion_slots as f64);
        self.max_cost.push(m.max_cost as f64);
        self.mean_cost.push(m.mean_cost);
        self.source_cost.push(m.source_cost as f64);
        self.eve_spent.push(m.eve_spent as f64);
        for &(epoch, phase) in &m.helper_phases {
            *self.helper_events.entry((epoch, phase)).or_insert(0) += 1;
        }
        self.crashed.push(f64::from(m.crashed));
        self.survivors.push(f64::from(m.survivors));
        self.survivors_informed
            .push(f64::from(m.survivors_informed));
        for (i, marker) in m.timeline.iter().enumerate() {
            match self.timeline.get_mut(i) {
                Some((applied, min, max)) => {
                    *applied += 1;
                    *min = (*min).min(marker.applied_at);
                    *max = (*max).max(marker.applied_at);
                }
                None => self
                    .timeline
                    .push((1, marker.applied_at, marker.applied_at)),
            }
        }
        self.telemetry.merge(&m.telemetry);
    }

    fn report(&self, cell: &CellSpec, max_slots: u64) -> CellReport {
        CellReport {
            protocol: cell.protocol.name().to_string(),
            adversary: cell.adversary.name().to_string(),
            topology: cell.topology.name().to_string(),
            n: cell.protocol.n(),
            budget: cell.adversary.budget(),
            max_slots,
            trials: self.trials,
            completed: self.completed,
            all_informed: self.all_informed,
            completion_rate: if self.trials == 0 {
                0.0
            } else {
                self.completed as f64 / self.trials as f64
            },
            safety_violations: self.safety_violations,
            completion_slots: self.completion_slots.report(),
            max_node_cost: self.max_cost.report(),
            mean_node_cost: self.mean_cost.report(),
            source_cost: self.source_cost.report(),
            eve_spent: self.eve_spent.report(),
            helper_events: self
                .helper_events
                .iter()
                .map(
                    |(&(epoch, phase), &count)| crate::report::HelperPhaseCount {
                        epoch,
                        phase,
                        count,
                    },
                )
                .collect(),
            // Integer phase nanos sum deterministically across the ordered
            // ingest, so the artifact stays thread-count independent even
            // with timing on (for one fixed run's metrics stream).
            perf: CellPerf::from_telemetry(
                &self.telemetry,
                self.telemetry.phases.total() as f64 * 1e-9,
            ),
            schedule: (!cell.schedule.is_empty()).then(|| ScheduleReport {
                events: cell.schedule.len() as u64,
                first_slot: cell.schedule.first_slot().unwrap_or(0),
                last_slot: cell.schedule.last_slot().unwrap_or(0),
                detail: cell.schedule.detail(),
                kinds: cell
                    .schedule
                    .events
                    .iter()
                    .map(|(_, e)| e.name().to_string())
                    .collect(),
                // One entry per scheduled event: aggregated markers where
                // trials reached it, an explicit zero record where none did.
                timeline: cell
                    .schedule
                    .events
                    .iter()
                    .enumerate()
                    .map(|(i, &(scheduled_at, _))| {
                        let (applied, min, max) =
                            self.timeline.get(i).copied().unwrap_or((0, 0, 0));
                        TimelineEntry {
                            scheduled_at,
                            applied_trials: applied,
                            applied_at_min: min,
                            applied_at_max: max,
                        }
                    })
                    .collect(),
                crashed: self.crashed.report(),
                survivors: self.survivors.report(),
                survivors_informed: self.survivors_informed.report(),
                schedule_events: self.telemetry.schedule_events,
                crashed_node_slots: self.telemetry.crashed_node_slots,
            }),
        }
    }
}

/// Build the `TrialSpec` for global trial index `g`.
fn trial_spec(spec: &CampaignSpec, cfg: &CampaignConfig, g: u64) -> TrialSpec {
    let cell = &spec.cells[(g / cfg.trials_per_cell) as usize];
    TrialSpec::new(
        cell.protocol.clone(),
        cell.adversary.clone(),
        derive_seed(cfg.seed, g),
    )
    .with_topology(cell.topology.clone())
    .with_schedule(cell.schedule.clone())
    .with_max_slots(cfg.max_slots.unwrap_or(cell.max_slots))
}

/// A `(global index, metrics)` pair ordered for a min-heap on the index.
struct Pending(u64, TrialMetrics);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0) // reversed: BinaryHeap is a max-heap
    }
}

/// The [`TrialOptions`] every campaign trial runs under: default engine
/// plus the campaign's wall-clock opt-in.
fn trial_options<'a>(cfg: &CampaignConfig) -> TrialOptions<'a> {
    TrialOptions::with_engine(EngineConfig {
        time_phases: cfg.telemetry,
        ..EngineConfig::default()
    })
}

/// Stderr progress reporter: one line per `total/20` ingested trials plus a
/// guaranteed `total/total (100%)` line, naming the cell the last trial
/// belonged to and the cumulative simulated-slot throughput.
struct Progress {
    enabled: bool,
    step: u64,
    started: Instant,
    slots_done: u64,
}

impl Progress {
    fn new(enabled: bool, total: u64) -> Self {
        Self {
            enabled,
            step: (total / 20).max(1),
            started: Instant::now(),
            slots_done: 0,
        }
    }

    /// Record trial `g`'s metrics as ingested (`expected` of `total` done).
    fn tick(
        &mut self,
        spec: &CampaignSpec,
        cfg: &CampaignConfig,
        g: u64,
        m: &TrialMetrics,
        expected: u64,
        total: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.slots_done += m.telemetry.slots_total();
        if !(expected.is_multiple_of(self.step) || expected == total) {
            return;
        }
        let cell = &spec.cells[(g / cfg.trials_per_cell) as usize];
        let rate = self.slots_done as f64 / self.started.elapsed().as_secs_f64().max(1e-9);
        eprintln!(
            "[rcb] {}: {expected}/{total} trials ({:.0}%) — {}/{} — {:.1}M slots/s",
            spec.name,
            100.0 * expected as f64 / total as f64,
            cell.protocol.name(),
            cell.adversary.name(),
            rate * 1e-6,
        );
    }
}

/// Assemble the final artifact from the filled per-cell accumulators.
fn assemble_report(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    total: u64,
    accs: &[CellAccumulator],
) -> CampaignReport {
    CampaignReport {
        campaign: spec.name.clone(),
        description: spec.description.clone(),
        code_version: code_version().to_string(),
        seed: cfg.seed,
        trials_per_cell: cfg.trials_per_cell,
        total_trials: total,
        cells: spec
            .cells
            .iter()
            .zip(accs)
            .map(|(cell, acc)| acc.report(cell, cfg.max_slots.unwrap_or(cell.max_slots)))
            .collect(),
    }
}

/// Run a campaign: every cell × `trials_per_cell` seeds, aggregated
/// streamingly. See the module docs for the determinism argument.
///
/// # Panics
/// Panics if the spec has no cells or `trials_per_cell` is 0.
pub fn run_campaign(spec: &CampaignSpec, cfg: &CampaignConfig) -> CampaignReport {
    assert!(!spec.cells.is_empty(), "campaign has no cells");
    assert!(cfg.trials_per_cell > 0, "campaign needs at least one trial");
    let total = spec.cells.len() as u64 * cfg.trials_per_cell;
    let threads = rcb_harness::resolve_threads(cfg.threads)
        .min(total as usize)
        .max(1);

    let mut accs: Vec<CellAccumulator> =
        spec.cells.iter().map(|_| CellAccumulator::new()).collect();

    // Work units are blocks of up to `batch_width` same-cell trials (size 1
    // at the default width — the scalar scheduling, unchanged). Blocks never
    // cross a cell boundary, so a block maps to one batched engine call.
    let width = cfg.batch_width.clamp(1, 64);
    let blocks: Vec<(u64, u64)> = (0..spec.cells.len() as u64)
        .flat_map(|c| {
            let base = c * cfg.trials_per_cell;
            (0..cfg.trials_per_cell)
                .step_by(width as usize)
                .map(move |t| (base + t, base + (t + width).min(cfg.trials_per_cell)))
        })
        .collect();

    let next = AtomicU64::new(0);
    // Bounded channel: workers stall rather than flood the aggregator, so
    // the reorder buffer stays small even with a straggler trial.
    let (tx, rx) = mpsc::sync_channel::<Pending>(1024);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let blocks = &blocks;
            scope.spawn(move || loop {
                let bi = next.fetch_add(1, Ordering::Relaxed) as usize;
                if bi >= blocks.len() {
                    break;
                }
                let (start, end) = blocks[bi];
                let ts = trial_spec(spec, cfg, start);
                if end - start > 1 && batch_supported(&ts) {
                    let seeds: Vec<u64> = (start..end).map(|g| derive_seed(cfg.seed, g)).collect();
                    let engine = EngineConfig {
                        time_phases: cfg.telemetry,
                        ..EngineConfig::default()
                    };
                    for (i, (r, tel)) in
                        run_trial_batch(&ts, &seeds, engine).into_iter().enumerate()
                    {
                        let metrics = TrialMetrics::new(&r, tel);
                        if tx.send(Pending(start + i as u64, metrics)).is_err() {
                            return; // aggregator gone; shutting down
                        }
                    }
                } else {
                    for g in start..end {
                        let ts = trial_spec(spec, cfg, g);
                        let (r, tel) = run_trial_telemetry(&ts, trial_options(cfg));
                        let metrics = TrialMetrics::new(&r, tel);
                        if tx.send(Pending(g, metrics)).is_err() {
                            return; // aggregator gone; shutting down
                        }
                    }
                }
            });
        }
        drop(tx);

        // Aggregate strictly in global-index order.
        let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
        let mut expected: u64 = 0;
        let mut progress = Progress::new(cfg.progress, total);
        for pending in rx.iter() {
            heap.push(pending);
            while heap.peek().is_some_and(|p| p.0 == expected) {
                let Pending(g, m) = heap.pop().expect("peeked");
                accs[(g / cfg.trials_per_cell) as usize].push(&m);
                expected += 1;
                progress.tick(spec, cfg, g, &m, expected, total);
            }
        }
        assert_eq!(expected, total, "aggregator lost trials");
    });

    assemble_report(spec, cfg, total, &accs)
}

/// Run a campaign sequentially while streaming a structured JSONL trace of
/// every trial into `sink` (`rcb run --trace-out`). See
/// [`crate::tracefile`] for the line schema.
///
/// Trials run in global-index order on the calling thread — trace lines
/// interleave per-trial events, so deterministic ordering requires a single
/// writer. The returned report is byte-identical to [`run_campaign`]'s for
/// the same config: tracing mounts an extra observer, and observers cannot
/// influence a run.
///
/// # Errors
/// Returns the first I/O error the sink raised; the campaign stops at the
/// trial that hit it.
///
/// # Panics
/// Panics if the spec has no cells or `trials_per_cell` is 0.
pub fn run_campaign_traced(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    sink: &mut dyn std::io::Write,
) -> std::io::Result<CampaignReport> {
    assert!(!spec.cells.is_empty(), "campaign has no cells");
    assert!(cfg.trials_per_cell > 0, "campaign needs at least one trial");
    let total = spec.cells.len() as u64 * cfg.trials_per_cell;

    let mut accs: Vec<CellAccumulator> =
        spec.cells.iter().map(|_| CellAccumulator::new()).collect();
    let mut writer = TraceWriter::new(sink);
    writer.header(&spec.name, cfg.seed, cfg.trials_per_cell, total);

    let mut progress = Progress::new(cfg.progress, total);
    for g in 0..total {
        let ts = trial_spec(spec, cfg, g);
        writer.trial_start(g, g / cfg.trials_per_cell, ts.seed);
        let (r, tel) = {
            let mut obs = TrialTraceObserver::new(&mut writer, g);
            let mut opts = trial_options(cfg);
            opts.observer = Some(&mut obs);
            run_trial_telemetry(&ts, opts)
        };
        writer.trial_end(g, &r);
        writer.check()?;
        let m = TrialMetrics::new(&r, tel);
        accs[(g / cfg.trials_per_cell) as usize].push(&m);
        progress.tick(spec, cfg, g, &m, g + 1, total);
    }
    writer.finish()?;

    Ok(assemble_report(spec, cfg, total, &accs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_harness::{AdversaryKind, ProtocolKind};

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            description: "test".into(),
            cells: vec![
                CellSpec::new(
                    ProtocolKind::Naive {
                        n: 16,
                        act_prob: 1.0,
                    },
                    AdversaryKind::Silent,
                )
                .with_max_slots(100_000),
                CellSpec::new(
                    ProtocolKind::Naive {
                        n: 16,
                        act_prob: 1.0,
                    },
                    AdversaryKind::Uniform { t: 500, frac: 0.5 },
                )
                .with_max_slots(100_000),
            ],
        }
    }

    #[test]
    fn campaign_aggregates_every_trial() {
        let report = run_campaign(
            &tiny_spec(),
            &CampaignConfig {
                seed: 7,
                trials_per_cell: 10,
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.total_trials, 20);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.trials, 10);
            assert_eq!(cell.completed, 10, "naive epidemic always completes");
            assert_eq!(cell.safety_violations, 0);
            assert_eq!(cell.completion_slots.count, 10);
            assert!(cell.completion_slots.mean > 0.0);
            assert!(cell.completion_slots.min <= cell.completion_slots.p50);
            assert!(cell.completion_slots.p50 <= cell.completion_slots.max * 1.02);
        }
        // The jammed cell can only be slower on average.
        assert!(
            report.cells[1].completion_slots.mean >= report.cells[0].completion_slots.mean * 0.5
        );
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let spec = tiny_spec();
        let run = |threads| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed: 42,
                    trials_per_cell: 16,
                    threads,
                    ..Default::default()
                },
            )
            .to_json()
        };
        let one = run(1);
        assert_eq!(one, run(4), "1 vs 4 threads");
        assert_eq!(one, run(8), "1 vs 8 threads");
    }

    #[test]
    fn batch_width_does_not_change_the_report() {
        let spec = tiny_spec();
        let run = |batch_width| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed: 42,
                    trials_per_cell: 10,
                    threads: 2,
                    batch_width,
                    ..Default::default()
                },
            )
            .to_json()
        };
        let scalar = run(1);
        // Both an even divisor and a ragged width (10 = 5+5 = 8+2): lanes
        // replicate scalar trials exactly, so the artifact is byte-identical.
        assert_eq!(scalar, run(5), "batch 5 vs scalar");
        assert_eq!(scalar, run(8), "batch 8 vs scalar");
        assert_eq!(scalar, run(64), "batch 64 vs scalar");
    }

    #[test]
    fn batch_width_falls_back_on_unsupported_cells() {
        // Scheduled cells are outside the batch lane's scope; the engine
        // must route them through the scalar path and still produce the
        // same report.
        let spec = crash_spec();
        let run = |batch_width| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed: 9,
                    trials_per_cell: 6,
                    threads: 2,
                    batch_width,
                    ..Default::default()
                },
            )
            .to_json()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn different_seeds_differ() {
        let spec = tiny_spec();
        let run = |seed| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed,
                    trials_per_cell: 8,
                    threads: 2,
                    ..Default::default()
                },
            )
            .to_json()
        };
        assert_ne!(run(1), run(2));
    }

    fn crash_spec() -> CampaignSpec {
        use rcb_harness::{ScheduleEventKind, ScheduleSpec};
        CampaignSpec {
            name: "sched".into(),
            description: "crash two nodes at slot 0".into(),
            cells: vec![CellSpec::new(
                ProtocolKind::Naive {
                    n: 16,
                    act_prob: 1.0,
                },
                AdversaryKind::Silent,
            )
            .with_schedule(ScheduleSpec::new().at(
                0,
                ScheduleEventKind::CrashNodes {
                    nodes: vec![14, 15],
                },
            ))
            .with_max_slots(100_000)],
        }
    }

    #[test]
    fn scheduled_cell_reports_the_schedule_block() {
        let report = run_campaign(
            &crash_spec(),
            &CampaignConfig {
                seed: 3,
                trials_per_cell: 6,
                threads: 2,
                ..Default::default()
            },
        );
        let cell = &report.cells[0];
        let sched = cell.schedule.as_ref().expect("scheduled cell");
        assert_eq!(sched.events, 1);
        assert_eq!(sched.kinds, vec!["crash".to_string()]);
        assert_eq!(sched.detail, "crash@0");
        assert_eq!(sched.timeline[0].applied_trials, 6);
        assert_eq!(sched.timeline[0].applied_at_min, 0);
        assert_eq!(sched.timeline[0].applied_at_max, 0);
        assert_eq!(sched.crashed.mean, 2.0);
        assert_eq!(sched.survivors.mean, 14.0);
        assert_eq!(sched.survivors_informed.mean, 14.0);
        assert_eq!(sched.schedule_events, 6, "one boundary per trial");
        assert!(sched.crashed_node_slots > 0);
        // Survivor-relative verdict: the 14 live nodes all get informed, so
        // the cell completes even though the crashed pair never hears.
        assert_eq!(cell.completed, 6);
        assert_eq!(cell.all_informed, 0);
        assert_eq!(cell.safety_violations, 0);
        // The JSON carries the conditional block.
        assert!(report.to_json().contains("\"schedule\""));
    }

    #[test]
    fn unscheduled_cells_never_grow_a_schedule_block() {
        let report = run_campaign(
            &tiny_spec(),
            &CampaignConfig {
                seed: 5,
                trials_per_cell: 4,
                threads: 2,
                ..Default::default()
            },
        );
        assert!(report.cells.iter().all(|c| c.schedule.is_none()));
        assert!(!report.to_json().contains("\"schedule\""));
    }

    #[test]
    fn thread_count_does_not_change_a_scheduled_report() {
        let spec = crash_spec();
        let run = |threads| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed: 11,
                    trials_per_cell: 12,
                    threads,
                    ..Default::default()
                },
            )
            .to_json()
        };
        let one = run(1);
        assert_eq!(one, run(4), "1 vs 4 threads");
    }

    #[test]
    #[should_panic(expected = "no cells")]
    fn empty_campaign_panics() {
        let spec = CampaignSpec {
            name: "x".into(),
            description: String::new(),
            cells: vec![],
        };
        run_campaign(&spec, &CampaignConfig::default());
    }
}
