//! The parallel campaign engine.
//!
//! Executes every cell of a [`CampaignSpec`] for `trials_per_cell` seeds,
//! sharding trials across worker threads, and aggregates **streamingly**:
//! no `TrialResult` vector is ever materialized. Workers distill each trial
//! into a ~100-byte `TrialMetrics` and send it to the aggregator thread,
//! which feeds per-cell accumulators (`CellAccumulator`) built from
//! `rcb-stats` streaming moments and quantile sketches. Memory is
//! `O(cells · sketch)` + a small reorder buffer, independent of the trial
//! count.
//!
//! ## Determinism
//!
//! Two mechanisms make a campaign bit-identical for a given seed at *any*
//! thread count:
//!
//! 1. **Seed derivation is positional.** Trial `g` (global index: cell
//!    `c = g / trials_per_cell`, replicate `t = g % trials_per_cell`)
//!    always runs with master seed `cell_trial_seed(campaign_seed, c, t)`
//!    — a per-cell stream, then the replicate's draw within it — no matter
//!    which worker claims it. Because a cell's stream depends only on
//!    `(campaign_seed, c)`, growing `--trials` extends each stream in
//!    place, which is what makes incremental resume possible.
//! 2. **Aggregation order is positional.** Workers return metrics tagged
//!    with `g`; the aggregator holds them in a reorder buffer and ingests
//!    strictly in increasing `g`. Floating-point accumulation order is
//!    therefore fixed, so even the non-associative Welford updates produce
//!    identical bits.
//!
//! ## The resumable service
//!
//! [`run_campaign_service`] wraps the same engine with per-cell
//! checkpointing, incremental resume, and a content-addressed result store
//! (see [`crate::checkpoint`] and [`crate::store`]). [`run_campaign`] is
//! the service with every feature off. Both determinism mechanisms carry
//! over verbatim: a resumed cell restores its accumulator bit-exactly from
//! the checkpoint and re-runs only replicates `watermark..trials`, whose
//! seeds are the same as in an uninterrupted run — so the final artifact is
//! byte-identical at any kill point, thread count, and batch width
//! (`tests/resume_equivalence.rs` pins this).

use crate::checkpoint::{load_checkpoint, write_checkpoint, CellCheckpoint, ServiceError};
use crate::report::{
    code_version, CampaignReport, CellPerf, CellReport, MetricReport, ScheduleReport, TimelineEntry,
};
use crate::scenario::{CampaignSpec, CellSpec};
use crate::store::{checkpoint_key, Store};
use crate::tracefile::{TraceWriter, TrialTraceObserver};
use rcb_harness::{
    batch_supported, cell_trial_seed, run_trial_batch, run_trial_telemetry, TrialOptions,
    TrialResult, TrialSpec,
};
use rcb_sim::{EngineConfig, EngineTelemetry, ScheduleMarker};
use rcb_stats::{QuantileSketch, StreamingMoments};
use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// How a campaign is executed. Everything that affects the *artifact's
/// deterministic leaves* is here except `threads`, `progress`, and
/// `telemetry`, which by design cannot affect them (`telemetry` only fills
/// the wall-clock leaves of the `perf` block, which are zero otherwise).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign master seed; every trial seed derives from it.
    pub seed: u64,
    /// Trials per cell.
    pub trials_per_cell: u64,
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Override every cell's engine slot cap (None = use the cell's own).
    pub max_slots: Option<u64>,
    /// Print progress lines to stderr while running.
    pub progress: bool,
    /// Collect wall-clock phase timing into each cell's `perf` block
    /// (`rcb run --perf`). Off by default so artifacts stay byte-identical
    /// across hosts and repeats; the deterministic perf *counters* are
    /// always collected regardless of this flag.
    pub telemetry: bool,
    /// Trials per lockstep batch (clamped to 1..=64). At 1 — the default —
    /// every trial runs the scalar engine, exactly as before. Above 1,
    /// workers claim blocks of up to this many same-cell trials and run
    /// them through the trial-batched lane ([`rcb_sim::BatchSimulation`])
    /// where the cell's spec supports it (single-hop, unscheduled,
    /// single-message), falling back to scalar trials otherwise. Lanes
    /// replicate per-trial scalar semantics (`tests/batch_equivalence.rs`
    /// pins the artifact against the scalar engine's), so this is a
    /// throughput knob, not a statistics knob.
    pub batch_width: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            trials_per_cell: 100,
            threads: 0,
            max_slots: None,
            progress: false,
            telemetry: false,
            batch_width: 1,
        }
    }
}

/// The distilled per-trial record that crosses the worker/aggregator
/// channel. Near-fixed-size — the helper list is empty for every protocol
/// except `MultiCastAdv`, where it holds at most one entry per node —
/// so campaigns never hold meaningful per-trial data beyond the reorder
/// buffer.
#[derive(Clone, Debug)]
struct TrialMetrics {
    completion_slots: u64,
    max_cost: u64,
    mean_cost: f64,
    source_cost: u64,
    eve_spent: u64,
    completed: bool,
    all_informed: bool,
    safety_violations: u64,
    /// `(epoch, phase)` of each helper-promotion event (`MultiCastAdv`).
    helper_phases: Vec<(u32, u32)>,
    /// Crash-model outcome fields (all zero/`survivors == n`-shaped for
    /// unscheduled cells; only reported on scheduled ones).
    crashed: u32,
    survivors: u32,
    survivors_informed: u32,
    /// Application markers of the trial's world-schedule events, in spec
    /// order (a strict prefix of the schedule when the run ended early).
    timeline: Vec<ScheduleMarker>,
    /// Engine telemetry of the trial (counters always; phase clocks only
    /// under [`CampaignConfig::telemetry`]).
    telemetry: EngineTelemetry,
}

impl TrialMetrics {
    fn new(r: &TrialResult, telemetry: EngineTelemetry) -> Self {
        Self {
            completion_slots: r.completion_time(),
            max_cost: r.max_cost,
            mean_cost: r.mean_cost,
            source_cost: r.source_cost,
            eve_spent: r.eve_spent,
            completed: r.completed,
            all_informed: r.all_informed,
            safety_violations: r.safety_violations as u64,
            helper_phases: r.helper_phases.clone(),
            crashed: r.crashed,
            survivors: r.survivors,
            survivors_informed: r.survivors_informed,
            timeline: r.timeline.clone(),
            telemetry,
        }
    }
}

/// Streaming aggregate over one cell's trials.
///
/// Every field is part of the resumable-service state: the checkpoint
/// codec ([`crate::checkpoint`]) serializes and restores this struct
/// **exactly** (f64s as bit patterns), which is what makes a resumed
/// campaign's artifact byte-identical to an uninterrupted run's.
#[derive(Clone, Debug)]
pub(crate) struct CellAccumulator {
    pub(crate) trials: u64,
    pub(crate) completed: u64,
    pub(crate) all_informed: u64,
    pub(crate) safety_violations: u64,
    pub(crate) completion_slots: MetricAcc,
    pub(crate) max_cost: MetricAcc,
    pub(crate) mean_cost: MetricAcc,
    pub(crate) source_cost: MetricAcc,
    pub(crate) eve_spent: MetricAcc,
    /// Count per distinct helper `(epoch, phase)` across the cell's trials
    /// (bounded by the handful of phases a schedule visits, not by trials).
    pub(crate) helper_events: std::collections::BTreeMap<(u32, u32), u64>,
    /// Crash-model distributions (reported only for scheduled cells).
    pub(crate) crashed: MetricAcc,
    pub(crate) survivors: MetricAcc,
    pub(crate) survivors_informed: MetricAcc,
    /// Per-event application aggregate: `(applied_trials, min, max)` of the
    /// application slot. Index-aligned with the cell's schedule because
    /// events apply strictly in spec order.
    pub(crate) timeline: Vec<(u64, u64, u64)>,
    /// Engine telemetry merged over the cell's trials (fixed-size).
    pub(crate) telemetry: EngineTelemetry,
}

/// Moments + quantile sketch for one metric.
#[derive(Clone, Debug)]
pub(crate) struct MetricAcc {
    pub(crate) moments: StreamingMoments,
    pub(crate) sketch: QuantileSketch,
}

impl MetricAcc {
    pub(crate) fn new() -> Self {
        Self {
            moments: StreamingMoments::new(),
            sketch: QuantileSketch::new(),
        }
    }

    pub(crate) fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.sketch.push(x);
    }

    fn report(&self) -> MetricReport {
        MetricReport {
            count: self.moments.count(),
            mean: self.moments.mean(),
            std_dev: self.moments.std_dev(),
            min: self.moments.min().unwrap_or(0.0),
            max: self.moments.max().unwrap_or(0.0),
            p50: self.sketch.quantile(0.5).unwrap_or(0.0),
            p90: self.sketch.quantile(0.9).unwrap_or(0.0),
            p99: self.sketch.quantile(0.99).unwrap_or(0.0),
        }
    }
}

impl CellAccumulator {
    pub(crate) fn new() -> Self {
        Self {
            trials: 0,
            completed: 0,
            all_informed: 0,
            safety_violations: 0,
            completion_slots: MetricAcc::new(),
            max_cost: MetricAcc::new(),
            mean_cost: MetricAcc::new(),
            source_cost: MetricAcc::new(),
            eve_spent: MetricAcc::new(),
            helper_events: std::collections::BTreeMap::new(),
            crashed: MetricAcc::new(),
            survivors: MetricAcc::new(),
            survivors_informed: MetricAcc::new(),
            timeline: Vec::new(),
            telemetry: EngineTelemetry::default(),
        }
    }

    fn push(&mut self, m: &TrialMetrics) {
        self.trials += 1;
        self.completed += m.completed as u64;
        self.all_informed += m.all_informed as u64;
        self.safety_violations += m.safety_violations;
        self.completion_slots.push(m.completion_slots as f64);
        self.max_cost.push(m.max_cost as f64);
        self.mean_cost.push(m.mean_cost);
        self.source_cost.push(m.source_cost as f64);
        self.eve_spent.push(m.eve_spent as f64);
        for &(epoch, phase) in &m.helper_phases {
            *self.helper_events.entry((epoch, phase)).or_insert(0) += 1;
        }
        self.crashed.push(f64::from(m.crashed));
        self.survivors.push(f64::from(m.survivors));
        self.survivors_informed
            .push(f64::from(m.survivors_informed));
        for (i, marker) in m.timeline.iter().enumerate() {
            match self.timeline.get_mut(i) {
                Some((applied, min, max)) => {
                    *applied += 1;
                    *min = (*min).min(marker.applied_at);
                    *max = (*max).max(marker.applied_at);
                }
                None => self
                    .timeline
                    .push((1, marker.applied_at, marker.applied_at)),
            }
        }
        self.telemetry.merge(&m.telemetry);
    }

    pub(crate) fn report(&self, cell: &CellSpec, max_slots: u64) -> CellReport {
        CellReport {
            protocol: cell.protocol.name().to_string(),
            adversary: cell.adversary.name().to_string(),
            topology: cell.topology.name().to_string(),
            n: cell.protocol.n(),
            budget: cell.adversary.budget(),
            max_slots,
            trials: self.trials,
            completed: self.completed,
            all_informed: self.all_informed,
            completion_rate: if self.trials == 0 {
                0.0
            } else {
                self.completed as f64 / self.trials as f64
            },
            safety_violations: self.safety_violations,
            completion_slots: self.completion_slots.report(),
            max_node_cost: self.max_cost.report(),
            mean_node_cost: self.mean_cost.report(),
            source_cost: self.source_cost.report(),
            eve_spent: self.eve_spent.report(),
            helper_events: self
                .helper_events
                .iter()
                .map(
                    |(&(epoch, phase), &count)| crate::report::HelperPhaseCount {
                        epoch,
                        phase,
                        count,
                    },
                )
                .collect(),
            // Integer phase nanos sum deterministically across the ordered
            // ingest, so the artifact stays thread-count independent even
            // with timing on (for one fixed run's metrics stream).
            perf: CellPerf::from_telemetry(
                &self.telemetry,
                self.telemetry.phases.total() as f64 * 1e-9,
            ),
            schedule: (!cell.schedule.is_empty()).then(|| ScheduleReport {
                events: cell.schedule.len() as u64,
                first_slot: cell.schedule.first_slot().unwrap_or(0),
                last_slot: cell.schedule.last_slot().unwrap_or(0),
                detail: cell.schedule.detail(),
                kinds: cell
                    .schedule
                    .events
                    .iter()
                    .map(|(_, e)| e.name().to_string())
                    .collect(),
                // One entry per scheduled event: aggregated markers where
                // trials reached it, an explicit zero record where none did.
                timeline: cell
                    .schedule
                    .events
                    .iter()
                    .enumerate()
                    .map(|(i, &(scheduled_at, _))| {
                        let (applied, min, max) =
                            self.timeline.get(i).copied().unwrap_or((0, 0, 0));
                        TimelineEntry {
                            scheduled_at,
                            applied_trials: applied,
                            applied_at_min: min,
                            applied_at_max: max,
                        }
                    })
                    .collect(),
                crashed: self.crashed.report(),
                survivors: self.survivors.report(),
                survivors_informed: self.survivors_informed.report(),
                schedule_events: self.telemetry.schedule_events,
                crashed_node_slots: self.telemetry.crashed_node_slots,
            }),
        }
    }
}

/// Build the `TrialSpec` for global trial index `g`.
fn trial_spec(spec: &CampaignSpec, cfg: &CampaignConfig, g: u64) -> TrialSpec {
    let cell = &spec.cells[(g / cfg.trials_per_cell) as usize];
    TrialSpec::new(
        cell.protocol.clone(),
        cell.adversary.clone(),
        cell_trial_seed(cfg.seed, g / cfg.trials_per_cell, g % cfg.trials_per_cell),
    )
    .with_topology(cell.topology.clone())
    .with_schedule(cell.schedule.clone())
    .with_max_slots(cfg.max_slots.unwrap_or(cell.max_slots))
}

/// A `(global index, metrics)` pair ordered for a min-heap on the index.
struct Pending(u64, TrialMetrics);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0) // reversed: BinaryHeap is a max-heap
    }
}

/// The [`TrialOptions`] every campaign trial runs under: default engine
/// plus the campaign's wall-clock opt-in.
fn trial_options<'a>(cfg: &CampaignConfig) -> TrialOptions<'a> {
    TrialOptions::with_engine(EngineConfig {
        time_phases: cfg.telemetry,
        ..EngineConfig::default()
    })
}

/// Stderr progress reporter: one line per `total/20` ingested trials plus a
/// guaranteed `total/total (100%)` line, naming the cell the last trial
/// belonged to and the cumulative simulated-slot throughput.
struct Progress {
    enabled: bool,
    step: u64,
    started: Instant,
    slots_done: u64,
}

impl Progress {
    fn new(enabled: bool, total: u64) -> Self {
        Self {
            enabled,
            step: (total / 20).max(1),
            started: Instant::now(),
            slots_done: 0,
        }
    }

    /// Record trial `g`'s metrics as ingested (`expected` of `total` done).
    fn tick(
        &mut self,
        spec: &CampaignSpec,
        cfg: &CampaignConfig,
        g: u64,
        m: &TrialMetrics,
        expected: u64,
        total: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.slots_done += m.telemetry.slots_total();
        if !(expected.is_multiple_of(self.step) || expected == total) {
            return;
        }
        let cell = &spec.cells[(g / cfg.trials_per_cell) as usize];
        let rate = self.slots_done as f64 / self.started.elapsed().as_secs_f64().max(1e-9);
        eprintln!(
            "[rcb] {}: {expected}/{total} trials ({:.0}%) — {}/{} — {:.1}M slots/s",
            spec.name,
            100.0 * expected as f64 / total as f64,
            cell.protocol.name(),
            cell.adversary.name(),
            rate * 1e-6,
        );
    }
}

/// The `(start, end)` global-trial blocks still to simulate: up to
/// `batch_width` remaining same-cell trials per block (size 1 at the
/// default width — the scalar scheduling). Blocks never cross a cell
/// boundary, so a block maps to one batched engine call; a resumed
/// cell's first block starts at its watermark.
pub(crate) fn trial_blocks(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    watermarks: &[u64],
) -> Vec<(u64, u64)> {
    let n = cfg.trials_per_cell;
    let width = cfg.batch_width.clamp(1, 64);
    spec.cells
        .iter()
        .enumerate()
        .flat_map(|(c, _)| {
            let base = c as u64 * n;
            (watermarks[c]..n)
                .step_by(width as usize)
                .map(move |t| (base + t, base + (t + width).min(n)))
        })
        .collect()
}

/// What the per-ingest callback of [`run_trial_blocks`] tells the
/// aggregator to do next.
pub(crate) enum IngestControl {
    /// Keep ingesting.
    Continue,
    /// Stop cleanly: drain nothing further, unwind the worker threads, and
    /// report `stopped = true` (the kill hook and the shard worker's
    /// lost-lease abandon path).
    Stop,
}

/// Per-ingest callback of [`run_trial_blocks`]:
/// `(cell, watermark, acc, simulated)` after every ingested trial.
pub(crate) type OnIngest<'a> =
    dyn FnMut(usize, u64, &CellAccumulator, u64) -> Result<IngestControl, ServiceError> + 'a;

/// Outcome of [`run_trial_blocks`].
pub(crate) struct BlocksOutcome {
    /// Trials simulated *and ingested* by this call.
    pub(crate) simulated: u64,
    /// Whether the callback stopped the run before the block list drained.
    pub(crate) stopped: bool,
}

/// The campaign engine's inner loop, shared by [`run_campaign_service`]
/// and the shard worker ([`crate::shard`]): simulate every `(start, end)`
/// global-trial block across worker threads and ingest the metrics into
/// `accs`/`watermarks` **strictly in ascending global-index order** (the
/// positional-aggregation determinism mechanism — see the module docs).
///
/// `on_ingest(cell, watermark, acc, simulated)` runs after every ingested
/// trial, in ingest order, on the aggregator thread. It is where callers
/// hang checkpoint boundaries, kill hooks, lease heartbeats, and fencing;
/// returning [`IngestControl::Stop`] or an error unwinds the worker
/// threads promptly (their sends fail once the receiver drops).
///
/// Blocks must not cross cell boundaries and must be listed in ascending
/// start order; `watermarks[c]` is set to `replicate + 1` as each trial of
/// cell `c` lands.
pub(crate) fn run_trial_blocks(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    blocks: &[(u64, u64)],
    accs: &mut [CellAccumulator],
    watermarks: &mut [u64],
    on_ingest: &mut OnIngest<'_>,
) -> Result<BlocksOutcome, ServiceError> {
    let n = cfg.trials_per_cell;
    // The exact ingest order: ascending global index over scheduled work.
    let order: Vec<u64> = blocks.iter().flat_map(|&(s, e)| s..e).collect();
    let scheduled = order.len() as u64;

    let threads = rcb_harness::resolve_threads(cfg.threads)
        .min(scheduled.max(1) as usize)
        .max(1);

    let next = AtomicU64::new(0);
    // Bounded channel: workers stall rather than flood the aggregator, so
    // the reorder buffer stays small even with a straggler trial.
    let (tx, rx) = mpsc::sync_channel::<Pending>(1024);

    let mut simulated = 0u64;
    let mut stopped = false;
    let mut cb_error: Option<ServiceError> = None;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let bi = next.fetch_add(1, Ordering::Relaxed) as usize;
                if bi >= blocks.len() {
                    break;
                }
                let (start, end) = blocks[bi];
                let ts = trial_spec(spec, cfg, start);
                if end - start > 1 && batch_supported(&ts) {
                    let seeds: Vec<u64> = (start..end)
                        .map(|g| cell_trial_seed(cfg.seed, g / n, g % n))
                        .collect();
                    let engine = EngineConfig {
                        time_phases: cfg.telemetry,
                        ..EngineConfig::default()
                    };
                    for (i, (r, tel)) in
                        run_trial_batch(&ts, &seeds, engine).into_iter().enumerate()
                    {
                        let metrics = TrialMetrics::new(&r, tel);
                        if tx.send(Pending(start + i as u64, metrics)).is_err() {
                            return; // aggregator gone; shutting down
                        }
                    }
                } else {
                    for g in start..end {
                        let ts = trial_spec(spec, cfg, g);
                        let (r, tel) = run_trial_telemetry(&ts, trial_options(cfg));
                        let metrics = TrialMetrics::new(&r, tel);
                        if tx.send(Pending(g, metrics)).is_err() {
                            return; // aggregator gone; shutting down
                        }
                    }
                }
            });
        }
        drop(tx);

        // Aggregate strictly in scheduled (ascending global-index) order.
        let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
        let mut pos: usize = 0;
        let mut progress = Progress::new(cfg.progress, scheduled.max(1));
        'ingest: for pending in rx.iter() {
            heap.push(pending);
            while pos < order.len() && heap.peek().is_some_and(|p| p.0 == order[pos]) {
                let Pending(g, m) = heap.pop().expect("peeked");
                let c = (g / n) as usize;
                accs[c].push(&m);
                watermarks[c] = g % n + 1;
                simulated += 1;
                pos += 1;
                progress.tick(spec, cfg, g, &m, pos as u64, scheduled);
                match on_ingest(c, watermarks[c], &accs[c], simulated) {
                    Ok(IngestControl::Continue) => {}
                    Ok(IngestControl::Stop) => {
                        stopped = true;
                        break 'ingest;
                    }
                    Err(e) => {
                        cb_error = Some(e);
                        break 'ingest;
                    }
                }
            }
        }
        // Dropping the receiver makes every blocked worker's send fail, so
        // the scope joins promptly on the stop/error paths.
        drop(rx);
        if !stopped && cb_error.is_none() {
            assert_eq!(pos, order.len(), "aggregator lost trials");
        }
    });

    if let Some(e) = cb_error {
        return Err(e);
    }
    Ok(BlocksOutcome { simulated, stopped })
}

/// Assemble the final artifact from the filled per-cell accumulators.
pub(crate) fn assemble_report(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    total: u64,
    accs: &[CellAccumulator],
) -> CampaignReport {
    CampaignReport {
        campaign: spec.name.clone(),
        description: spec.description.clone(),
        code_version: code_version().to_string(),
        seed: cfg.seed,
        trials_per_cell: cfg.trials_per_cell,
        total_trials: total,
        cells: spec
            .cells
            .iter()
            .zip(accs)
            .map(|(cell, acc)| acc.report(cell, cfg.max_slots.unwrap_or(cell.max_slots)))
            .collect(),
    }
}

/// Service features layered over the campaign engine by
/// [`run_campaign_service`]. The default (all `None`/off) is exactly the
/// plain batch engine — [`run_campaign`] is that default.
#[derive(Clone, Debug, Default)]
pub struct ServiceConfig {
    /// Directory for per-cell checkpoint files (`rcb run --state-dir`).
    /// `None` disables checkpointing entirely.
    pub state_dir: Option<PathBuf>,
    /// Load checkpoints from `state_dir` before running and continue each
    /// cell from its watermark (`rcb run --resume`). Requires `state_dir`.
    pub resume: bool,
    /// Write a checkpoint every this-many trials of a cell, measured on the
    /// cell's **absolute** watermark — so the set of boundary files on disk
    /// is the same however often the campaign is killed and resumed. 0
    /// checkpoints only at cell completion. Ignored without `state_dir`.
    pub checkpoint_every: u64,
    /// Content-addressed store directory (`rcb run --store`): consulted
    /// per cell before simulating, populated with every cell this run
    /// computes. `None` disables the store.
    pub store_dir: Option<PathBuf>,
    /// Test hook (`rcb run --max-trials-then-exit N`): stop ingesting after
    /// `N` newly simulated trials and return [`ServiceRun::Killed`] without
    /// assembling an artifact — a deterministic stand-in for `kill -9` that
    /// leaves exactly the on-disk state a real kill would.
    pub kill_after_trials: Option<u64>,
}

/// Validate a [`ServiceConfig`] assembled from CLI flags before any work
/// happens, so flag misuse fails fast with `flag: message` context instead
/// of panicking or silently defaulting.
///
/// `explicit_checkpoint_every` is the value of `--checkpoint-every` **iff
/// the user typed the flag**: an explicit `0` is rejected (it would silently
/// mean "completion-only", almost certainly not what was asked for) and an
/// explicit value without `--state-dir` is rejected (it would silently be
/// ignored). The programmatic default — `checkpoint_every: 0`, no flag —
/// stays legal.
///
/// # Errors
/// Returns a [`ServiceError`] whose message begins with the offending flag.
pub fn validate_service_flags(
    svc: &ServiceConfig,
    explicit_checkpoint_every: Option<u64>,
) -> Result<(), ServiceError> {
    if svc.resume && svc.state_dir.is_none() {
        return Err(ServiceError::msg(
            "--resume: requires --state-dir (there is no checkpoint directory to resume from)",
        ));
    }
    if let Some(every) = explicit_checkpoint_every {
        if every == 0 {
            return Err(ServiceError::msg(
                "--checkpoint-every: must be at least 1; omit the flag to checkpoint only at \
                 cell completion",
            ));
        }
        if svc.state_dir.is_none() {
            return Err(ServiceError::msg(
                "--checkpoint-every: requires --state-dir (checkpoints need a directory to \
                 land in)",
            ));
        }
    }
    if svc.kill_after_trials == Some(0) {
        return Err(ServiceError::msg(
            "--max-trials-then-exit: must be at least 1 (the hook fires after a trial is \
             ingested, so 0 can never trigger)",
        ));
    }
    Ok(())
}

/// Outcome of [`run_campaign_service`].
#[derive(Debug)]
pub enum ServiceRun {
    /// The campaign ran (or resumed) to completion.
    Complete {
        /// The assembled artifact — byte-identical to an uninterrupted
        /// single-shot run of the same `(spec, cfg)`.
        report: CampaignReport,
        /// Cells served whole from the content-addressed store.
        store_hits: u64,
        /// Trials restored from checkpoint watermarks instead of re-run.
        resumed_trials: u64,
        /// Trials actually simulated by this invocation.
        simulated_trials: u64,
    },
    /// The kill hook fired: the process state is exactly what a hard kill
    /// at that point would leave — boundary checkpoints on disk, no
    /// artifact.
    Killed {
        /// Trials simulated before the hook fired.
        simulated_trials: u64,
    },
}

/// Run a campaign with checkpointing, resume, and the content-addressed
/// store — the engine behind `rcb run`'s service flags. With the default
/// [`ServiceConfig`] this is exactly [`run_campaign`].
///
/// Per cell, in order: a warm store entry (same content key, same trial
/// count) preloads the full accumulator — zero simulation; otherwise a
/// valid checkpoint (under `resume`) preloads the accumulator at its
/// watermark and only replicates `watermark..trials` are scheduled; fresh
/// cells run whole. However a cell's state was obtained, the artifact
/// assembled at the end is byte-identical to an uninterrupted run's.
///
/// # Errors
/// Any checkpoint/store file that is unreadable, corrupt (checksum),
/// truncated, from a different schema version, or inconsistent with the
/// requested campaign is a [`ServiceError`] naming the file — never a
/// panic, never a silent recompute-from-zero.
///
/// # Panics
/// Panics if the spec has no cells or `trials_per_cell` is 0.
pub fn run_campaign_service(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    svc: &ServiceConfig,
) -> Result<ServiceRun, ServiceError> {
    assert!(!spec.cells.is_empty(), "campaign has no cells");
    assert!(cfg.trials_per_cell > 0, "campaign needs at least one trial");
    if svc.resume && svc.state_dir.is_none() {
        return Err(ServiceError::msg("--resume requires --state-dir"));
    }
    let n = cfg.trials_per_cell;
    let total = spec.cells.len() as u64 * n;
    let store = svc.store_dir.as_deref().map(Store::new);

    let mut accs: Vec<CellAccumulator> =
        spec.cells.iter().map(|_| CellAccumulator::new()).collect();
    // Trials already ingested per cell (0 = fresh).
    let mut watermarks: Vec<u64> = vec![0; spec.cells.len()];
    let mut from_store: Vec<bool> = vec![false; spec.cells.len()];
    let mut store_hits = 0u64;
    let mut resumed_trials = 0u64;

    for (c, cell) in spec.cells.iter().enumerate() {
        let max_slots = cfg.max_slots.unwrap_or(cell.max_slots);
        // Warm store first: a hit covers the whole cell at this exact
        // trial count, so neither simulation nor checkpoints are needed.
        if let Some(store) = &store {
            if let Some(state) =
                store.lookup_cell(&spec.name, cfg.seed, c as u64, cell, max_slots, n)?
            {
                accs[c] = state;
                watermarks[c] = n;
                from_store[c] = true;
                store_hits += 1;
                continue;
            }
        }
        if svc.resume {
            let dir = svc.state_dir.as_ref().expect("resume requires state_dir");
            let path = crate::checkpoint::checkpoint_path(dir, c);
            if let Some(ckpt) = load_checkpoint(&path)? {
                let key = checkpoint_key(&spec.name, cfg.seed, c as u64, cell, max_slots);
                if ckpt.key != key {
                    return Err(ServiceError::at(
                        &path,
                        format!(
                            "checkpoint belongs to a different cell configuration \
                             (key {} vs expected {key}); move or delete the state directory",
                            ckpt.key
                        ),
                    ));
                }
                if ckpt.trials_done > n {
                    return Err(ServiceError::at(
                        &path,
                        format!(
                            "checkpoint watermark {} exceeds the requested {n} trials; \
                             trials can grow incrementally but never shrink",
                            ckpt.trials_done
                        ),
                    ));
                }
                resumed_trials += ckpt.trials_done;
                watermarks[c] = ckpt.trials_done;
                accs[c] = ckpt.state;
            }
        }
    }

    // Work units are blocks of up to `batch_width` remaining same-cell
    // trials (size 1 at the default width — the scalar scheduling,
    // unchanged). Blocks never cross a cell boundary, so a block maps to
    // one batched engine call; a resumed cell's first block starts at its
    // watermark.
    let blocks = trial_blocks(spec, cfg, &watermarks);

    // Boundary checkpoint: every `checkpoint_every` trials of the cell's
    // absolute watermark, plus cell completion. The kill hook fires
    // *after* boundary persistence, exactly like a hard kill between two
    // checkpoint writes: whatever was ingested past the last boundary is
    // simply lost.
    let mut on_ingest = |c: usize, w: u64, acc: &CellAccumulator, simulated: u64| {
        let boundary =
            w == n || (svc.checkpoint_every > 0 && w.is_multiple_of(svc.checkpoint_every));
        if boundary {
            if let Some(dir) = svc.state_dir.as_ref() {
                let cell = &spec.cells[c];
                let max_slots = cfg.max_slots.unwrap_or(cell.max_slots);
                let ckpt = CellCheckpoint {
                    key: checkpoint_key(&spec.name, cfg.seed, c as u64, cell, max_slots),
                    campaign: spec.name.clone(),
                    cell_index: c as u64,
                    seed: cfg.seed,
                    trials_done: w,
                    state: acc.clone(),
                };
                write_checkpoint(dir, &ckpt)?;
            }
        }
        if svc.kill_after_trials.is_some_and(|k| simulated >= k) {
            return Ok(IngestControl::Stop);
        }
        Ok(IngestControl::Continue)
    };
    let outcome = run_trial_blocks(
        spec,
        cfg,
        &blocks,
        &mut accs,
        &mut watermarks,
        &mut on_ingest,
    )?;
    let simulated = outcome.simulated;
    if outcome.stopped {
        return Ok(ServiceRun::Killed {
            simulated_trials: simulated,
        });
    }

    // Populate the store with every cell this run computed (cells served
    // *from* the store are already there).
    if let Some(store) = &store {
        for (c, cell) in spec.cells.iter().enumerate() {
            if from_store[c] {
                continue;
            }
            let max_slots = cfg.max_slots.unwrap_or(cell.max_slots);
            store.insert_cell(&spec.name, cfg.seed, c as u64, cell, max_slots, n, &accs[c])?;
        }
    }

    Ok(ServiceRun::Complete {
        report: assemble_report(spec, cfg, total, &accs),
        store_hits,
        resumed_trials,
        simulated_trials: simulated,
    })
}

/// Run a campaign: every cell × `trials_per_cell` seeds, aggregated
/// streamingly. See the module docs for the determinism argument. This is
/// [`run_campaign_service`] with every service feature off — no state
/// directory, no store, no kill hook — which is also why it cannot fail.
///
/// # Panics
/// Panics if the spec has no cells or `trials_per_cell` is 0.
pub fn run_campaign(spec: &CampaignSpec, cfg: &CampaignConfig) -> CampaignReport {
    match run_campaign_service(spec, cfg, &ServiceConfig::default()) {
        Ok(ServiceRun::Complete { report, .. }) => report,
        Ok(ServiceRun::Killed { .. }) => {
            unreachable!("the default service config has no kill hook")
        }
        Err(e) => unreachable!("the default service config does no file I/O: {e}"),
    }
}

/// Run a campaign sequentially while streaming a structured JSONL trace of
/// every trial into `sink` (`rcb run --trace-out`). See
/// [`crate::tracefile`] for the line schema.
///
/// Trials run in global-index order on the calling thread — trace lines
/// interleave per-trial events, so deterministic ordering requires a single
/// writer. The returned report is byte-identical to [`run_campaign`]'s for
/// the same config: tracing mounts an extra observer, and observers cannot
/// influence a run.
///
/// # Errors
/// Returns the first I/O error the sink raised; the campaign stops at the
/// trial that hit it.
///
/// # Panics
/// Panics if the spec has no cells or `trials_per_cell` is 0.
pub fn run_campaign_traced(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    sink: &mut dyn std::io::Write,
) -> std::io::Result<CampaignReport> {
    assert!(!spec.cells.is_empty(), "campaign has no cells");
    assert!(cfg.trials_per_cell > 0, "campaign needs at least one trial");
    let total = spec.cells.len() as u64 * cfg.trials_per_cell;

    let mut accs: Vec<CellAccumulator> =
        spec.cells.iter().map(|_| CellAccumulator::new()).collect();
    let mut writer = TraceWriter::new(sink);
    writer.header(&spec.name, cfg.seed, cfg.trials_per_cell, total);

    let mut progress = Progress::new(cfg.progress, total);
    for g in 0..total {
        let ts = trial_spec(spec, cfg, g);
        writer.trial_start(g, g / cfg.trials_per_cell, ts.seed);
        let (r, tel) = {
            let mut obs = TrialTraceObserver::new(&mut writer, g);
            let mut opts = trial_options(cfg);
            opts.observer = Some(&mut obs);
            run_trial_telemetry(&ts, opts)
        };
        writer.trial_end(g, &r);
        writer.check()?;
        let m = TrialMetrics::new(&r, tel);
        accs[(g / cfg.trials_per_cell) as usize].push(&m);
        progress.tick(spec, cfg, g, &m, g + 1, total);
    }
    writer.finish()?;

    Ok(assemble_report(spec, cfg, total, &accs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_harness::{AdversaryKind, ProtocolKind};

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            description: "test".into(),
            cells: vec![
                CellSpec::new(
                    ProtocolKind::Naive {
                        n: 16,
                        act_prob: 1.0,
                    },
                    AdversaryKind::Silent,
                )
                .with_max_slots(100_000),
                CellSpec::new(
                    ProtocolKind::Naive {
                        n: 16,
                        act_prob: 1.0,
                    },
                    AdversaryKind::Uniform { t: 500, frac: 0.5 },
                )
                .with_max_slots(100_000),
            ],
        }
    }

    #[test]
    fn service_flag_misuse_is_rejected_with_flag_context() {
        // --resume without --state-dir.
        let svc = ServiceConfig {
            resume: true,
            ..Default::default()
        };
        let err = validate_service_flags(&svc, None).expect_err("resume without state dir");
        assert!(
            err.to_string().starts_with("--resume:"),
            "missing flag context: {err}"
        );

        // Explicit --checkpoint-every 0.
        let svc = ServiceConfig {
            state_dir: Some(PathBuf::from("/tmp/x")),
            ..Default::default()
        };
        let err = validate_service_flags(&svc, Some(0)).expect_err("checkpoint-every 0");
        assert!(
            err.to_string().starts_with("--checkpoint-every:"),
            "missing flag context: {err}"
        );

        // Explicit --checkpoint-every without --state-dir would be silently
        // ignored; that is an error too.
        let err = validate_service_flags(&ServiceConfig::default(), Some(2))
            .expect_err("checkpoint-every without state dir");
        assert!(
            err.to_string().starts_with("--checkpoint-every:"),
            "missing flag context: {err}"
        );

        // --max-trials-then-exit 0 can never fire.
        let svc = ServiceConfig {
            kill_after_trials: Some(0),
            ..Default::default()
        };
        let err = validate_service_flags(&svc, None).expect_err("kill after 0");
        assert!(
            err.to_string().starts_with("--max-trials-then-exit:"),
            "missing flag context: {err}"
        );

        // The programmatic default (checkpoint_every 0, no explicit flag)
        // stays legal, as does a well-formed service config.
        validate_service_flags(&ServiceConfig::default(), None).expect("default config");
        let svc = ServiceConfig {
            state_dir: Some(PathBuf::from("/tmp/x")),
            resume: true,
            checkpoint_every: 2,
            kill_after_trials: Some(5),
            ..Default::default()
        };
        validate_service_flags(&svc, Some(2)).expect("well-formed config");
    }

    #[test]
    fn campaign_aggregates_every_trial() {
        let report = run_campaign(
            &tiny_spec(),
            &CampaignConfig {
                seed: 7,
                trials_per_cell: 10,
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.total_trials, 20);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.trials, 10);
            assert_eq!(cell.completed, 10, "naive epidemic always completes");
            assert_eq!(cell.safety_violations, 0);
            assert_eq!(cell.completion_slots.count, 10);
            assert!(cell.completion_slots.mean > 0.0);
            assert!(cell.completion_slots.min <= cell.completion_slots.p50);
            assert!(cell.completion_slots.p50 <= cell.completion_slots.max * 1.02);
        }
        // The jammed cell can only be slower on average.
        assert!(
            report.cells[1].completion_slots.mean >= report.cells[0].completion_slots.mean * 0.5
        );
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let spec = tiny_spec();
        let run = |threads| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed: 42,
                    trials_per_cell: 16,
                    threads,
                    ..Default::default()
                },
            )
            .to_json()
        };
        let one = run(1);
        assert_eq!(one, run(4), "1 vs 4 threads");
        assert_eq!(one, run(8), "1 vs 8 threads");
    }

    #[test]
    fn batch_width_does_not_change_the_report() {
        let spec = tiny_spec();
        let run = |batch_width| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed: 42,
                    trials_per_cell: 10,
                    threads: 2,
                    batch_width,
                    ..Default::default()
                },
            )
            .to_json()
        };
        let scalar = run(1);
        // Both an even divisor and a ragged width (10 = 5+5 = 8+2): lanes
        // replicate scalar trials exactly, so the artifact is byte-identical.
        assert_eq!(scalar, run(5), "batch 5 vs scalar");
        assert_eq!(scalar, run(8), "batch 8 vs scalar");
        assert_eq!(scalar, run(64), "batch 64 vs scalar");
    }

    #[test]
    fn batch_width_falls_back_on_unsupported_cells() {
        // Scheduled cells are outside the batch lane's scope; the engine
        // must route them through the scalar path and still produce the
        // same report.
        let spec = crash_spec();
        let run = |batch_width| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed: 9,
                    trials_per_cell: 6,
                    threads: 2,
                    batch_width,
                    ..Default::default()
                },
            )
            .to_json()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn different_seeds_differ() {
        let spec = tiny_spec();
        let run = |seed| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed,
                    trials_per_cell: 8,
                    threads: 2,
                    ..Default::default()
                },
            )
            .to_json()
        };
        assert_ne!(run(1), run(2));
    }

    fn crash_spec() -> CampaignSpec {
        use rcb_harness::{ScheduleEventKind, ScheduleSpec};
        CampaignSpec {
            name: "sched".into(),
            description: "crash two nodes at slot 0".into(),
            cells: vec![CellSpec::new(
                ProtocolKind::Naive {
                    n: 16,
                    act_prob: 1.0,
                },
                AdversaryKind::Silent,
            )
            .with_schedule(ScheduleSpec::new().at(
                0,
                ScheduleEventKind::CrashNodes {
                    nodes: vec![14, 15],
                },
            ))
            .with_max_slots(100_000)],
        }
    }

    #[test]
    fn scheduled_cell_reports_the_schedule_block() {
        let report = run_campaign(
            &crash_spec(),
            &CampaignConfig {
                seed: 3,
                trials_per_cell: 6,
                threads: 2,
                ..Default::default()
            },
        );
        let cell = &report.cells[0];
        let sched = cell.schedule.as_ref().expect("scheduled cell");
        assert_eq!(sched.events, 1);
        assert_eq!(sched.kinds, vec!["crash".to_string()]);
        assert_eq!(sched.detail, "crash@0");
        assert_eq!(sched.timeline[0].applied_trials, 6);
        assert_eq!(sched.timeline[0].applied_at_min, 0);
        assert_eq!(sched.timeline[0].applied_at_max, 0);
        assert_eq!(sched.crashed.mean, 2.0);
        assert_eq!(sched.survivors.mean, 14.0);
        assert_eq!(sched.survivors_informed.mean, 14.0);
        assert_eq!(sched.schedule_events, 6, "one boundary per trial");
        assert!(sched.crashed_node_slots > 0);
        // Survivor-relative verdict: the 14 live nodes all get informed, so
        // the cell completes even though the crashed pair never hears.
        assert_eq!(cell.completed, 6);
        assert_eq!(cell.all_informed, 0);
        assert_eq!(cell.safety_violations, 0);
        // The JSON carries the conditional block.
        assert!(report.to_json().contains("\"schedule\""));
    }

    #[test]
    fn unscheduled_cells_never_grow_a_schedule_block() {
        let report = run_campaign(
            &tiny_spec(),
            &CampaignConfig {
                seed: 5,
                trials_per_cell: 4,
                threads: 2,
                ..Default::default()
            },
        );
        assert!(report.cells.iter().all(|c| c.schedule.is_none()));
        assert!(!report.to_json().contains("\"schedule\""));
    }

    #[test]
    fn thread_count_does_not_change_a_scheduled_report() {
        let spec = crash_spec();
        let run = |threads| {
            run_campaign(
                &spec,
                &CampaignConfig {
                    seed: 11,
                    trials_per_cell: 12,
                    threads,
                    ..Default::default()
                },
            )
            .to_json()
        };
        let one = run(1);
        assert_eq!(one, run(4), "1 vs 4 threads");
    }

    #[test]
    #[should_panic(expected = "no cells")]
    fn empty_campaign_panics() {
        let spec = CampaignSpec {
            name: "x".into(),
            description: String::new(),
            cells: vec![],
        };
        run_campaign(&spec, &CampaignConfig::default());
    }
}
