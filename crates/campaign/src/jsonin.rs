//! A minimal JSON *reader* — the inverse of [`crate::json`]'s writer.
//!
//! The offline dependency set has no `serde`, so `rcb diff` parses campaign
//! and bench artifacts with this hand-rolled recursive-descent parser. It
//! reads the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) into the same [`Json`] value tree the writer
//! emits; integers that fit `i128` stay [`Json::Int`] so artifact counts
//! round-trip without a float detour.

use crate::json::Json;

/// Parse a JSON document into a [`Json`] value.
///
/// Returns a human-readable error (with byte offset) on malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in our artifacts;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let s = self.pos - 1;
                    let mut e = self.pos;
                    while e < self.bytes.len() && self.bytes[e] & 0xC0 == 0x80 {
                        e += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[s..e])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = e;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(parse("\"a\\nb\\u0041\"").unwrap(), Json::from("a\nbA"));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}, "d": []}"#).unwrap();
        let Json::Object(fields) = &v else {
            panic!("not an object")
        };
        assert_eq!(fields.len(), 3);
        assert_eq!(
            fields[0].1,
            Json::arr(vec![1u64.into(), 2.5.into(), "x".into()])
        );
        assert_eq!(fields[2].1, Json::arr(vec![]));
    }

    #[test]
    fn round_trips_the_writer() {
        let original = Json::obj(vec![
            ("schema_version", 1u64.into()),
            ("kind", "rcb-campaign-report".into()),
            ("desc", "a \"quoted\" desc\nwith newline".into()),
            ("mean", 123.456.into()),
            ("count", 10u64.into()),
            (
                "cells",
                Json::arr(vec![Json::obj(vec![("p50", 9.5.into())])]),
            ),
        ]);
        for text in [original.to_pretty(), original.to_compact()] {
            assert_eq!(parse(&text).unwrap(), original, "failed on: {text}");
        }
        // Unicode survives.
        let uni = Json::from("Ω α → ±");
        assert_eq!(parse(&uni.to_compact()).unwrap(), uni);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
