//! Work-stealing shard scheduler: one campaign across many worker
//! processes, merged byte-identically.
//!
//! The campaign service (`rcb run --state-dir`) made one *process*
//! kill-safe; this module makes the campaign a *fleet* job. N independent
//! `rcb shard work` processes coordinate over a shared state directory
//! with **no network layer** — every primitive is a filesystem operation
//! with well-defined atomicity on POSIX:
//!
//! * **Plan** (`shard-plan.json`): written once by `rcb shard plan`, it
//!   pins everything the artifact bytes depend on — campaign, seed, trial
//!   count, slot cap, batch width, checkpoint cadence — plus the
//!   per-cell identity keys ([`crate::store::checkpoint_key`], which
//!   embed the build stamp). Workers refuse a plan whose keys they cannot
//!   reproduce, so a mixed-version fleet fails loudly instead of merging
//!   subtly different streams.
//! * **Lease** (`lease-NNNN.json`): a claim on one cell. Claiming is
//!   `hard_link(tmp, lease)` — the one POSIX call that *creates* a file
//!   with full content already in place and fails with `AlreadyExists`
//!   if someone else holds it; plain tmp+rename would be last-writer-wins,
//!   not mutual exclusion. The owner re-writes the lease's `beat_ms`
//!   (heartbeat) while driving the cell and removes it at completion.
//! * **Steal**: a lease whose heartbeat is older than the plan's
//!   `stale_after_ms` is presumed dead. A thief `rename`s the lease onto a
//!   private tombstone — exactly one concurrent thief wins the rename
//!   (the loser gets `NotFound`) — deletes the tombstone, and claims
//!   fresh.
//! * **Fencing, cooperatively**: a worker verifies it still owns its lease
//!   before every checkpoint write and heartbeat, and abandons the cell
//!   the moment ownership is lost. A maximally unlucky zombie can still
//!   overwrite a thief's newer checkpoint with an older one — that is a
//!   *watermark regression*, not corruption: per-cell trial streams are
//!   positional ([`rcb_harness::cell_trial_seed`]), so any prefix of the
//!   stream is valid state, the next worker simply re-runs the tail, and
//!   [`shard_merge`] refuses anything short of `trials`.
//!
//! Determinism does the heavy lifting: because every worker computes the
//! *same* replicate stream for a cell and ingests it in the same order,
//! double-computation (two workers racing one cell) wastes time but can
//! never change bytes. The merged artifact is byte-identical to a
//! single-process `rcb run` at any worker count, kill pattern, and batch
//! width — `tests/shard_scheduler.rs` and the CI shard-smoke job enforce
//! exactly that with `cmp`.

use crate::checkpoint::{
    as_arr, as_str, as_u64, checkpoint_path, fnv1a64, get, load_checkpoint, write_atomic,
    write_checkpoint, CellCheckpoint, ServiceError, FNV_BASIS,
};
use crate::engine::{
    assemble_report, run_trial_blocks, trial_blocks, CampaignConfig, CellAccumulator, IngestControl,
};
use crate::json::Json;
use crate::jsonin;
use crate::report::CampaignReport;
use crate::scenario::CampaignSpec;
use crate::store::{checkpoint_key, hash128, store_key, Store};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Version of the shard plan / lease / planref file schemas. History:
///
/// * **1** — initial format (see `docs/SCHEMA.md`).
pub const SHARD_SCHEMA_VERSION: u64 = 1;

/// The plan file's name inside a shard state directory.
pub const PLAN_FILE: &str = "shard-plan.json";

/// Milliseconds since the Unix epoch (the shared clock every worker
/// already agrees on well enough for coarse staleness decisions).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The shard plan: everything a worker needs to drive cells of one
/// campaign, pinned at `rcb shard plan` time.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Content id of the plan (hash of the identity fields below).
    pub plan_id: String,
    /// Campaign name (a catalog scenario name for CLI workers).
    pub campaign: String,
    pub seed: u64,
    pub trials_per_cell: u64,
    pub batch_width: u64,
    /// Global slot-cap override (`--max-slots`), if any.
    pub max_slots: Option<u64>,
    /// Checkpoint cadence on the absolute per-cell watermark. Shard plans
    /// default to 1 — intermediate checkpoints are what make a stolen
    /// cell resumable mid-stream instead of restarting from zero.
    pub checkpoint_every: u64,
    /// A lease whose heartbeat is older than this is stealable.
    pub stale_after_ms: u64,
    /// Per-cell identity keys ([`checkpoint_key`]); workers and merge
    /// validate their freshly computed keys against these.
    pub cell_keys: Vec<String>,
    /// Content-addressed store completed cells are published to, if any.
    pub store_dir: Option<PathBuf>,
}

impl ShardPlan {
    /// Number of cells the plan shards.
    pub fn cells(&self) -> usize {
        self.cell_keys.len()
    }

    /// The engine config the plan pins (threads are worker-local and do
    /// not affect bytes; progress and telemetry stay off).
    pub(crate) fn campaign_config(&self, threads: usize) -> CampaignConfig {
        CampaignConfig {
            seed: self.seed,
            trials_per_cell: self.trials_per_cell,
            threads,
            max_slots: self.max_slots,
            progress: false,
            telemetry: false,
            batch_width: self.batch_width,
        }
    }

    /// Validate that `spec` (as built by this binary) is the campaign this
    /// plan shards: same name, same cell count, and every cell's identity
    /// key — which covers the schema version, build stamp, seed, slot cap,
    /// and the full parameter renderings — reproduces the planned one.
    pub fn validate_spec(&self, spec: &CampaignSpec, plan_path: &Path) -> Result<(), ServiceError> {
        if spec.name != self.campaign {
            return Err(ServiceError::at(
                plan_path,
                format!(
                    "plan shards campaign `{}`, not `{}`",
                    self.campaign, spec.name
                ),
            ));
        }
        if spec.cells.len() != self.cells() {
            return Err(ServiceError::at(
                plan_path,
                format!(
                    "plan has {} cells but campaign `{}` now has {}",
                    self.cells(),
                    self.campaign,
                    spec.cells.len()
                ),
            ));
        }
        for (c, cell) in spec.cells.iter().enumerate() {
            let max_slots = self.max_slots.unwrap_or(cell.max_slots);
            let key = checkpoint_key(&self.campaign, self.seed, c as u64, cell, max_slots);
            if key != self.cell_keys[c] {
                return Err(ServiceError::at(
                    plan_path,
                    format!(
                        "cell {c} identity mismatch: plan pinned {} but this binary computes \
                         {key}; the campaign parameters or build stamp changed since `rcb shard \
                         plan` — re-plan in a fresh state directory",
                        self.cell_keys[c]
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Path of the plan file in `state_dir`.
pub fn plan_path(state_dir: &Path) -> PathBuf {
    state_dir.join(PLAN_FILE)
}

fn plan_identity(plan: &ShardPlan) -> String {
    format!(
        "shard-plan|campaign={}|seed={}|trials={}|batch={}|max_slots={:?}|every={}|keys={}",
        plan.campaign,
        plan.seed,
        plan.trials_per_cell,
        plan.batch_width,
        plan.max_slots,
        plan.checkpoint_every,
        plan.cell_keys.join(",")
    )
}

fn plan_to_json(plan: &ShardPlan) -> Json {
    let payload = Json::obj(vec![
        ("schema_version", SHARD_SCHEMA_VERSION.into()),
        ("kind", "rcb-shard-plan".into()),
        ("plan_id", plan.plan_id.as_str().into()),
        ("campaign", plan.campaign.as_str().into()),
        ("seed", plan.seed.into()),
        ("trials_per_cell", plan.trials_per_cell.into()),
        ("batch_width", plan.batch_width.into()),
        (
            "max_slots",
            plan.max_slots.map(Json::from).unwrap_or(Json::Null),
        ),
        ("checkpoint_every", plan.checkpoint_every.into()),
        ("stale_after_ms", plan.stale_after_ms.into()),
        (
            "cell_keys",
            Json::arr(
                plan.cell_keys
                    .iter()
                    .map(|k| Json::Str(k.clone()))
                    .collect(),
            ),
        ),
        (
            "store_dir",
            plan.store_dir
                .as_ref()
                .map(|p| Json::Str(p.display().to_string()))
                .unwrap_or(Json::Null),
        ),
    ]);
    let sum = format!(
        "{:016x}",
        fnv1a64(payload.to_compact().as_bytes(), FNV_BASIS)
    );
    let Json::Object(mut fields) = payload else {
        unreachable!("plan payload is an object")
    };
    fields.push(("checksum".to_string(), Json::Str(sum)));
    Json::Object(fields)
}

fn plan_from_json(v: &Json, path: &Path) -> Result<ShardPlan, ServiceError> {
    let fail = |m: String| ServiceError::at(path, m);
    // Validate the checksum over the payload (everything but the checksum
    // field itself, in written order — integer/string leaves round-trip
    // exactly through the parser).
    let Json::Object(fields) = v else {
        return Err(fail("plan file is not a JSON object".into()));
    };
    let payload = Json::Object(
        fields
            .iter()
            .filter(|(k, _)| k != "checksum")
            .cloned()
            .collect(),
    );
    let expect = format!(
        "{:016x}",
        fnv1a64(payload.to_compact().as_bytes(), FNV_BASIS)
    );
    let got = as_str(v, "checksum").map_err(&fail)?;
    if got != expect {
        return Err(fail(
            "checksum mismatch (corrupt or hand-edited plan)".into(),
        ));
    }
    let kind = as_str(v, "kind").map_err(&fail)?;
    if kind != "rcb-shard-plan" {
        return Err(fail(format!(
            "wrong kind `{kind}`, expected `rcb-shard-plan`"
        )));
    }
    let version = as_u64(v, "schema_version").map_err(&fail)?;
    if version != SHARD_SCHEMA_VERSION {
        return Err(fail(format!(
            "unsupported shard schema version {version} (this build reads {SHARD_SCHEMA_VERSION})"
        )));
    }
    let opt_u64 = |key: &str| match get(v, key) {
        Ok(Json::Null) => Ok(None),
        _ => as_u64(v, key).map(Some),
    };
    let opt_str = |key: &str| match get(v, key) {
        Ok(Json::Null) => Ok(None),
        Ok(Json::Str(s)) => Ok(Some(s.clone())),
        _ => Err(format!("field `{key}` is neither null nor a string")),
    };
    let mut cell_keys = Vec::new();
    for (i, k) in as_arr(v, "cell_keys").map_err(&fail)?.iter().enumerate() {
        match k {
            Json::Str(s) => cell_keys.push(s.clone()),
            _ => return Err(fail(format!("cell_keys[{i}] is not a string"))),
        }
    }
    if cell_keys.is_empty() {
        return Err(fail("plan has no cells".into()));
    }
    let plan = ShardPlan {
        plan_id: as_str(v, "plan_id").map_err(&fail)?.to_string(),
        campaign: as_str(v, "campaign").map_err(&fail)?.to_string(),
        seed: as_u64(v, "seed").map_err(&fail)?,
        trials_per_cell: as_u64(v, "trials_per_cell").map_err(&fail)?,
        batch_width: as_u64(v, "batch_width").map_err(&fail)?,
        max_slots: opt_u64("max_slots").map_err(&fail)?,
        checkpoint_every: as_u64(v, "checkpoint_every").map_err(&fail)?,
        stale_after_ms: as_u64(v, "stale_after_ms").map_err(&fail)?,
        cell_keys,
        store_dir: opt_str("store_dir").map_err(&fail)?.map(PathBuf::from),
    };
    if plan.plan_id != hash128(&plan_identity(&plan)) {
        return Err(fail("plan_id does not match the plan contents".into()));
    }
    if plan.trials_per_cell == 0 || plan.checkpoint_every == 0 {
        return Err(fail(
            "plan pins zero trials or a zero checkpoint cadence".into(),
        ));
    }
    Ok(plan)
}

/// Options for [`write_plan`].
#[derive(Clone, Debug)]
pub struct PlanOptions {
    pub checkpoint_every: u64,
    pub stale_after_ms: u64,
    pub store_dir: Option<PathBuf>,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            checkpoint_every: 1,
            stale_after_ms: 10_000,
            store_dir: None,
        }
    }
}

/// Create (or idempotently re-create) the shard plan for `spec` under
/// `state_dir`. Re-planning the identical campaign is a no-op; a state
/// directory already holding a *different* plan is refused — plans pin
/// artifact identity, so silently replacing one would let two incompatible
/// fleets interleave.
///
/// With `opts.store_dir` set, a planref file
/// (`<store>/<plan_id>.planref.json`) registers the plan's store keys so
/// `rcb store gc` never collects entries an unfinished plan still needs.
///
/// # Errors
/// Flag misuse (`checkpoint_every == 0`, zero trials), an incompatible
/// existing plan, or any file I/O failure.
pub fn write_plan(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    state_dir: &Path,
    opts: &PlanOptions,
) -> Result<ShardPlan, ServiceError> {
    if cfg.trials_per_cell == 0 {
        return Err(ServiceError::msg("--trials: must be at least 1"));
    }
    if opts.checkpoint_every == 0 {
        return Err(ServiceError::msg(
            "--checkpoint-every: must be at least 1; shard plans checkpoint every trial by \
             default so stolen cells resume mid-stream",
        ));
    }
    if opts.stale_after_ms == 0 {
        return Err(ServiceError::msg(
            "--stale-after-ms: must be at least 1 (0 would make every live lease stealable)",
        ));
    }
    if spec.cells.is_empty() {
        return Err(ServiceError::msg("campaign has no cells"));
    }
    std::fs::create_dir_all(state_dir).map_err(|e| ServiceError::at(state_dir, e.to_string()))?;
    let cell_keys: Vec<String> = spec
        .cells
        .iter()
        .enumerate()
        .map(|(c, cell)| {
            let max_slots = cfg.max_slots.unwrap_or(cell.max_slots);
            checkpoint_key(&spec.name, cfg.seed, c as u64, cell, max_slots)
        })
        .collect();
    let mut plan = ShardPlan {
        plan_id: String::new(),
        campaign: spec.name.clone(),
        seed: cfg.seed,
        trials_per_cell: cfg.trials_per_cell,
        batch_width: cfg.batch_width,
        max_slots: cfg.max_slots,
        checkpoint_every: opts.checkpoint_every,
        stale_after_ms: opts.stale_after_ms,
        cell_keys,
        store_dir: opts.store_dir.clone(),
    };
    plan.plan_id = hash128(&plan_identity(&plan));

    let path = plan_path(state_dir);
    if path.exists() {
        let existing = load_plan(state_dir)?;
        if existing.plan_id != plan.plan_id {
            return Err(ServiceError::at(
                &path,
                format!(
                    "state directory already holds plan {} for `{}` (seed {}, {} trials); \
                     re-planning with different parameters needs a fresh directory",
                    existing.plan_id, existing.campaign, existing.seed, existing.trials_per_cell
                ),
            ));
        }
        // Same identity: keep the existing file (its stale_after/store
        // knobs win — they don't affect bytes).
        return Ok(existing);
    }
    write_atomic(&path, &plan_to_json(&plan).to_pretty())?;

    if let Some(store_dir) = &plan.store_dir {
        write_planref(spec, &plan, state_dir, store_dir)?;
    }
    Ok(plan)
}

/// Load and validate the shard plan under `state_dir`.
///
/// # Errors
/// A missing plan is an error with file context (`rcb shard work` without
/// a plan must fail loudly, not spin), as is any corruption.
pub fn load_plan(state_dir: &Path) -> Result<ShardPlan, ServiceError> {
    let path = plan_path(state_dir);
    let text =
        match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(ServiceError::at(
                &path,
                "no shard plan here; create one with `rcb shard plan <scenario> --state-dir <DIR>`",
            )),
            Err(e) => return Err(ServiceError::at(&path, e.to_string())),
        };
    let v = jsonin::parse(&text).map_err(|e| ServiceError::at(&path, e))?;
    plan_from_json(&v, &path)
}

// ---------------------------------------------------------------------------
// Planref: the store-side registration that makes `rcb store gc` lease-aware.
// ---------------------------------------------------------------------------

fn planref_path(store_dir: &Path, plan_id: &str) -> PathBuf {
    store_dir.join(format!("{plan_id}.planref.json"))
}

fn write_planref(
    spec: &CampaignSpec,
    plan: &ShardPlan,
    state_dir: &Path,
    store_dir: &Path,
) -> Result<(), ServiceError> {
    std::fs::create_dir_all(store_dir).map_err(|e| ServiceError::at(store_dir, e.to_string()))?;
    // Register under the *absolute* state dir so gc resolves it from any
    // working directory.
    let abs =
        std::fs::canonicalize(state_dir).map_err(|e| ServiceError::at(state_dir, e.to_string()))?;
    let keys: Vec<Json> = spec
        .cells
        .iter()
        .enumerate()
        .map(|(c, cell)| {
            let max_slots = plan.max_slots.unwrap_or(cell.max_slots);
            Json::Str(store_key(
                &plan.campaign,
                plan.seed,
                c as u64,
                cell,
                max_slots,
                plan.trials_per_cell,
            ))
        })
        .collect();
    let doc = Json::obj(vec![
        ("schema_version", SHARD_SCHEMA_VERSION.into()),
        ("kind", "rcb-shard-planref".into()),
        ("plan_id", plan.plan_id.as_str().into()),
        ("state_dir", abs.display().to_string().as_str().into()),
        ("keys", Json::arr(keys)),
    ]);
    write_atomic(&planref_path(store_dir, &plan.plan_id), &doc.to_pretty())
}

/// Store keys protected by unfinished shard plans registered in
/// `store_dir`, for `rcb store gc`. Planrefs whose plan is gone or fully
/// complete are removed as a side effect (their keys revert to the normal
/// gc policy); a planref whose state directory is unreadable protects its
/// keys conservatively.
pub(crate) fn protected_store_keys(
    store_dir: &Path,
) -> Result<std::collections::BTreeSet<String>, ServiceError> {
    let mut protected = std::collections::BTreeSet::new();
    let entries = match std::fs::read_dir(store_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(protected),
        Err(e) => return Err(ServiceError::at(store_dir, e.to_string())),
    };
    for entry in entries {
        let path = entry
            .map_err(|e| ServiceError::at(store_dir, e.to_string()))?
            .path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.ends_with(".planref.json") {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| ServiceError::at(&path, e.to_string()))?;
        let v = jsonin::parse(&text).map_err(|e| ServiceError::at(&path, e))?;
        let fail = |m: String| ServiceError::at(&path, m);
        let state_dir = PathBuf::from(as_str(&v, "state_dir").map_err(&fail)?);
        let plan_id = as_str(&v, "plan_id").map_err(&fail)?.to_string();
        let mut keys = Vec::new();
        for k in as_arr(&v, "keys").map_err(&fail)? {
            if let Json::Str(s) = k {
                keys.push(s.clone());
            }
        }
        match plan_progress(&state_dir, &plan_id) {
            // Plan gone or finished: the ref has served its purpose.
            Ok(PlanProgress::Gone) | Ok(PlanProgress::Finished) => {
                std::fs::remove_file(&path).map_err(|e| ServiceError::at(&path, e.to_string()))?;
            }
            // Unfinished (or unreadable — be conservative): protect.
            Ok(PlanProgress::Unfinished) | Err(_) => protected.extend(keys),
        }
    }
    Ok(protected)
}

enum PlanProgress {
    Gone,
    Unfinished,
    Finished,
}

fn plan_progress(state_dir: &Path, plan_id: &str) -> Result<PlanProgress, ServiceError> {
    if !plan_path(state_dir).exists() {
        return Ok(PlanProgress::Gone);
    }
    let plan = load_plan(state_dir)?;
    if plan.plan_id != plan_id {
        // The directory was re-planned; the old plan is gone.
        return Ok(PlanProgress::Gone);
    }
    for c in 0..plan.cells() {
        if cell_watermark(state_dir, &plan, c)? < plan.trials_per_cell {
            return Ok(PlanProgress::Unfinished);
        }
    }
    Ok(PlanProgress::Finished)
}

// ---------------------------------------------------------------------------
// Leases: claim, heartbeat, steal.
// ---------------------------------------------------------------------------

/// One worker's claim on one cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Lease {
    pub(crate) plan_id: String,
    pub(crate) cell: u64,
    pub(crate) owner: String,
    /// When the claim was made — together with `owner` this fences a
    /// lease against its own past: a re-claim after a steal has a new
    /// `claimed_ms`, so the old owner's verify fails even against itself.
    pub(crate) claimed_ms: u64,
    /// Last heartbeat; staleness is measured from this.
    pub(crate) beat_ms: u64,
}

/// Lease file for cell `cell` under the state directory.
pub fn lease_path(state_dir: &Path, cell: usize) -> PathBuf {
    state_dir.join(format!("lease-{cell:04}.json"))
}

fn lease_to_json(l: &Lease) -> Json {
    Json::obj(vec![
        ("schema_version", SHARD_SCHEMA_VERSION.into()),
        ("kind", "rcb-shard-lease".into()),
        ("plan_id", l.plan_id.as_str().into()),
        ("cell", l.cell.into()),
        ("owner", l.owner.as_str().into()),
        ("claimed_ms", l.claimed_ms.into()),
        ("beat_ms", l.beat_ms.into()),
    ])
}

fn lease_from_json(v: &Json) -> Result<Lease, String> {
    Ok(Lease {
        plan_id: as_str(v, "plan_id")?.to_string(),
        cell: as_u64(v, "cell")?,
        owner: as_str(v, "owner")?.to_string(),
        claimed_ms: as_u64(v, "claimed_ms")?,
        beat_ms: as_u64(v, "beat_ms")?,
    })
}

/// What a scan learned about a lease file: the parsed lease when readable,
/// and a best-effort heartbeat time either way (file mtime when the
/// content is torn or foreign — so an unparsable lease still goes stale
/// and gets stolen instead of wedging the cell forever).
struct LeaseInfo {
    lease: Option<Lease>,
    beat_ms: u64,
}

fn lease_info(path: &Path) -> Result<Option<LeaseInfo>, ServiceError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ServiceError::at(path, e.to_string())),
    };
    let lease = jsonin::parse(&text)
        .ok()
        .and_then(|v| lease_from_json(&v).ok());
    let beat_ms = match &lease {
        Some(l) => l.beat_ms,
        None => std::fs::metadata(path)
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
    };
    Ok(Some(LeaseInfo { lease, beat_ms }))
}

/// Atomically claim `lease.cell`: returns `Ok(true)` iff this call created
/// the lease file. `hard_link` is create-if-not-exists with the full
/// content already durable — concurrent claimants race on the link, and
/// exactly one wins.
fn try_claim(state_dir: &Path, lease: &Lease) -> Result<bool, ServiceError> {
    let path = lease_path(state_dir, lease.cell as usize);
    let tmp = state_dir.join(format!("lease-{:04}.claim-{}.tmp", lease.cell, lease.owner));
    {
        use std::io::Write as _;
        let io = |e: std::io::Error| ServiceError::at(&tmp, e.to_string());
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(lease_to_json(lease).to_pretty().as_bytes())
            .map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    let won = match std::fs::hard_link(&tmp, &path) {
        Ok(()) => true,
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => false,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(ServiceError::at(&path, e.to_string()));
        }
    };
    std::fs::remove_file(&tmp).map_err(|e| ServiceError::at(&tmp, e.to_string()))?;
    Ok(won)
}

/// Atomically remove another worker's (stale) lease: rename it onto a
/// thief-private tombstone, then delete the tombstone. Exactly one of any
/// number of concurrent thieves wins the rename; losers see `NotFound`.
/// Returns whether this call removed the lease.
fn try_steal(state_dir: &Path, cell: usize, thief: &str) -> Result<bool, ServiceError> {
    let path = lease_path(state_dir, cell);
    let tomb = state_dir.join(format!("lease-{cell:04}.steal-{thief}.tmp"));
    match std::fs::rename(&path, &tomb) {
        Ok(()) => {
            std::fs::remove_file(&tomb).map_err(|e| ServiceError::at(&tomb, e.to_string()))?;
            Ok(true)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(ServiceError::at(&path, e.to_string())),
    }
}

/// Does the on-disk lease still belong to `mine`? (Owner and claim time
/// must both match — see [`Lease::claimed_ms`].)
fn still_owner(state_dir: &Path, mine: &Lease) -> Result<bool, ServiceError> {
    let path = lease_path(state_dir, mine.cell as usize);
    Ok(lease_info(&path)?
        .and_then(|i| i.lease)
        .is_some_and(|l| l.owner == mine.owner && l.claimed_ms == mine.claimed_ms))
}

/// Re-write the lease with a fresh heartbeat, verifying ownership first.
/// Returns `false` (ownership lost — abandon the cell) without touching
/// the file when the lease is no longer ours.
fn heartbeat(state_dir: &Path, mine: &mut Lease) -> Result<bool, ServiceError> {
    if !still_owner(state_dir, mine)? {
        return Ok(false);
    }
    mine.beat_ms = now_ms();
    let path = lease_path(state_dir, mine.cell as usize);
    write_atomic(&path, &lease_to_json(mine).to_pretty())?;
    Ok(true)
}

// ---------------------------------------------------------------------------
// Cell state scan.
// ---------------------------------------------------------------------------

/// The scheduler's view of one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellState {
    /// Checkpoint watermark has reached the plan's trial count.
    Done,
    /// A live lease (heartbeat within `stale_after_ms`) holds the cell.
    Claimed,
    /// The lease's heartbeat is stale; any worker may steal it.
    Stealable,
    /// No lease and not done: free to claim.
    Available,
}

/// One row of `rcb shard status`.
#[derive(Clone, Debug)]
pub struct CellStatus {
    pub cell: u64,
    pub state: CellState,
    /// Trials checkpointed so far (of `plan.trials_per_cell`).
    pub watermark: u64,
    /// Lease owner, when a lease file exists.
    pub owner: Option<String>,
    /// Age of the last heartbeat, when a lease file exists.
    pub beat_age_ms: Option<u64>,
}

/// Validated checkpoint watermark of one cell (0 when no checkpoint).
fn cell_watermark(state_dir: &Path, plan: &ShardPlan, cell: usize) -> Result<u64, ServiceError> {
    let path = checkpoint_path(state_dir, cell);
    match load_checkpoint(&path)? {
        None => Ok(0),
        Some(ckpt) => {
            if ckpt.key != plan.cell_keys[cell] {
                return Err(ServiceError::at(
                    &path,
                    format!(
                        "checkpoint belongs to a different cell configuration (key {} vs the \
                         plan's {}); move or delete the state directory",
                        ckpt.key, plan.cell_keys[cell]
                    ),
                ));
            }
            if ckpt.trials_done > plan.trials_per_cell {
                return Err(ServiceError::at(
                    &path,
                    format!(
                        "checkpoint watermark {} exceeds the plan's {} trials",
                        ckpt.trials_done, plan.trials_per_cell
                    ),
                ));
            }
            Ok(ckpt.trials_done)
        }
    }
}

/// Scan every cell's scheduler state. Pure read: never claims, steals, or
/// cleans anything.
pub fn shard_status(state_dir: &Path, plan: &ShardPlan) -> Result<Vec<CellStatus>, ServiceError> {
    let now = now_ms();
    let mut out = Vec::with_capacity(plan.cells());
    for c in 0..plan.cells() {
        let watermark = cell_watermark(state_dir, plan, c)?;
        let info = lease_info(&lease_path(state_dir, c))?;
        let done = watermark >= plan.trials_per_cell;
        let state = match &info {
            _ if done => CellState::Done,
            None => CellState::Available,
            Some(i) if now.saturating_sub(i.beat_ms) > plan.stale_after_ms => CellState::Stealable,
            Some(_) => CellState::Claimed,
        };
        out.push(CellStatus {
            cell: c as u64,
            state,
            watermark,
            owner: info
                .as_ref()
                .and_then(|i| i.lease.as_ref())
                .map(|l| l.owner.clone()),
            beat_age_ms: info.as_ref().map(|i| now.saturating_sub(i.beat_ms)),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Worker.
// ---------------------------------------------------------------------------

/// Options for one [`shard_work`] invocation.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Unique-ish worker name (lease owner; embedded in temp-file names,
    /// so restricted to `[A-Za-z0-9._-]`).
    pub worker_id: String,
    /// Trial threads *within* this worker (worker-local; cannot affect
    /// bytes).
    pub threads: usize,
    /// Deterministic kill switch (`--max-trials-then-exit`): after this
    /// many trials ingested across all cells, return
    /// [`WorkerOutcome::Killed`] **leaving the current lease in place** —
    /// exactly the state a `kill -9` mid-cell leaves, so tests and CI can
    /// exercise the steal path without racing real signals.
    pub max_trials: Option<u64>,
    /// Idle re-scan interval; 0 derives one from the plan's staleness
    /// window.
    pub poll_ms: u64,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            worker_id: format!("pid{}", std::process::id()),
            threads: 0,
            max_trials: None,
            poll_ms: 0,
        }
    }
}

/// How one worker's run ended.
#[derive(Clone, Debug)]
pub enum WorkerOutcome {
    /// Every cell of the plan is done (not necessarily all by this
    /// worker).
    Finished {
        cells_completed: u64,
        cells_stolen: u64,
        trials_simulated: u64,
        store_hits: u64,
    },
    /// The deterministic kill switch fired mid-cell; the lease was left
    /// in place for others to steal once stale.
    Killed { trials_simulated: u64 },
}

/// Work one plan until every cell is done (or the kill switch fires):
/// scan, claim or steal a cell, drive it through the checkpoint machinery
/// via the campaign engine's block runner, heartbeat while driving,
/// publish to the store, release the lease, repeat.
///
/// Any number of workers may run this concurrently against the same state
/// directory; a worker that finds nothing claimable but unfinished cells
/// (live leases elsewhere) polls until it can steal or everything is done.
///
/// # Errors
/// Plan/spec mismatch, malformed worker id, or any checkpoint/store I/O
/// failure. Losing a lease to a thief is **not** an error — the cell is
/// abandoned and re-scanned.
pub fn shard_work(
    spec: &CampaignSpec,
    state_dir: &Path,
    opts: &WorkerOptions,
) -> Result<WorkerOutcome, ServiceError> {
    if opts.worker_id.is_empty()
        || !opts
            .worker_id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(ServiceError::msg(format!(
            "--worker-id: `{}` may contain only letters, digits, `-`, `_`, `.`",
            opts.worker_id
        )));
    }
    if opts.max_trials == Some(0) {
        return Err(ServiceError::msg(
            "--max-trials-then-exit: must be at least 1 (the hook fires after a trial is \
             ingested, so 0 can never trigger)",
        ));
    }
    let plan = load_plan(state_dir)?;
    plan.validate_spec(spec, &plan_path(state_dir))?;
    let n = plan.trials_per_cell;
    let store = plan.store_dir.as_deref().map(Store::new);
    let poll = Duration::from_millis(if opts.poll_ms > 0 {
        opts.poll_ms
    } else {
        (plan.stale_after_ms / 4).clamp(5, 200)
    });

    let mut trials_simulated = 0u64;
    let mut cells_completed = 0u64;
    let mut cells_stolen = 0u64;
    let mut store_hits = 0u64;

    loop {
        let mut all_done = true;
        let mut worked_this_pass = false;
        for c in 0..plan.cells() {
            let watermark = cell_watermark(state_dir, &plan, c)?;
            let lpath = lease_path(state_dir, c);
            let info = lease_info(&lpath)?;
            let stale = |i: &LeaseInfo| now_ms().saturating_sub(i.beat_ms) > plan.stale_after_ms;
            if watermark >= n {
                // Done. A leftover lease (owner died after the final
                // checkpoint but before releasing) is garbage once stale.
                if info.as_ref().is_some_and(&stale) {
                    let _ = try_steal(state_dir, c, &opts.worker_id)?;
                }
                continue;
            }
            all_done = false;
            match info {
                Some(i) if !stale(&i) => continue, // live claim elsewhere
                Some(_) => {
                    if !try_steal(state_dir, c, &opts.worker_id)? {
                        continue; // another thief beat us to it
                    }
                    cells_stolen += 1;
                }
                None => {}
            }
            let mut lease = Lease {
                plan_id: plan.plan_id.clone(),
                cell: c as u64,
                owner: opts.worker_id.clone(),
                claimed_ms: now_ms(),
                beat_ms: now_ms(),
            };
            if !try_claim(state_dir, &lease)? {
                continue; // lost the claim race
            }
            worked_this_pass = true;
            match drive_cell(
                spec,
                &plan,
                state_dir,
                store.as_ref(),
                c,
                &mut lease,
                opts,
                trials_simulated,
            )? {
                Drive::Completed { simulated, warm } => {
                    trials_simulated += simulated;
                    cells_completed += 1;
                    store_hits += warm as u64;
                }
                Drive::Killed { simulated } => {
                    return Ok(WorkerOutcome::Killed {
                        trials_simulated: trials_simulated + simulated,
                    });
                }
                Drive::Abandoned => {} // lease lost; partial state discarded
            }
        }
        if all_done {
            return Ok(WorkerOutcome::Finished {
                cells_completed,
                cells_stolen,
                trials_simulated,
                store_hits,
            });
        }
        if !worked_this_pass {
            std::thread::sleep(poll);
        }
    }
}

enum Drive {
    Completed { simulated: u64, warm: bool },
    Killed { simulated: u64 },
    Abandoned,
}

/// Drive one claimed cell from its checkpoint watermark to `n`,
/// checkpointing at the plan's cadence with ownership verified before
/// every write, heartbeating on a `stale_after/4` cadence, honouring the
/// kill switch, and publishing the completed cell to the store. Releases
/// the lease on completion; leaves it on kill; the lease is already gone
/// on abandon.
#[allow(clippy::too_many_arguments)]
fn drive_cell(
    spec: &CampaignSpec,
    plan: &ShardPlan,
    state_dir: &Path,
    store: Option<&Store>,
    c: usize,
    lease: &mut Lease,
    opts: &WorkerOptions,
    already_simulated: u64,
) -> Result<Drive, ServiceError> {
    let n = plan.trials_per_cell;
    let cfg = plan.campaign_config(opts.threads);
    let cell = &spec.cells[c];
    let max_slots = plan.max_slots.unwrap_or(cell.max_slots);

    // Resume point: the validated checkpoint, if any.
    let path = checkpoint_path(state_dir, c);
    let mut acc = CellAccumulator::new();
    let mut watermark = 0u64;
    if let Some(ckpt) = load_checkpoint(&path)? {
        // cell_watermark validated key and range during the scan, but the
        // file may have changed since; re-validate on the copy we use.
        if ckpt.key != plan.cell_keys[c] {
            return Err(ServiceError::at(
                &path,
                format!(
                    "checkpoint belongs to a different cell configuration (key {} vs the plan's \
                     {})",
                    ckpt.key, plan.cell_keys[c]
                ),
            ));
        }
        watermark = ckpt.trials_done.min(n);
        acc = ckpt.state;
    }

    // Warm store hit: the whole cell already exists content-addressed;
    // materialize it as a final checkpoint and skip simulation entirely.
    if watermark < n {
        if let Some(store) = store {
            if let Some(state) =
                store.lookup_cell(&plan.campaign, plan.seed, c as u64, cell, max_slots, n)?
            {
                let ckpt = CellCheckpoint {
                    key: plan.cell_keys[c].clone(),
                    campaign: plan.campaign.clone(),
                    cell_index: c as u64,
                    seed: plan.seed,
                    trials_done: n,
                    state,
                };
                if still_owner(state_dir, lease)? {
                    write_checkpoint(state_dir, &ckpt)?;
                    release_lease(state_dir, lease)?;
                    return Ok(Drive::Completed {
                        simulated: 0,
                        warm: true,
                    });
                }
                return Ok(Drive::Abandoned);
            }
        }
    }

    if watermark >= n {
        release_lease(state_dir, lease)?;
        return Ok(Drive::Completed {
            simulated: 0,
            warm: false,
        });
    }

    // Only this cell gets blocks: every other cell's watermark is pinned
    // to n so trial_blocks schedules nothing for it.
    let mut accs: Vec<CellAccumulator> = (0..spec.cells.len())
        .map(|_| CellAccumulator::new())
        .collect();
    let mut watermarks: Vec<u64> = vec![n; spec.cells.len()];
    accs[c] = acc;
    watermarks[c] = watermark;
    let blocks = trial_blocks(spec, &cfg, &watermarks);

    let beat_every = Duration::from_millis((plan.stale_after_ms / 4).max(1));
    let mut last_beat = Instant::now();
    let mut abandoned = false;
    let mut killed = false;
    let mut on_ingest = |cell_idx: usize, w: u64, acc: &CellAccumulator, simulated: u64| {
        debug_assert_eq!(cell_idx, c, "worker drives exactly one cell");
        let boundary = w == n || w.is_multiple_of(plan.checkpoint_every);
        if boundary {
            // Cooperative fencing: never write a checkpoint for a cell we
            // no longer own.
            if !still_owner(state_dir, lease)? {
                abandoned = true;
                return Ok(IngestControl::Stop);
            }
            let ckpt = CellCheckpoint {
                key: plan.cell_keys[c].clone(),
                campaign: plan.campaign.clone(),
                cell_index: c as u64,
                seed: plan.seed,
                trials_done: w,
                state: acc.clone(),
            };
            write_checkpoint(state_dir, &ckpt)?;
        }
        if last_beat.elapsed() >= beat_every {
            if !heartbeat(state_dir, lease)? {
                abandoned = true;
                return Ok(IngestControl::Stop);
            }
            last_beat = Instant::now();
        }
        if opts
            .max_trials
            .is_some_and(|k| already_simulated + simulated >= k)
        {
            killed = true;
            return Ok(IngestControl::Stop);
        }
        Ok(IngestControl::Continue)
    };
    let outcome = run_trial_blocks(
        spec,
        &cfg,
        &blocks,
        &mut accs,
        &mut watermarks,
        &mut on_ingest,
    )?;

    if killed {
        // Leave the lease in place: this models a hard death, and the
        // staleness clock is what hands the cell to a thief.
        return Ok(Drive::Killed {
            simulated: outcome.simulated,
        });
    }
    if abandoned {
        return Ok(Drive::Abandoned);
    }

    // Completed: publish to the store, then release.
    if let Some(store) = store {
        store.insert_cell(
            &plan.campaign,
            plan.seed,
            c as u64,
            cell,
            max_slots,
            n,
            &accs[c],
        )?;
    }
    release_lease(state_dir, lease)?;
    Ok(Drive::Completed {
        simulated: outcome.simulated,
        warm: false,
    })
}

/// Remove our own lease. If a thief took it in the meantime (only possible
/// after a staleness lapse), leave theirs alone.
fn release_lease(state_dir: &Path, mine: &Lease) -> Result<(), ServiceError> {
    if !still_owner(state_dir, mine)? {
        return Ok(());
    }
    let path = lease_path(state_dir, mine.cell as usize);
    match std::fs::remove_file(&path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(ServiceError::at(&path, e.to_string())),
    }
}

// ---------------------------------------------------------------------------
// Merge.
// ---------------------------------------------------------------------------

/// Result of [`shard_merge`].
#[derive(Debug)]
pub struct MergeOutcome {
    /// The assembled artifact — byte-identical to a single-process
    /// `rcb run` of the same campaign/seed/trials.
    pub report: CampaignReport,
    /// Leftover lease/tmp files swept from the state directory.
    pub swept_files: u64,
}

/// Fold the per-cell checkpoint states into the final campaign artifact.
/// Refuses unless **every** cell's checkpoint watermark has reached the
/// plan's trial count — a merge must never bake in a partial cell. On
/// success, completed cells are published to the plan's store (if any),
/// the planref is retired, and leftover lease/tombstone files are swept.
///
/// # Errors
/// Missing plan, plan/spec mismatch, any incomplete cell (named, with its
/// watermark), or checkpoint/store I/O failure.
pub fn shard_merge(spec: &CampaignSpec, state_dir: &Path) -> Result<MergeOutcome, ServiceError> {
    let plan = load_plan(state_dir)?;
    plan.validate_spec(spec, &plan_path(state_dir))?;
    let n = plan.trials_per_cell;

    let mut accs: Vec<CellAccumulator> = Vec::with_capacity(plan.cells());
    for c in 0..plan.cells() {
        let path = checkpoint_path(state_dir, c);
        let Some(ckpt) = load_checkpoint(&path)? else {
            return Err(ServiceError::at(
                &path,
                format!("cell {c} has no checkpoint yet (0/{n} trials); run `rcb shard work`"),
            ));
        };
        if ckpt.key != plan.cell_keys[c] {
            return Err(ServiceError::at(
                &path,
                format!(
                    "checkpoint belongs to a different cell configuration (key {} vs the plan's \
                     {})",
                    ckpt.key, plan.cell_keys[c]
                ),
            ));
        }
        if ckpt.trials_done != n {
            return Err(ServiceError::at(
                &path,
                format!(
                    "cell {c} is incomplete ({}/{n} trials); a merge never bakes in a partial \
                     cell — run `rcb shard work` until `rcb shard status` shows every cell done",
                    ckpt.trials_done
                ),
            ));
        }
        accs.push(ckpt.state);
    }

    let cfg = plan.campaign_config(0);
    let total = plan.cells() as u64 * n;
    let report = assemble_report(spec, &cfg, total, &accs);

    // Publish every cell (idempotent: re-inserting a key rewrites the same
    // bytes) and retire the planref — the plan is finished, so its keys
    // revert to the normal gc policy.
    if let Some(store_dir) = &plan.store_dir {
        let store = Store::new(store_dir.clone());
        for (c, cell) in spec.cells.iter().enumerate() {
            let max_slots = plan.max_slots.unwrap_or(cell.max_slots);
            store.insert_cell(
                &plan.campaign,
                plan.seed,
                c as u64,
                cell,
                max_slots,
                n,
                &accs[c],
            )?;
        }
        let refpath = planref_path(store_dir, &plan.plan_id);
        match std::fs::remove_file(&refpath) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(ServiceError::at(&refpath, e.to_string())),
        }
    }

    // Sweep scheduler residue: leases of dead-after-completion workers and
    // any orphaned claim/steal tombstones. Checkpoints and the plan stay —
    // they are reusable state, not residue.
    let mut swept = 0u64;
    let entries =
        std::fs::read_dir(state_dir).map_err(|e| ServiceError::at(state_dir, e.to_string()))?;
    for entry in entries {
        let path = entry
            .map_err(|e| ServiceError::at(state_dir, e.to_string()))?
            .path();
        let Some(name) = path.file_name().and_then(|s| s.to_str()) else {
            continue;
        };
        let is_lease = name.starts_with("lease-") && name.ends_with(".json");
        let is_tmp = name.ends_with(".tmp");
        if is_lease || is_tmp {
            std::fs::remove_file(&path).map_err(|e| ServiceError::at(&path, e.to_string()))?;
            swept += 1;
        }
    }
    Ok(MergeOutcome {
        report,
        swept_files: swept,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CellSpec;
    use rcb_harness::{AdversaryKind, ProtocolKind};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rcb-shard-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "shard-unit".into(),
            description: "shard unit fixture".into(),
            cells: vec![
                CellSpec::new(
                    ProtocolKind::Naive {
                        n: 8,
                        act_prob: 1.0,
                    },
                    AdversaryKind::Silent,
                )
                .with_max_slots(20_000),
                CellSpec::new(
                    ProtocolKind::Naive {
                        n: 8,
                        act_prob: 0.5,
                    },
                    AdversaryKind::Silent,
                )
                .with_max_slots(20_000),
            ],
        }
    }

    fn cfg(trials: u64) -> CampaignConfig {
        CampaignConfig {
            seed: 11,
            trials_per_cell: trials,
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn plan_round_trips_and_rejects_tampering() {
        let dir = scratch("plan");
        let spec = tiny_spec();
        let plan = write_plan(&spec, &cfg(3), &dir, &PlanOptions::default()).expect("plan");
        assert_eq!(plan.cells(), 2);
        assert_eq!(plan.plan_id.len(), 32);
        let back = load_plan(&dir).expect("load");
        assert_eq!(back.plan_id, plan.plan_id);
        assert_eq!(back.cell_keys, plan.cell_keys);
        back.validate_spec(&spec, &plan_path(&dir))
            .expect("spec matches");

        // Idempotent re-plan; different parameters are refused.
        write_plan(&spec, &cfg(3), &dir, &PlanOptions::default()).expect("same plan ok");
        let err = write_plan(&spec, &cfg(4), &dir, &PlanOptions::default())
            .expect_err("different plan refused");
        assert!(err.to_string().contains("already holds plan"), "{err}");

        // A flipped byte inside the file fails the checksum.
        let path = plan_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"seed\": 11", "\"seed\": 12")).unwrap();
        let err = load_plan(&dir).expect_err("tampered plan");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_plan_fails_with_file_context() {
        let dir = scratch("noplan");
        let err = load_plan(&dir).expect_err("no plan");
        let msg = err.to_string();
        assert!(
            msg.starts_with(&plan_path(&dir).display().to_string()),
            "missing file context: {msg}"
        );
        assert!(msg.contains("no shard plan"), "{msg}");
        // shard_work surfaces the same error, never a panic or a spin.
        let err = shard_work(&tiny_spec(), &dir, &WorkerOptions::default())
            .expect_err("work without plan");
        assert!(err.to_string().contains("no shard plan"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The claim primitive is mutual exclusion, not last-writer-wins: of N
    /// concurrent claimants exactly one wins, and the lease content is the
    /// winner's.
    #[test]
    fn double_claim_is_impossible() {
        let dir = scratch("claim");
        let winners: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let dir = &dir;
                    scope.spawn(move || {
                        let lease = Lease {
                            plan_id: "p".into(),
                            cell: 0,
                            owner: format!("w{i}"),
                            claimed_ms: 1,
                            beat_ms: 1,
                        };
                        try_claim(dir, &lease).expect("claim io")
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .filter_map(|(i, h)| h.join().expect("no panic").then(|| format!("w{i}")))
                .collect()
        });
        assert_eq!(winners.len(), 1, "exactly one claimant wins: {winners:?}");
        let info = lease_info(&lease_path(&dir, 0))
            .expect("read")
            .expect("exists");
        assert_eq!(info.lease.expect("parses").owner, winners[0]);
        // No claim tmp files left behind by winner or losers.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(strays.is_empty(), "stray tmp files: {strays:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A stale lease is stolen by exactly one of N concurrent thieves; a
    /// fresh lease is never considered stealable by the status scan.
    #[test]
    fn stale_lease_steal_is_single_winner() {
        let dir = scratch("steal");
        let spec = tiny_spec();
        let plan = write_plan(
            &spec,
            &cfg(3),
            &dir,
            &PlanOptions {
                stale_after_ms: 50,
                ..Default::default()
            },
        )
        .expect("plan");

        // A fresh lease reads as Claimed.
        let lease = Lease {
            plan_id: plan.plan_id.clone(),
            cell: 0,
            owner: "alive".into(),
            claimed_ms: now_ms(),
            beat_ms: now_ms(),
        };
        assert!(try_claim(&dir, &lease).expect("claim"));
        let status = shard_status(&dir, &plan).expect("status");
        assert_eq!(status[0].state, CellState::Claimed);
        assert_eq!(status[0].owner.as_deref(), Some("alive"));
        assert_eq!(status[1].state, CellState::Available);

        // Backdate the heartbeat past the staleness window.
        let stale = Lease {
            beat_ms: now_ms().saturating_sub(10_000),
            ..lease
        };
        write_atomic(&lease_path(&dir, 0), &lease_to_json(&stale).to_pretty()).expect("backdate");
        let status = shard_status(&dir, &plan).expect("status");
        assert_eq!(status[0].state, CellState::Stealable);

        let winners: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    let dir = &dir;
                    scope.spawn(move || try_steal(dir, 0, &format!("thief{i}")).expect("steal io"))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic") as usize)
                .sum()
        });
        assert_eq!(winners, 1, "exactly one thief removes the lease");
        assert!(!lease_path(&dir, 0).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Ownership fencing: a heartbeat after a steal-and-reclaim fails even
    /// for the same owner name, because the claim time differs.
    #[test]
    fn heartbeat_fails_after_losing_the_lease() {
        let dir = scratch("fence");
        let mut mine = Lease {
            plan_id: "p".into(),
            cell: 3,
            owner: "w1".into(),
            claimed_ms: now_ms(),
            beat_ms: now_ms(),
        };
        assert!(try_claim(&dir, &mine).expect("claim"));
        assert!(heartbeat(&dir, &mut mine).expect("beat while owned"));

        // A thief replaces the lease — same owner name, new claim epoch.
        assert!(try_steal(&dir, 3, "thief").expect("steal"));
        let theirs = Lease {
            claimed_ms: mine.claimed_ms + 1,
            ..mine.clone()
        };
        assert!(try_claim(&dir, &theirs).expect("reclaim"));
        assert!(
            !heartbeat(&dir, &mut mine).expect("beat check"),
            "zombie heartbeat must fail"
        );
        // And the thief's lease was not touched by the failed beat.
        let on_disk = lease_info(&lease_path(&dir, 3))
            .expect("read")
            .expect("exists")
            .lease
            .expect("parses");
        assert_eq!(on_disk.claimed_ms, theirs.claimed_ms);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An unparsable (torn) lease still goes stale via its file mtime and
    /// is stolen rather than wedging the cell forever.
    #[test]
    fn torn_lease_falls_back_to_mtime_staleness() {
        let dir = scratch("torn");
        let path = lease_path(&dir, 1);
        std::fs::write(&path, "{ not json").expect("torn lease");
        let info = lease_info(&path).expect("read").expect("exists");
        assert!(info.lease.is_none());
        assert!(info.beat_ms > 0, "mtime fallback populated");
        assert!(try_steal(&dir, 1, "thief").expect("steal"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// One worker, library-level: plan → work → merge equals run_campaign.
    #[test]
    fn single_worker_merge_matches_run_campaign() {
        let dir = scratch("single");
        let spec = tiny_spec();
        let cfg = cfg(3);
        let reference = crate::engine::run_campaign(&spec, &cfg).to_json();
        write_plan(&spec, &cfg, &dir, &PlanOptions::default()).expect("plan");

        // Merging before any work names the laggard cell.
        let err = shard_merge(&spec, &dir).expect_err("premature merge");
        assert!(err.to_string().contains("no checkpoint yet"), "{err}");

        let outcome = shard_work(
            &spec,
            &dir,
            &WorkerOptions {
                worker_id: "solo".into(),
                threads: 1,
                ..Default::default()
            },
        )
        .expect("work");
        let WorkerOutcome::Finished {
            cells_completed,
            trials_simulated,
            ..
        } = outcome
        else {
            panic!("worker was killed: {outcome:?}")
        };
        assert_eq!(cells_completed, 2);
        assert_eq!(trials_simulated, 6);

        let merged = shard_merge(&spec, &dir).expect("merge");
        assert_eq!(merged.report.to_json(), reference);
        // No scheduler residue survives the merge.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            assert!(
                !name.starts_with("lease-") && !name.ends_with(".tmp"),
                "scheduler residue after merge: {name}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
