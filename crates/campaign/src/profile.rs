//! `rcb profile` — answer "why is this cell slow?" for one scenario cell.
//!
//! Runs a few trials of a single cell with per-phase wall-clock timing
//! enabled ([`EngineConfig::time_phases`]), merges the engine telemetry,
//! and renders a breakdown: where the wall time went (setup / slot loop /
//! fast-forward / finalize), how many slots were executed vs. skipped, how
//! much randomness each stream class consumed, and the idle-span length
//! histogram that explains the skip ratio.
//!
//! Trial seeds reuse the bench derivation
//! ([`bench_trial_seed`](crate::bench)), so `rcb profile <scenario> <cell>`
//! at the default seed profiles exactly the trials a `BENCH_*.json`
//! artifact measured — the counters in the profile match the artifact's
//! `perf` block for the same trial count.

use crate::bench::bench_trial_seed;
use crate::report::CellPerf;
use crate::scenario::Scenario;
use rcb_harness::{run_trial_telemetry, TrialOptions, TrialSpec};
use rcb_sim::{EngineConfig, EngineTelemetry, SPAN_HIST_BUCKETS};
use rcb_stats::Table;
use std::time::Instant;

/// How a profile run executes. Mirrors the bench defaults so profiles line
/// up with `BENCH_*.json` cells out of the box.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Master seed (bench-compatible derivation per trial).
    pub seed: u64,
    /// Trials to run and merge (sequential, single-threaded).
    pub trials: u64,
    /// Override the cell's engine slot cap (None = the cell's own).
    pub max_slots: Option<u64>,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            trials: 3,
            max_slots: None,
        }
    }
}

/// Profile one cell of a scenario; returns the rendered report.
///
/// # Errors
/// Returns a message if `cell` is out of range for the scenario or
/// `trials` is 0.
pub fn profile_cell(
    scenario: &Scenario,
    cell_index: usize,
    cfg: &ProfileConfig,
) -> Result<String, String> {
    if cfg.trials == 0 {
        return Err("profile needs at least one trial".into());
    }
    let spec = (scenario.build)();
    let Some(cell) = spec.cells.get(cell_index) else {
        return Err(format!(
            "scenario `{}` has cells 0..={}, got {cell_index} (see `rcb describe {}`)",
            spec.name,
            spec.cells.len() - 1,
            spec.name,
        ));
    };

    let engine = EngineConfig {
        time_phases: true,
        ..EngineConfig::default()
    };
    let started = Instant::now();
    let mut tel = EngineTelemetry::default();
    let mut completed = 0u64;
    for trial in 0..cfg.trials {
        let seed = bench_trial_seed(cfg.seed, &spec.name, cell_index, trial);
        let ts = TrialSpec::new(cell.protocol.clone(), cell.adversary.clone(), seed)
            .with_topology(cell.topology.clone())
            .with_schedule(cell.schedule.clone())
            .with_max_slots(cfg.max_slots.unwrap_or(cell.max_slots));
        let (r, t) = run_trial_telemetry(&ts, TrialOptions::with_engine(engine));
        completed += r.completed as u64;
        tel.merge(&t);
    }
    let wall_s = started.elapsed().as_secs_f64();
    let perf = CellPerf::from_telemetry(&tel, wall_s);

    Ok(render(&spec.name, cell_index, cell, cfg, completed, &perf))
}

fn pct(part: f64, whole: f64) -> String {
    if whole <= 0.0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * part / whole)
    }
}

fn render(
    scenario: &str,
    cell_index: usize,
    cell: &crate::scenario::CellSpec,
    cfg: &ProfileConfig,
    completed: u64,
    perf: &CellPerf,
) -> String {
    let phase_total = perf.setup_s + perf.slot_loop_s + perf.fast_forward_s + perf.finalize_s;
    let mut phases = Table::new(&["phase", "seconds", "share"]);
    for (name, secs) in [
        ("setup", perf.setup_s),
        ("slot loop", perf.slot_loop_s),
        ("fast-forward", perf.fast_forward_s),
        ("finalize", perf.finalize_s),
    ] {
        phases.row(&[
            name.to_string(),
            format!("{secs:.4}"),
            pct(secs, phase_total),
        ]);
    }
    phases.row(&[
        "total (in-engine)".to_string(),
        format!("{phase_total:.4}"),
        pct(phase_total, perf.wall_s),
    ]);

    let mut counters = Table::new(&["counter", "value"]);
    let executed_rate = if perf.slot_loop_s > 0.0 {
        perf.slots_stepped as f64 / perf.slot_loop_s
    } else {
        0.0
    };
    for (name, value) in [
        ("trials", cfg.trials.to_string()),
        ("completed", completed.to_string()),
        ("slots covered", perf.slots_total.to_string()),
        ("slots executed", perf.slots_stepped.to_string()),
        (
            "slots fast-forwarded",
            perf.slots_fast_forwarded.to_string(),
        ),
        (
            "ff skip ratio",
            format!("{:.2}%", 100.0 * perf.ff_skip_ratio),
        ),
        ("ff spans", perf.spans.to_string()),
        ("mean span len", format!("{:.1}", perf.mean_span_len)),
        ("ff gated segments", perf.ff_gated_segments.to_string()),
        ("rng draws (engine)", perf.rng_engine_draws.to_string()),
        ("rng draws (nodes)", perf.rng_node_draws.to_string()),
        ("jam spent (stepped)", perf.jam_spent_stepped.to_string()),
        ("jam spent (spans)", perf.jam_spent_spans.to_string()),
        ("observer events", perf.observer_events.to_string()),
        (
            "covered slots/s",
            format!("{:.2}M", perf.slots_per_sec * 1e-6),
        ),
        ("executed slots/s", format!("{:.2}M", executed_rate * 1e-6)),
    ] {
        counters.row(&[name.to_string(), value]);
    }

    let mut out = format!(
        "# profile `{scenario}` cell {cell_index}: {}/{} on {} (n={}, T={}) — seed {}, {} trials, {:.3}s wall\n\n\
         ## where the time went\n\n{}\n\
         ## counters\n\n{}",
        cell.protocol.name(),
        cell.adversary.name(),
        cell.topology.name(),
        cell.protocol.n(),
        cell.adversary.budget(),
        cfg.seed,
        cfg.trials,
        perf.wall_s,
        phases.markdown(),
        counters.markdown(),
    );

    if !perf.span_len_hist.is_empty() {
        let mut hist = Table::new(&["span length", "spans"]);
        for b in &perf.span_len_hist {
            let lo = 1u64 << b.log2;
            let label = if b.log2 as usize == SPAN_HIST_BUCKETS - 1 {
                format!("≥ {lo}")
            } else if b.log2 == 0 {
                "1".to_string()
            } else {
                format!("{lo}–{}", (lo << 1) - 1)
            };
            hist.row(&[label, b.count.to_string()]);
        }
        out.push_str(&format!(
            "\n## idle-span length histogram\n\n{}",
            hist.markdown()
        ));
    }

    out.push_str(&format!(
        "\nThe fast-forward path skipped {:.2}% of covered slots in {} spans \
         (mean length {:.1}); the slot loop executed {} slots in {:.4}s \
         ({:.2}M executed slots/s).\n",
        100.0 * perf.ff_skip_ratio,
        perf.spans,
        perf.mean_span_len,
        perf.slots_stepped,
        perf.slot_loop_s,
        executed_rate * 1e-6,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::find;

    #[test]
    fn profile_reports_phase_and_counter_breakdown() {
        let scenario = find("epidemic-race").expect("catalog entry");
        let cfg = ProfileConfig {
            trials: 1,
            max_slots: Some(30_000),
            ..ProfileConfig::default()
        };
        let text = profile_cell(&scenario, 0, &cfg).unwrap();
        assert!(text.contains("## where the time went"));
        assert!(text.contains("slot loop"));
        assert!(text.contains("ff skip ratio"));
        assert!(text.contains("rng draws (engine)"));
        assert!(text.contains("The fast-forward path skipped"));
    }

    #[test]
    fn out_of_range_cell_is_a_helpful_error() {
        let scenario = find("epidemic-race").expect("catalog entry");
        let err = profile_cell(&scenario, 999, &ProfileConfig::default()).unwrap_err();
        assert!(err.contains("0..="), "{err}");
        assert!(err.contains("999"));
    }

    /// Same seed derivation as bench: the deterministic counters of a
    /// profile must match a bench run of the same cell and trial count.
    #[test]
    fn profile_counters_match_bench_perf_block() {
        use crate::bench::{run_bench, BenchConfig};
        let scenario = find("epidemic-race").expect("catalog entry");
        let bench = run_bench(
            std::slice::from_ref(&scenario),
            &BenchConfig {
                trials_per_cell: 1,
                max_slots: Some(30_000),
                reference: false,
                ..BenchConfig::default()
            },
        );
        let cell = &bench.scenarios[0].cells[2];
        let text = profile_cell(
            &scenario,
            2,
            &ProfileConfig {
                trials: 1,
                max_slots: Some(30_000),
                ..ProfileConfig::default()
            },
        )
        .unwrap();
        let grab = |label: &str| -> String {
            text.lines()
                .find(|l| l.starts_with(&format!("| {label} ")))
                .unwrap_or_else(|| panic!("row `{label}` missing:\n{text}"))
                .split('|')
                .nth(2)
                .expect("two-column row")
                .trim()
                .to_string()
        };
        assert_eq!(grab("slots covered"), cell.perf.slots_total.to_string());
        assert_eq!(
            grab("slots fast-forwarded"),
            cell.perf.slots_fast_forwarded.to_string()
        );
        assert_eq!(
            grab("rng draws (engine)"),
            cell.perf.rng_engine_draws.to_string()
        );
    }
}
