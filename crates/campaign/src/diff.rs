//! `rcb diff` — compare two schema-versioned artifacts.
//!
//! The regression gate for perf trajectories (ROADMAP item): load two
//! campaign or bench artifacts, walk their JSON trees in parallel, and
//! report every numeric leaf whose relative delta exceeds a threshold.
//! Artifacts of different `kind` or `schema_version` are an error, not a
//! diff.
//!
//! A leaf present in only **one** artifact (a dropped cell, a renamed key,
//! a shrunken scenario list) is *not* skipped: it is reported as a
//! [`DiffRow`] with an **infinite** relative delta, so any `--threshold`
//! gate fails. A report that silently lost cells can therefore never pass
//! the CI bench gate.
//!
//! Host-dependent leaves (`wall_s`, `slots_per_sec`, `speedup`, …) can be
//! excluded by key with `ignore`, which is how CI gates deterministic slot
//! totals tightly while letting wall-clock noise through.

use crate::json::Json;

/// Keys `rcb diff` ignores by default: the build stamp and every
/// wall-clock-derived leaf (schema v3 `perf` timing, bench cell timing).
/// These are host- and run-dependent by construction, so comparing them
/// across artifacts is noise; the deterministic counters around them stay
/// tightly gated. Pass `--no-default-ignore` to compare everything.
pub const DEFAULT_IGNORES: &[&str] = &[
    "code_version",
    "wall_s",
    "ref_wall_s",
    "slots_per_sec",
    "ref_slots_per_sec",
    "speedup",
    "repeats",
    "ref_repeats",
    "batch_repeats",
    "batch_wall_s",
    "batch_slots_per_sec",
    "batch_speedup",
    "batch_vs_reference",
    "setup_s",
    "slot_loop_s",
    "fast_forward_s",
    "finalize_s",
];

/// How a reported leaf relates the two artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// Present in both with different numeric values.
    Changed,
    /// Present only in the first artifact (`b` is NaN).
    MissingInB,
    /// Present only in the second artifact (`a` is NaN).
    ExtraInB,
}

/// One difference between the two artifacts.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Dotted path of the leaf, e.g. `cells[3].metrics.completion_slots.mean`.
    pub path: String,
    /// Leaf value in the first artifact; NaN when absent there (or when a
    /// one-sided leaf is non-numeric).
    pub a: f64,
    /// Leaf value in the second artifact; NaN when absent there.
    pub b: f64,
    /// `(b − a) / |a|`; infinite when `a == 0 ≠ b` and for one-sided
    /// leaves, so missing/extra leaves always violate any threshold.
    pub rel: f64,
    pub kind: DiffKind,
}

/// Outcome of a structural diff.
#[derive(Clone, Debug, Default)]
pub struct DiffOutput {
    /// Leaves that differ — changed values plus leaves present in only one
    /// artifact — in document order.
    pub rows: Vec<DiffRow>,
    /// Number of numeric leaves compared.
    pub compared: usize,
    /// Leaves skipped via the ignore list.
    pub ignored: usize,
}

impl DiffOutput {
    /// Largest absolute relative delta across all differing leaves.
    pub fn max_rel(&self) -> f64 {
        self.rows.iter().map(|r| r.rel.abs()).fold(0.0, f64::max)
    }

    /// Rows whose |relative delta| exceeds `threshold`.
    pub fn violations(&self, threshold: f64) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.rel.abs() > threshold)
            .collect()
    }
}

/// Structurally compare two parsed artifacts.
///
/// `ignore` lists object keys whose subtrees are skipped entirely. Leaves
/// present in only one artifact are reported as rows with infinite
/// relative delta (see the module docs). Returns an error only when the
/// documents are fundamentally incomparable: different `kind`/
/// `schema_version`, a value-shape conflict at the same path (object vs
/// array vs leaf), or a non-numeric leaf mismatch.
pub fn diff(a: &Json, b: &Json, ignore: &[String]) -> Result<DiffOutput, String> {
    // Kind and schema version must agree before any cell comparison makes
    // sense — unless the caller explicitly ignores one (e.g.
    // `--ignore schema_version` for an acceptance diff across a bump).
    for key in ["kind", "schema_version"] {
        if ignore.iter().any(|i| i == key) {
            continue;
        }
        let (va, vb) = (lookup(a, key), lookup(b, key));
        if va != vb {
            return Err(format!(
                "artifacts are not comparable: `{key}` differs ({} vs {})",
                render(va),
                render(vb)
            ));
        }
    }
    let mut out = DiffOutput::default();
    walk(a, b, "", ignore, &mut out)?;
    Ok(out)
}

fn lookup<'j>(v: &'j Json, key: &str) -> Option<&'j Json> {
    match v {
        Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn render(v: Option<&Json>) -> String {
    v.map(Json::to_compact).unwrap_or_else(|| "absent".into())
}

fn numeric(v: &Json) -> Option<f64> {
    match v {
        Json::Int(i) => Some(*i as f64),
        Json::Float(x) => Some(*x),
        _ => None,
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Report every leaf of a subtree that exists in only one artifact, one
/// `DiffRow` per leaf with an infinite relative delta. Non-numeric leaves
/// are reported too (value NaN) — a dropped cell must surface even if its
/// only fields are strings.
fn report_one_sided(v: &Json, path: &str, kind: DiffKind, ignore: &[String], out: &mut DiffOutput) {
    match v {
        Json::Object(fields) => {
            for (k, vv) in fields {
                if ignore.iter().any(|i| i == k) {
                    out.ignored += 1;
                    continue;
                }
                report_one_sided(vv, &join(path, k), kind, ignore, out);
            }
        }
        Json::Array(items) => {
            for (i, vv) in items.iter().enumerate() {
                report_one_sided(vv, &format!("{path}[{i}]"), kind, ignore, out);
            }
        }
        leaf => {
            let value = numeric(leaf).unwrap_or(f64::NAN);
            let (a, b) = match kind {
                DiffKind::MissingInB => (value, f64::NAN),
                DiffKind::ExtraInB => (f64::NAN, value),
                DiffKind::Changed => unreachable!("one-sided leaves are never Changed"),
            };
            out.rows.push(DiffRow {
                path: path.to_string(),
                a,
                b,
                rel: f64::INFINITY,
                kind,
            });
        }
    }
}

fn walk(
    a: &Json,
    b: &Json,
    path: &str,
    ignore: &[String],
    out: &mut DiffOutput,
) -> Result<(), String> {
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        out.compared += 1;
        if x != y {
            let rel = if x == 0.0 {
                f64::INFINITY
            } else {
                (y - x) / x.abs()
            };
            out.rows.push(DiffRow {
                path: path.to_string(),
                a: x,
                b: y,
                rel,
                kind: DiffKind::Changed,
            });
        }
        return Ok(());
    }
    match (a, b) {
        (Json::Object(fa), Json::Object(fb)) => {
            // Match fields by key, not position: keys present in both are
            // compared, keys present in only one are reported as deltas.
            for (ka, va) in fa {
                if ignore.iter().any(|i| i == ka) {
                    out.ignored += 1;
                    continue;
                }
                let sub = join(path, ka);
                match fb.iter().find(|(kb, _)| kb == ka) {
                    Some((_, vb)) => walk(va, vb, &sub, ignore, out)?,
                    None => report_one_sided(va, &sub, DiffKind::MissingInB, ignore, out),
                }
            }
            for (kb, vb) in fb {
                if fa.iter().any(|(ka, _)| ka == kb) {
                    continue;
                }
                if ignore.iter().any(|i| i == kb) {
                    out.ignored += 1;
                    continue;
                }
                report_one_sided(vb, &join(path, kb), DiffKind::ExtraInB, ignore, out);
            }
            Ok(())
        }
        (Json::Array(xa), Json::Array(xb)) => {
            let common = xa.len().min(xb.len());
            for (i, (va, vb)) in xa.iter().zip(xb).take(common).enumerate() {
                walk(va, vb, &format!("{path}[{i}]"), ignore, out)?;
            }
            for (i, va) in xa.iter().enumerate().skip(common) {
                report_one_sided(
                    va,
                    &format!("{path}[{i}]"),
                    DiffKind::MissingInB,
                    ignore,
                    out,
                );
            }
            for (i, vb) in xb.iter().enumerate().skip(common) {
                report_one_sided(vb, &format!("{path}[{i}]"), DiffKind::ExtraInB, ignore, out);
            }
            Ok(())
        }
        _ => {
            if a == b {
                Ok(())
            } else {
                Err(format!(
                    "non-numeric mismatch at `{path}`: {} vs {}",
                    a.to_compact(),
                    b.to_compact()
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonin::parse;

    fn artifact(mean: f64, wall: f64) -> Json {
        parse(&format!(
            r#"{{"schema_version": 1, "kind": "rcb-bench-report",
                 "cells": [{{"trials": 3, "mean": {mean}, "wall_s": {wall}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_artifacts_have_no_rows() {
        let a = artifact(100.0, 1.5);
        let out = diff(&a, &a, &[]).unwrap();
        assert!(out.rows.is_empty());
        assert!(out.compared >= 4);
        assert_eq!(out.max_rel(), 0.0);
    }

    #[test]
    fn relative_deltas_and_paths() {
        let a = artifact(100.0, 1.0);
        let b = artifact(130.0, 9.0);
        let out = diff(&a, &b, &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].path, "cells[0].mean");
        assert!((out.rows[0].rel - 0.3).abs() < 1e-12);
        assert_eq!(out.violations(0.5).len(), 1, "only wall_s exceeds 50%");
        assert!(out.max_rel() > 7.9);
    }

    #[test]
    fn ignore_list_skips_host_dependent_fields() {
        let a = artifact(100.0, 1.0);
        let b = artifact(100.0, 9.0);
        let out = diff(&a, &b, &["wall_s".to_string()]).unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.ignored, 1);
    }

    #[test]
    fn ignoring_schema_version_allows_cross_version_diff() {
        let a = parse(r#"{"schema_version": 2, "kind": "k", "x": 1}"#).unwrap();
        let b = parse(r#"{"schema_version": 3, "kind": "k", "x": 1}"#).unwrap();
        assert!(diff(&a, &b, &[]).is_err());
        let out = diff(&a, &b, &["schema_version".to_string()]).unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.ignored, 1, "the version leaf itself is skipped too");
    }

    #[test]
    fn default_ignores_cover_every_wall_clock_leaf() {
        for key in ["wall_s", "slots_per_sec", "slot_loop_s", "code_version"] {
            assert!(DEFAULT_IGNORES.contains(&key));
        }
        // But never the deterministic counters.
        for key in ["slots_total", "ff_skip_ratio", "rng_engine_draws"] {
            assert!(!DEFAULT_IGNORES.contains(&key));
        }
    }

    #[test]
    fn mismatched_kinds_are_errors() {
        let a = artifact(1.0, 1.0);
        let mut b = artifact(1.0, 1.0);
        if let Json::Object(fields) = &mut b {
            fields[1].1 = "rcb-campaign-report".into();
        }
        assert!(diff(&a, &b, &[]).unwrap_err().contains("kind"));
    }

    /// The CI-gate regression this guards: a report that silently *lost*
    /// cells must fail any threshold, not pass with fewer comparisons.
    #[test]
    fn shrunken_report_fails_every_threshold() {
        let a = artifact(100.0, 1.5);
        let shrunk =
            parse(r#"{"schema_version": 1, "kind": "rcb-bench-report", "cells": []}"#).unwrap();
        let out = diff(&a, &shrunk, &[]).unwrap();
        // All three leaves of the dropped cell are reported as missing.
        assert_eq!(out.rows.len(), 3);
        assert!(out
            .rows
            .iter()
            .all(|r| r.kind == DiffKind::MissingInB && r.rel.is_infinite() && r.b.is_nan()));
        assert_eq!(out.rows[0].path, "cells[0].trials");
        assert_eq!(
            out.violations(1e18).len(),
            3,
            "missing leaves violate any threshold"
        );
        // The reverse direction reports the same leaves as extra.
        let out = diff(&shrunk, &a, &[]).unwrap();
        assert!(out.rows.iter().all(|r| r.kind == DiffKind::ExtraInB));
        assert_eq!(out.violations(0.5).len(), 3);
    }

    #[test]
    fn renamed_key_reports_both_sides() {
        let a = parse(r#"{"schema_version": 1, "kind": "k", "old_name": 7}"#).unwrap();
        let b = parse(r#"{"schema_version": 1, "kind": "k", "new_name": 7}"#).unwrap();
        let out = diff(&a, &b, &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].path, "old_name");
        assert_eq!(out.rows[0].kind, DiffKind::MissingInB);
        assert_eq!(out.rows[1].path, "new_name");
        assert_eq!(out.rows[1].kind, DiffKind::ExtraInB);
    }

    #[test]
    fn ignored_keys_are_skipped_even_when_one_sided() {
        let a = parse(r#"{"schema_version": 1, "kind": "k", "cells": [{"x": 1, "wall_s": 2.0}]}"#)
            .unwrap();
        let b = parse(r#"{"schema_version": 1, "kind": "k", "cells": []}"#).unwrap();
        let out = diff(&a, &b, &["wall_s".to_string()]).unwrap();
        assert_eq!(out.rows.len(), 1, "only the non-ignored leaf is reported");
        assert_eq!(out.rows[0].path, "cells[0].x");
        assert_eq!(out.ignored, 1);
    }

    #[test]
    fn non_numeric_one_sided_leaves_still_surface() {
        let a =
            parse(r#"{"schema_version": 1, "kind": "k", "cells": [{"protocol": "MultiCast"}]}"#)
                .unwrap();
        let b = parse(r#"{"schema_version": 1, "kind": "k", "cells": []}"#).unwrap();
        let out = diff(&a, &b, &[]).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(out.rows[0].a.is_nan() && out.rows[0].b.is_nan());
        assert!(out.rows[0].rel.is_infinite());
    }

    #[test]
    fn shape_conflicts_at_the_same_path_stay_errors() {
        let a = parse(r#"{"schema_version": 1, "kind": "k", "cells": [1]}"#).unwrap();
        let b = parse(r#"{"schema_version": 1, "kind": "k", "cells": "oops"}"#).unwrap();
        assert!(diff(&a, &b, &[]).is_err());
    }

    #[test]
    fn zero_to_nonzero_is_infinite_delta() {
        let a = artifact(0.0, 1.0);
        let b = artifact(5.0, 1.0);
        let out = diff(&a, &b, &[]).unwrap();
        assert!(out.rows[0].rel.is_infinite());
        assert_eq!(out.violations(1e12).len(), 1);
    }
}
