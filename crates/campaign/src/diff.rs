//! `rcb diff` — compare two schema-versioned artifacts.
//!
//! The regression gate for perf trajectories (ROADMAP item): load two
//! campaign or bench artifacts, walk their JSON trees in parallel, and
//! report every numeric leaf whose relative delta exceeds a threshold.
//! Structure must match (same kind, same schema version, same shape) —
//! artifacts produced by different scenarios are an error, not a diff.
//!
//! Host-dependent leaves (`wall_s`, `slots_per_sec`, `speedup`, …) can be
//! excluded by key with `ignore`, which is how CI gates deterministic slot
//! totals tightly while letting wall-clock noise through.

use crate::json::Json;

/// One numeric difference between the two artifacts.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Dotted path of the leaf, e.g. `cells[3].metrics.completion_slots.mean`.
    pub path: String,
    pub a: f64,
    pub b: f64,
    /// `(b − a) / |a|`; infinite when `a == 0 ≠ b`.
    pub rel: f64,
}

/// Outcome of a structural diff.
#[derive(Clone, Debug, Default)]
pub struct DiffOutput {
    /// Numeric leaves that differ, in document order.
    pub rows: Vec<DiffRow>,
    /// Number of numeric leaves compared.
    pub compared: usize,
    /// Leaves skipped via the ignore list.
    pub ignored: usize,
}

impl DiffOutput {
    /// Largest absolute relative delta across all differing leaves.
    pub fn max_rel(&self) -> f64 {
        self.rows.iter().map(|r| r.rel.abs()).fold(0.0, f64::max)
    }

    /// Rows whose |relative delta| exceeds `threshold`.
    pub fn violations(&self, threshold: f64) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.rel.abs() > threshold)
            .collect()
    }
}

/// Structurally compare two parsed artifacts.
///
/// `ignore` lists object keys whose subtrees are skipped entirely.
/// Returns an error when the documents are not comparable (different kinds,
/// schema versions, shapes, or non-numeric leaf mismatches).
pub fn diff(a: &Json, b: &Json, ignore: &[String]) -> Result<DiffOutput, String> {
    // Kind and schema version must agree before any cell comparison makes
    // sense.
    for key in ["kind", "schema_version"] {
        let (va, vb) = (lookup(a, key), lookup(b, key));
        if va != vb {
            return Err(format!(
                "artifacts are not comparable: `{key}` differs ({} vs {})",
                render(va),
                render(vb)
            ));
        }
    }
    let mut out = DiffOutput::default();
    walk(a, b, "", ignore, &mut out)?;
    Ok(out)
}

fn lookup<'j>(v: &'j Json, key: &str) -> Option<&'j Json> {
    match v {
        Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn render(v: Option<&Json>) -> String {
    v.map(Json::to_compact).unwrap_or_else(|| "absent".into())
}

fn numeric(v: &Json) -> Option<f64> {
    match v {
        Json::Int(i) => Some(*i as f64),
        Json::Float(x) => Some(*x),
        _ => None,
    }
}

fn walk(
    a: &Json,
    b: &Json,
    path: &str,
    ignore: &[String],
    out: &mut DiffOutput,
) -> Result<(), String> {
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        out.compared += 1;
        if x != y {
            let rel = if x == 0.0 {
                f64::INFINITY
            } else {
                (y - x) / x.abs()
            };
            out.rows.push(DiffRow {
                path: path.to_string(),
                a: x,
                b: y,
                rel,
            });
        }
        return Ok(());
    }
    match (a, b) {
        (Json::Object(fa), Json::Object(fb)) => {
            if fa.len() != fb.len() {
                return Err(format!(
                    "object at `{path}` has {} fields vs {}",
                    fa.len(),
                    fb.len()
                ));
            }
            for ((ka, va), (kb, vb)) in fa.iter().zip(fb) {
                if ka != kb {
                    return Err(format!("key mismatch at `{path}`: `{ka}` vs `{kb}`"));
                }
                if ignore.iter().any(|i| i == ka) {
                    out.ignored += 1;
                    continue;
                }
                let sub = if path.is_empty() {
                    ka.clone()
                } else {
                    format!("{path}.{ka}")
                };
                walk(va, vb, &sub, ignore, out)?;
            }
            Ok(())
        }
        (Json::Array(xa), Json::Array(xb)) => {
            if xa.len() != xb.len() {
                return Err(format!(
                    "array at `{path}` has {} items vs {}",
                    xa.len(),
                    xb.len()
                ));
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                walk(va, vb, &format!("{path}[{i}]"), ignore, out)?;
            }
            Ok(())
        }
        _ => {
            if a == b {
                Ok(())
            } else {
                Err(format!(
                    "non-numeric mismatch at `{path}`: {} vs {}",
                    a.to_compact(),
                    b.to_compact()
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonin::parse;

    fn artifact(mean: f64, wall: f64) -> Json {
        parse(&format!(
            r#"{{"schema_version": 1, "kind": "rcb-bench-report",
                 "cells": [{{"trials": 3, "mean": {mean}, "wall_s": {wall}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_artifacts_have_no_rows() {
        let a = artifact(100.0, 1.5);
        let out = diff(&a, &a, &[]).unwrap();
        assert!(out.rows.is_empty());
        assert!(out.compared >= 4);
        assert_eq!(out.max_rel(), 0.0);
    }

    #[test]
    fn relative_deltas_and_paths() {
        let a = artifact(100.0, 1.0);
        let b = artifact(130.0, 9.0);
        let out = diff(&a, &b, &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].path, "cells[0].mean");
        assert!((out.rows[0].rel - 0.3).abs() < 1e-12);
        assert_eq!(out.violations(0.5).len(), 1, "only wall_s exceeds 50%");
        assert!(out.max_rel() > 7.9);
    }

    #[test]
    fn ignore_list_skips_host_dependent_fields() {
        let a = artifact(100.0, 1.0);
        let b = artifact(100.0, 9.0);
        let out = diff(&a, &b, &["wall_s".to_string()]).unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.ignored, 1);
    }

    #[test]
    fn mismatched_kinds_and_shapes_are_errors() {
        let a = artifact(1.0, 1.0);
        let mut b = artifact(1.0, 1.0);
        if let Json::Object(fields) = &mut b {
            fields[1].1 = "rcb-campaign-report".into();
        }
        assert!(diff(&a, &b, &[]).unwrap_err().contains("kind"));

        let c = parse(r#"{"schema_version": 1, "kind": "rcb-bench-report", "cells": []}"#).unwrap();
        assert!(diff(&a, &c, &[]).unwrap_err().contains("array"));
    }

    #[test]
    fn zero_to_nonzero_is_infinite_delta() {
        let a = artifact(0.0, 1.0);
        let b = artifact(5.0, 1.0);
        let out = diff(&a, &b, &[]).unwrap();
        assert!(out.rows[0].rel.is_infinite());
        assert_eq!(out.violations(1e12).len(), 1);
    }
}
