//! # rcb-campaign — scenario catalog + parallel campaign engine
//!
//! Turns the per-trial harness (`rcb-harness`) into a production workload
//! driver:
//!
//! * [`scenario`] — a **registry of named scenarios**: declarative campaign
//!   specs (protocol grid × adversary grid × topology × n/T sweep) covering
//!   the core reproduction, unknown-`n`, limited channels, adaptive-jammer
//!   proxies, Gilbert–Elliott bursty noise, sweeping interference, baseline
//!   races, scaling ladders, and multi-hop topology families. Adding a
//!   workload is one ~30-line registry entry.
//! * [`engine`] — a **parallel campaign runner** that shards trials across
//!   cores with positional seed derivation
//!   (`cell_trial_seed(campaign_seed, cell, replicate)`) and strict-order
//!   streaming aggregation, so a campaign's result is **bit-identical at
//!   any thread count** and memory stays flat no matter how many trials
//!   run. [`engine::run_campaign_service`] layers the resumable campaign
//!   service on the same engine: per-cell checkpoints ([`checkpoint`]),
//!   `--resume` with kill-anywhere byte-identity, incremental `--trials`
//!   growth, and a content-addressed result store ([`store`]) that serves
//!   unchanged cells without simulating — see `docs/CAMPAIGN_SERVICE.md`.
//! * [`report`] — the **schema-versioned JSON artifact**
//!   (`BENCH_<scenario>.json`-ready) plus a human summary table.
//!
//! Performance tooling rides on the same catalog:
//!
//! * [`bench`](mod@bench) — `rcb bench`: single-threaded engine-throughput
//!   measurement per scenario cell (slots/sec, wall time, fast-forward
//!   speedup vs the slot-by-slot reference), emitted as a schema-versioned
//!   `BENCH_*.json` artifact — the repo's perf trajectory.
//! * [`diff`](mod@diff) + [`jsonin`] — `rcb diff a.json b.json`: structural
//!   comparison of two artifacts with per-leaf relative deltas and a
//!   threshold gate (the perf/behavior regression gate in CI). Wall-clock
//!   leaves and the build stamp are ignored by default
//!   ([`diff::DEFAULT_IGNORES`]).
//! * [`profile`](mod@profile) — `rcb profile <scenario> <cell>`: per-phase
//!   wall-clock and telemetry-counter breakdown of one cell ("why is this
//!   cell slow?").
//! * [`tracefile`] — `rcb run --trace-out t.jsonl`: schema-versioned JSONL
//!   trace of every trial's state-change events, via the engine's
//!   `Observer` seat.
//!
//! Every artifact embeds engine telemetry: a `perf` block per cell
//! (deterministic counters always; wall-clock phases opt-in via
//! `rcb run --perf`) and a `code_version` build stamp in the header — see
//! `docs/OBSERVABILITY.md`.
//!
//! The `rcb` binary (`src/bin/rcb.rs`) is the command-line face:
//!
//! ```text
//! rcb list
//! rcb describe core-repro
//! rcb run core-repro --trials 1000 --seed 1 --out BENCH_core.json
//! rcb run core-repro --trials 2 --trace-out trace.jsonl
//! rcb run --spec docs/examples/nemesis.toml --trials 100
//! rcb bench --quick --out BENCH_engine.json
//! rcb profile epidemic-race 2 --trials 3
//! rcb diff BENCH_engine.json new.json --threshold 0.5
//! ```

pub mod bench;
pub mod checkpoint;
pub mod diff;
pub mod engine;
pub mod json;
pub mod jsonin;
pub mod profile;
pub mod report;
pub mod scenario;
pub mod shard;
pub mod specfile;
pub mod store;
pub mod tracefile;

pub use bench::{run_bench, BenchConfig, BenchReport, BENCH_SCHEMA_VERSION};
pub use checkpoint::{
    checkpoint_path, load_checkpoint, CellCheckpoint, ServiceError, CHECKPOINT_SCHEMA_VERSION,
};
pub use diff::{diff, DiffKind, DiffOutput, DiffRow, DEFAULT_IGNORES};
pub use engine::{
    run_campaign, run_campaign_service, run_campaign_traced, validate_service_flags,
    CampaignConfig, ServiceConfig, ServiceRun,
};
pub use json::Json;
pub use profile::{profile_cell, ProfileConfig};
pub use report::{
    code_version, CampaignReport, CellPerf, CellReport, HelperPhaseCount, MetricReport,
    ScheduleReport, SpanLenBucket, TimelineEntry, SCHEMA_VERSION,
};
pub use scenario::{describe_campaign, find, registry, CampaignSpec, CellSpec, Scenario};
pub use shard::{
    load_plan, shard_merge, shard_status, shard_work, write_plan, CellState, CellStatus,
    MergeOutcome, PlanOptions, ShardPlan, WorkerOptions, WorkerOutcome, SHARD_SCHEMA_VERSION,
};
pub use specfile::{load_spec, parse_spec, SpecError};
pub use store::{
    checkpoint_key, store_key, EntrySummary, Store, TrendRow, DEFAULT_STORE_DIR,
    STORE_SCHEMA_VERSION,
};
pub use tracefile::{TraceWriter, TrialTraceObserver, TRACE_SCHEMA_VERSION};
