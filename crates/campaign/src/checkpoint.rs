//! Per-cell campaign checkpoints: the resumable-service state codec.
//!
//! A checkpoint file captures one cell's streaming aggregator state
//! (`CellAccumulator`: online moments, quantile sketch, telemetry,
//! helper/timeline aggregates) plus a **trials-completed watermark**,
//! exactly enough for `rcb run --resume` to continue the cell from trial
//! `watermark` and still emit an artifact **byte-identical** to an
//! uninterrupted run. Two properties make that possible:
//!
//! * **Exact serialization.** Every `f64` in the accumulator (Welford
//!   mean/m2, min/max sentinels) is stored as its IEEE-754 bit pattern
//!   (an integer leaf), never as a decimal rendering — deserialization is
//!   the identity, so the restored accumulator continues the stream with
//!   the same non-associative floating-point state it paused with. All
//!   other state (sketch buckets, telemetry counters) is integral.
//! * **Atomic replacement.** `write_checkpoint` writes to a sibling
//!   `*.tmp` file and `rename`s it into place; a kill at any instant
//!   leaves either the previous checkpoint or the new one on disk, never
//!   a torn file. Torn writes that bypass the rename (or any other
//!   corruption) are caught on load by an FNV-1a checksum over the state
//!   payload and reported as a [`ServiceError`] — `file: message`, never a
//!   panic and never a silent recompute-from-zero.
//!
//! The content-addressed store ([`crate::store`]) reuses this codec: a
//! store entry is a completed-cell checkpoint (watermark == trials) filed
//! under a content hash instead of a cell index.

use crate::engine::{CellAccumulator, MetricAcc};
use crate::json::Json;
use crate::jsonin;
use rcb_sim::{EngineTelemetry, PhaseNanos, SPAN_HIST_BUCKETS};
use rcb_stats::{QuantileSketch, StreamingMoments};
use std::path::{Path, PathBuf};

/// Version of the checkpoint file schema (independent of the campaign
/// artifact's `SCHEMA_VERSION`; see `docs/SCHEMA.md`). History:
///
/// * **1** — initial format: header (key, campaign, cell index, seed,
///   watermark) + exact accumulator state + FNV-1a checksum.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// An error from the campaign service layer (checkpoint or store I/O,
/// validation, corruption). Rendered as `file: message` when a file is
/// involved; the CLI maps these to exit code 2.
#[derive(Clone, Debug)]
pub struct ServiceError {
    /// The file the error concerns, if any.
    pub file: Option<PathBuf>,
    /// What went wrong.
    pub message: String,
}

impl ServiceError {
    pub(crate) fn at(file: &Path, message: impl Into<String>) -> Self {
        Self {
            file: Some(file.to_path_buf()),
            message: message.into(),
        }
    }

    pub(crate) fn msg(message: impl Into<String>) -> Self {
        Self {
            file: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.file {
            Some(path) => write!(f, "{}: {}", path.display(), self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ServiceError {}

/// FNV-1a 64-bit over `bytes`, from an arbitrary basis (pass
/// [`FNV_BASIS`] for the standard hash; a second pass from a different
/// basis gives the store's 128-bit key).
pub(crate) fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The standard FNV-1a 64-bit offset basis.
pub(crate) const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// One loaded (or about-to-be-written) cell checkpoint.
#[derive(Clone, Debug)]
pub struct CellCheckpoint {
    /// Watermark-independent cell identity key (see
    /// `cell_identity` in `store.rs`): resuming validates that the
    /// on-disk state belongs to the same (campaign, cell spec, seed base,
    /// slot cap, schema) before merging a single trial into it.
    pub key: String,
    /// Campaign name, for `file: message` diagnostics.
    pub campaign: String,
    /// Index of the cell within the campaign spec.
    pub cell_index: u64,
    /// Campaign master seed the trials derive from.
    pub seed: u64,
    /// Trials of this cell fully ingested into `state`.
    pub trials_done: u64,
    /// The exact aggregator state at the watermark.
    pub(crate) state: CellAccumulator,
}

/// Checkpoint file for cell `cell_index` under the state directory.
pub fn checkpoint_path(dir: &Path, cell_index: usize) -> PathBuf {
    dir.join(format!("cell-{cell_index:04}.ckpt.json"))
}

// ---------------------------------------------------------------------------
// State codec: CellAccumulator <-> Json, exact in both directions.
// ---------------------------------------------------------------------------

/// An `f64` as its bit pattern — the only leaf shape that survives a
/// serialize/parse round trip bit-for-bit.
fn bits(x: f64) -> Json {
    Json::Int(x.to_bits() as i128)
}

fn moments_to_json(m: &StreamingMoments) -> Json {
    let (n, mean, m2, min, max) = m.raw_parts();
    Json::obj(vec![
        ("n", n.into()),
        ("mean_bits", bits(mean)),
        ("m2_bits", bits(m2)),
        ("min_bits", bits(min)),
        ("max_bits", bits(max)),
    ])
}

fn metric_to_json(m: &MetricAcc) -> Json {
    Json::obj(vec![
        ("moments", moments_to_json(&m.moments)),
        (
            "sketch",
            Json::obj(vec![
                ("zeros", m.sketch.zeros().into()),
                ("count", m.sketch.count().into()),
                (
                    "buckets",
                    Json::arr(
                        m.sketch
                            .bucket_entries()
                            .into_iter()
                            .map(|(i, c)| Json::arr(vec![Json::Int(i as i128), c.into()]))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn telemetry_to_json(t: &EngineTelemetry) -> Json {
    Json::obj(vec![
        ("slots_stepped", t.slots_stepped.into()),
        ("slots_fast_forwarded", t.slots_fast_forwarded.into()),
        ("spans", t.spans.into()),
        (
            "span_len_hist",
            Json::arr(t.span_len_hist.iter().map(|&c| c.into()).collect()),
        ),
        ("rng_engine_draws", t.rng_engine_draws.into()),
        ("rng_node_draws", t.rng_node_draws.into()),
        ("jam_spent_stepped", t.jam_spent_stepped.into()),
        ("jam_spent_spans", t.jam_spent_spans.into()),
        ("observer_events", t.observer_events.into()),
        ("schedule_events", t.schedule_events.into()),
        ("ff_gated_segments", t.ff_gated_segments.into()),
        ("crashed_node_slots", t.crashed_node_slots.into()),
        (
            "phases",
            Json::obj(vec![
                ("setup", t.phases.setup.into()),
                ("slot_loop", t.phases.slot_loop.into()),
                ("fast_forward", t.phases.fast_forward.into()),
                ("finalize", t.phases.finalize.into()),
            ]),
        ),
    ])
}

/// Serialize the full accumulator state.
pub(crate) fn state_to_json(acc: &CellAccumulator) -> Json {
    Json::obj(vec![
        ("trials", acc.trials.into()),
        ("completed", acc.completed.into()),
        ("all_informed", acc.all_informed.into()),
        ("safety_violations", acc.safety_violations.into()),
        ("completion_slots", metric_to_json(&acc.completion_slots)),
        ("max_cost", metric_to_json(&acc.max_cost)),
        ("mean_cost", metric_to_json(&acc.mean_cost)),
        ("source_cost", metric_to_json(&acc.source_cost)),
        ("eve_spent", metric_to_json(&acc.eve_spent)),
        (
            "helper_events",
            Json::arr(
                acc.helper_events
                    .iter()
                    .map(|(&(epoch, phase), &count)| {
                        Json::arr(vec![epoch.into(), phase.into(), count.into()])
                    })
                    .collect(),
            ),
        ),
        ("crashed", metric_to_json(&acc.crashed)),
        ("survivors", metric_to_json(&acc.survivors)),
        (
            "survivors_informed",
            metric_to_json(&acc.survivors_informed),
        ),
        (
            "timeline",
            Json::arr(
                acc.timeline
                    .iter()
                    .map(|&(applied, min, max)| {
                        Json::arr(vec![applied.into(), min.into(), max.into()])
                    })
                    .collect(),
            ),
        ),
        ("telemetry", telemetry_to_json(&acc.telemetry)),
    ])
}

// -- parsing ----------------------------------------------------------------

pub(crate) fn get<'j>(v: &'j Json, key: &str) -> Result<&'j Json, String> {
    match v {
        Json::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`")),
        _ => Err(format!("expected an object holding `{key}`")),
    }
}

pub(crate) fn as_u64(v: &Json, key: &str) -> Result<u64, String> {
    match get(v, key)? {
        Json::Int(i) if *i >= 0 && *i <= u64::MAX as i128 => Ok(*i as u64),
        other => Err(format!(
            "field `{key}` is not a u64 (got {})",
            other.to_compact()
        )),
    }
}

pub(crate) fn as_str<'j>(v: &'j Json, key: &str) -> Result<&'j str, String> {
    match get(v, key)? {
        Json::Str(s) => Ok(s),
        other => Err(format!(
            "field `{key}` is not a string (got {})",
            other.to_compact()
        )),
    }
}

fn as_f64_bits(v: &Json, key: &str) -> Result<f64, String> {
    Ok(f64::from_bits(as_u64(v, key)?))
}

pub(crate) fn as_arr<'j>(v: &'j Json, key: &str) -> Result<&'j [Json], String> {
    match get(v, key)? {
        Json::Array(items) => Ok(items),
        other => Err(format!(
            "field `{key}` is not an array (got {})",
            other.to_compact()
        )),
    }
}

fn int_at(items: &[Json], i: usize, what: &str) -> Result<i128, String> {
    match items.get(i) {
        Some(Json::Int(v)) => Ok(*v),
        _ => Err(format!("{what}: element {i} is not an integer")),
    }
}

fn moments_from_json(v: &Json) -> Result<StreamingMoments, String> {
    Ok(StreamingMoments::from_raw_parts(
        as_u64(v, "n")?,
        as_f64_bits(v, "mean_bits")?,
        as_f64_bits(v, "m2_bits")?,
        as_f64_bits(v, "min_bits")?,
        as_f64_bits(v, "max_bits")?,
    ))
}

fn metric_from_json(v: &Json) -> Result<MetricAcc, String> {
    let moments = moments_from_json(get(v, "moments")?)?;
    let sk = get(v, "sketch")?;
    let zeros = as_u64(sk, "zeros")?;
    let count = as_u64(sk, "count")?;
    let mut buckets = Vec::new();
    let mut restored = zeros;
    for (i, b) in as_arr(sk, "buckets")?.iter().enumerate() {
        let Json::Array(pair) = b else {
            return Err(format!("sketch bucket {i} is not a pair"));
        };
        let idx = int_at(pair, 0, "sketch bucket")?;
        let c = int_at(pair, 1, "sketch bucket")?;
        if idx < i32::MIN as i128 || idx > i32::MAX as i128 || c < 0 {
            return Err(format!("sketch bucket {i} out of range"));
        }
        restored = restored
            .checked_add(c as u64)
            .ok_or_else(|| format!("sketch bucket {i} count overflows"))?;
        buckets.push((idx as i32, c as u64));
    }
    // Pre-validate what QuantileSketch::from_saved would panic on, so a
    // corrupt file degrades to an error instead of a panic.
    if restored != count {
        return Err(format!(
            "sketch state inconsistent: {restored} restored observations vs count {count}"
        ));
    }
    if count != moments.count() {
        return Err(format!(
            "metric state inconsistent: sketch count {count} vs moments count {}",
            moments.count()
        ));
    }
    Ok(MetricAcc {
        moments,
        sketch: QuantileSketch::from_saved(zeros, count, &buckets),
    })
}

fn telemetry_from_json(v: &Json) -> Result<EngineTelemetry, String> {
    let hist = as_arr(v, "span_len_hist")?;
    if hist.len() != SPAN_HIST_BUCKETS {
        return Err(format!(
            "span_len_hist has {} buckets, expected {SPAN_HIST_BUCKETS}",
            hist.len()
        ));
    }
    let mut span_len_hist = [0u64; SPAN_HIST_BUCKETS];
    for (i, b) in hist.iter().enumerate() {
        let c = int_at(hist, i, "span_len_hist")?;
        if c < 0 {
            return Err(format!("span_len_hist bucket {i} is negative"));
        }
        let _ = b;
        span_len_hist[i] = c as u64;
    }
    let phases = get(v, "phases")?;
    Ok(EngineTelemetry {
        slots_stepped: as_u64(v, "slots_stepped")?,
        slots_fast_forwarded: as_u64(v, "slots_fast_forwarded")?,
        spans: as_u64(v, "spans")?,
        span_len_hist,
        rng_engine_draws: as_u64(v, "rng_engine_draws")?,
        rng_node_draws: as_u64(v, "rng_node_draws")?,
        jam_spent_stepped: as_u64(v, "jam_spent_stepped")?,
        jam_spent_spans: as_u64(v, "jam_spent_spans")?,
        observer_events: as_u64(v, "observer_events")?,
        schedule_events: as_u64(v, "schedule_events")?,
        ff_gated_segments: as_u64(v, "ff_gated_segments")?,
        crashed_node_slots: as_u64(v, "crashed_node_slots")?,
        phases: PhaseNanos {
            setup: as_u64(phases, "setup")?,
            slot_loop: as_u64(phases, "slot_loop")?,
            fast_forward: as_u64(phases, "fast_forward")?,
            finalize: as_u64(phases, "finalize")?,
        },
    })
}

/// Rebuild the accumulator from its serialized state. Exact inverse of
/// [`state_to_json`]; any structural or consistency problem is an error.
pub(crate) fn state_from_json(v: &Json) -> Result<CellAccumulator, String> {
    let mut helper_events = std::collections::BTreeMap::new();
    for (i, e) in as_arr(v, "helper_events")?.iter().enumerate() {
        let Json::Array(triple) = e else {
            return Err(format!("helper_events[{i}] is not a triple"));
        };
        let epoch = int_at(triple, 0, "helper_events")?;
        let phase = int_at(triple, 1, "helper_events")?;
        let count = int_at(triple, 2, "helper_events")?;
        if epoch < 0
            || epoch > u32::MAX as i128
            || phase < 0
            || phase > u32::MAX as i128
            || count < 0
        {
            return Err(format!("helper_events[{i}] out of range"));
        }
        helper_events.insert((epoch as u32, phase as u32), count as u64);
    }
    let mut timeline = Vec::new();
    for (i, e) in as_arr(v, "timeline")?.iter().enumerate() {
        let Json::Array(triple) = e else {
            return Err(format!("timeline[{i}] is not a triple"));
        };
        let applied = int_at(triple, 0, "timeline")?;
        let min = int_at(triple, 1, "timeline")?;
        let max = int_at(triple, 2, "timeline")?;
        if applied < 0 || min < 0 || max < 0 {
            return Err(format!("timeline[{i}] out of range"));
        }
        timeline.push((applied as u64, min as u64, max as u64));
    }
    let acc = CellAccumulator {
        trials: as_u64(v, "trials")?,
        completed: as_u64(v, "completed")?,
        all_informed: as_u64(v, "all_informed")?,
        safety_violations: as_u64(v, "safety_violations")?,
        completion_slots: metric_from_json(get(v, "completion_slots")?)?,
        max_cost: metric_from_json(get(v, "max_cost")?)?,
        mean_cost: metric_from_json(get(v, "mean_cost")?)?,
        source_cost: metric_from_json(get(v, "source_cost")?)?,
        eve_spent: metric_from_json(get(v, "eve_spent")?)?,
        helper_events,
        crashed: metric_from_json(get(v, "crashed")?)?,
        survivors: metric_from_json(get(v, "survivors")?)?,
        survivors_informed: metric_from_json(get(v, "survivors_informed")?)?,
        timeline,
        telemetry: telemetry_from_json(get(v, "telemetry")?)?,
    };
    if acc.completion_slots.moments.count() != acc.trials {
        return Err(format!(
            "state inconsistent: {} metric observations vs {} trials",
            acc.completion_slots.moments.count(),
            acc.trials
        ));
    }
    Ok(acc)
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// Checksum input: the watermark and the compact state payload, bound to
/// the cell key so a checkpoint can't validate against the wrong cell.
fn checksum(key: &str, trials_done: u64, state_compact: &str) -> String {
    let input = format!("{key}|{trials_done}|{state_compact}");
    format!("{:016x}", fnv1a64(input.as_bytes(), FNV_BASIS))
}

/// Render a checkpoint document (shared with the store, which files the
/// same document shape under a content hash).
pub(crate) fn checkpoint_to_json(ckpt: &CellCheckpoint, kind: &str) -> Json {
    let state = state_to_json(&ckpt.state);
    let sum = checksum(&ckpt.key, ckpt.trials_done, &state.to_compact());
    Json::obj(vec![
        ("schema_version", CHECKPOINT_SCHEMA_VERSION.into()),
        ("kind", kind.into()),
        ("key", ckpt.key.as_str().into()),
        ("campaign", ckpt.campaign.as_str().into()),
        ("cell_index", ckpt.cell_index.into()),
        ("seed", ckpt.seed.into()),
        ("trials_done", ckpt.trials_done.into()),
        ("state", state),
        ("checksum", sum.into()),
    ])
}

/// Parse and validate a checkpoint document: structure, kind, schema
/// version, and the checksum over the state payload.
pub(crate) fn checkpoint_from_json(v: &Json, kind: &str) -> Result<CellCheckpoint, String> {
    let got_kind = as_str(v, "kind")?;
    if got_kind != kind {
        return Err(format!("wrong kind: `{got_kind}`, expected `{kind}`"));
    }
    let version = as_u64(v, "schema_version")?;
    if version != CHECKPOINT_SCHEMA_VERSION {
        return Err(format!(
            "unsupported checkpoint schema version {version} (this build reads {CHECKPOINT_SCHEMA_VERSION})"
        ));
    }
    let key = as_str(v, "key")?.to_string();
    let trials_done = as_u64(v, "trials_done")?;
    let state_json = get(v, "state")?;
    // Integer-only leaves round-trip exactly through the parser, so the
    // re-rendered compact payload is byte-identical to what was hashed at
    // write time; any flipped or missing byte inside `state` shows up here.
    let expect = checksum(&key, trials_done, &state_json.to_compact());
    let got = as_str(v, "checksum")?;
    if got != expect {
        return Err("checksum mismatch (corrupt or truncated checkpoint)".to_string());
    }
    let state = state_from_json(state_json)?;
    if state.trials != trials_done {
        return Err(format!(
            "watermark {trials_done} disagrees with state trial count {}",
            state.trials
        ));
    }
    Ok(CellCheckpoint {
        key,
        campaign: as_str(v, "campaign")?.to_string(),
        cell_index: as_u64(v, "cell_index")?,
        seed: as_u64(v, "seed")?,
        trials_done,
        state,
    })
}

/// Write `contents` to `path` atomically: temp file in the same directory,
/// flush, then rename over the target. A kill at any instant leaves either
/// the old file or the new one.
pub(crate) fn write_atomic(path: &Path, contents: &str) -> Result<(), ServiceError> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| ServiceError::at(&tmp, e.to_string());
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(contents.as_bytes()).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| ServiceError::at(path, e.to_string()))
}

/// Atomically write cell `cell_index`'s checkpoint under `dir` (created if
/// missing).
pub(crate) fn write_checkpoint(dir: &Path, ckpt: &CellCheckpoint) -> Result<(), ServiceError> {
    std::fs::create_dir_all(dir).map_err(|e| ServiceError::at(dir, e.to_string()))?;
    let path = checkpoint_path(dir, ckpt.cell_index as usize);
    write_atomic(
        &path,
        &checkpoint_to_json(ckpt, "rcb-cell-checkpoint").to_pretty(),
    )
}

/// Load and validate one cell checkpoint. `Ok(None)` when the file does
/// not exist (a fresh cell); every other failure — unreadable, malformed,
/// checksum mismatch, inconsistent state — is a [`ServiceError`] naming
/// the file.
pub fn load_checkpoint(path: &Path) -> Result<Option<CellCheckpoint>, ServiceError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ServiceError::at(path, e.to_string())),
    };
    let v = jsonin::parse(&text).map_err(|e| ServiceError::at(path, e))?;
    checkpoint_from_json(&v, "rcb-cell-checkpoint")
        .map(Some)
        .map_err(|e| ServiceError::at(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_acc(trials: u64, salt: u64) -> CellAccumulator {
        // A deterministic, structurally-rich accumulator: nonzero sketch
        // buckets, helper events, timeline entries, and telemetry.
        let mut acc = CellAccumulator::new();
        for i in 0..trials {
            let x = ((i * 2654435761 + salt) % 10_007) as f64 * 0.25;
            acc.completion_slots.push(x);
            acc.max_cost.push(x * 0.5);
            acc.mean_cost.push(x * 0.125 + 0.33);
            acc.source_cost.push((i % 17) as f64);
            acc.eve_spent.push(x * 3.0);
            acc.crashed.push((i % 3) as f64);
            acc.survivors.push(14.0);
            acc.survivors_informed.push(13.0);
            acc.trials += 1;
            acc.completed += i % 2;
            acc.all_informed += (i % 3 == 0) as u64;
        }
        acc.helper_events.insert((3, 1), 7);
        acc.helper_events.insert((5, 2), 2);
        acc.timeline.push((trials, 64, 80));
        acc.telemetry.slots_stepped = 12_345 + salt;
        acc.telemetry.slots_fast_forwarded = 99_999;
        acc.telemetry.spans = 7;
        acc.telemetry.span_len_hist[3] = 4;
        acc.telemetry.span_len_hist[13] = 3;
        acc.telemetry.rng_node_draws = 4242;
        acc.telemetry.phases.slot_loop = 5_000_001;
        acc
    }

    fn ckpt(trials: u64) -> CellCheckpoint {
        CellCheckpoint {
            key: "deadbeefdeadbeefdeadbeefdeadbeef".into(),
            campaign: "test".into(),
            cell_index: 2,
            seed: 42,
            trials_done: trials,
            state: filled_acc(trials, 9),
        }
    }

    #[test]
    fn state_codec_round_trips_exactly() {
        let acc = filled_acc(37, 1);
        let json = state_to_json(&acc);
        let back = state_from_json(&json).expect("valid state");
        // Bit-exact: serializing the restored state reproduces the bytes.
        assert_eq!(json.to_compact(), state_to_json(&back).to_compact());
        // And a parse round trip through the text form stays exact.
        let reparsed = jsonin::parse(&json.to_pretty()).expect("valid json");
        assert_eq!(reparsed.to_compact(), json.to_compact());
    }

    #[test]
    fn checkpoint_document_round_trips() {
        let c = ckpt(37);
        let doc = checkpoint_to_json(&c, "rcb-cell-checkpoint");
        let back = checkpoint_from_json(&doc, "rcb-cell-checkpoint").expect("valid");
        assert_eq!(back.key, c.key);
        assert_eq!(back.trials_done, 37);
        assert_eq!(back.cell_index, 2);
        assert_eq!(
            state_to_json(&back.state).to_compact(),
            state_to_json(&c.state).to_compact()
        );
    }

    #[test]
    fn corrupt_state_fails_the_checksum() {
        let doc = checkpoint_to_json(&ckpt(20), "rcb-cell-checkpoint").to_pretty();
        // Flip one digit inside the state payload (a telemetry counter).
        let corrupt = doc.replacen("12354", "12355", 1);
        assert_ne!(doc, corrupt, "the probe value must exist");
        let v = jsonin::parse(&corrupt).expect("still valid json");
        let err = checkpoint_from_json(&v, "rcb-cell-checkpoint").unwrap_err();
        assert!(err.contains("checksum mismatch"), "got: {err}");
    }

    #[test]
    fn wrong_kind_and_version_are_rejected() {
        let doc = checkpoint_to_json(&ckpt(5), "rcb-cell-checkpoint");
        let err = checkpoint_from_json(&doc, "rcb-store-entry").unwrap_err();
        assert!(err.contains("wrong kind"), "got: {err}");
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("rcb-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = ckpt(37);
        write_checkpoint(&dir, &c).expect("write");
        let path = checkpoint_path(&dir, 2);
        let back = load_checkpoint(&path).expect("load").expect("present");
        assert_eq!(back.trials_done, 37);
        // No stray temp file left behind.
        assert!(!path.with_extension("tmp").exists());
        // A missing checkpoint is Ok(None), not an error.
        assert!(load_checkpoint(&checkpoint_path(&dir, 7))
            .expect("missing is fine")
            .is_none());
        // Truncation is detected and names the file.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert!(err.to_string().starts_with(&path.display().to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
