//! `rcb` — run named campaigns from the scenario catalog.
//!
//! ```text
//! rcb list                                  # the scenario catalog
//! rcb describe <scenario>                   # cells of one scenario
//! rcb run <scenario> [--trials N] [--seed S] [--threads K]
//!                    [--max-slots M] [--batch-width W] [--out FILE]
//!                    [--perf] [--trace-out FILE] [--quiet]
//!                    [--state-dir DIR] [--resume] [--checkpoint-every K]
//!                    [--store DIR] [--max-trials-then-exit N]
//! rcb run --spec <file.toml|file.json> [same flags]
//! rcb bench [scenario ...] [--quick] [--trials N] [--seed S]
//!           [--max-slots M] [--no-reference] [--batch-width W]
//!           [--min-wall S] [--out FILE] [--quiet]
//! rcb profile <scenario> <cell> [--trials N] [--seed S] [--max-slots M]
//! rcb shard plan <scenario> --state-dir DIR [--trials N] [--seed S]
//!               [--batch-width W] [--max-slots M] [--checkpoint-every K]
//!               [--stale-after-ms MS] [--store DIR]
//! rcb shard work --state-dir DIR [--worker-id ID] [--threads K]
//!               [--max-trials-then-exit N] [--poll-ms MS]
//! rcb shard status --state-dir DIR
//! rcb shard merge --state-dir DIR [--out FILE]
//! rcb store list|show <key>|trend <key> <leaf>|gc [--store DIR]
//! rcb diff <a.json|store:KEY> <b.json|store:KEY> [--threshold X]
//!          [--ignore KEY ...] [--no-default-ignore] [--store DIR]
//! ```
//!
//! `run` takes either a catalog scenario name or `--spec FILE` — a
//! declarative TOML/JSON campaign spec (cells, adversaries, topologies,
//! world schedules; see `docs/NEMESIS.md`). Malformed spec files fail with
//! file/line/key context and exit code 2.
//!
//! `run` prints a human summary table to stdout and, with `--out`, writes
//! the schema-versioned JSON artifact. The artifact's deterministic leaves
//! depend only on (scenario, seed, trials, max-slots): rerunning with the
//! same seed gives byte-identical files at any `--threads` value. `--perf`
//! additionally fills the wall-clock leaves of each cell's `perf` block
//! (making the file host-dependent); `--trace-out` streams a JSONL event
//! trace of every trial (forces single-threaded execution so line order is
//! deterministic).
//!
//! The service flags make `run` kill-safe and re-runs free (see
//! `docs/CAMPAIGN_SERVICE.md`): `--state-dir` checkpoints each cell's
//! aggregator state atomically, `--resume` continues from the watermarks
//! (the resumed artifact is byte-identical to an uninterrupted run, and
//! `--trials` may grow but never shrink), `--store` fronts the engine
//! with a content-addressed cell cache so unchanged re-runs simulate
//! nothing, and `--max-trials-then-exit` is the deliberate kill switch CI
//! uses to exercise resume. Corrupt or mismatched state fails with
//! `file: message` context and exit 2.
//!
//! `shard` scales one campaign across **many worker processes** with no
//! network: `plan` pins the campaign's identity in a shared state
//! directory, any number of `work` processes claim cells via atomic lease
//! files (stealing stale leases from dead workers), `status` shows the
//! fleet, and `merge` folds the per-cell checkpoints into an artifact
//! **byte-identical** to a single-process `rcb run` — at any worker
//! count, kill pattern, or batch width. See `docs/CAMPAIGN_SERVICE.md`.
//!
//! `bench` measures single-threaded engine throughput (slots/sec, wall
//! time, fast-forward speedup) per catalog cell; `profile` breaks one
//! cell's time down by engine phase and telemetry counter; `store`
//! lists, renders, and garbage-collects store entries; `diff` compares
//! two artifacts (file paths or `store:KEY` references) and exits
//! non-zero when any relative delta exceeds `--threshold` — together
//! they are the perf-trajectory regression gate. `diff` ignores the
//! build stamp and wall-clock leaves unless `--no-default-ignore` is
//! given.

use rcb_campaign::{
    describe_campaign, diff, find, jsonin, load_plan, load_spec, profile_cell, registry, run_bench,
    run_campaign_service, run_campaign_traced, shard_merge, shard_status, shard_work,
    validate_service_flags, write_plan, BenchConfig, CampaignConfig, CampaignSpec, CellState,
    PlanOptions, ProfileConfig, ServiceConfig, ServiceRun, Store, WorkerOptions, WorkerOutcome,
    DEFAULT_IGNORES, DEFAULT_STORE_DIR,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  rcb list\n  rcb describe <scenario>\n  rcb run <scenario> \
         [--trials N] [--seed S] [--threads K] [--max-slots M] [--batch-width W] \
         [--out FILE] [--perf] [--trace-out FILE] [--quiet]\n               \
         [--state-dir DIR] [--resume] [--checkpoint-every K] [--store DIR] \
         [--max-trials-then-exit N]\n  \
         rcb run --spec <file.toml|file.json> [same flags as above]\n  \
         rcb bench [scenario ...] [--quick] [--trials N] [--seed S] [--max-slots M] \
         [--no-reference] [--batch-width W] [--min-wall S] [--out FILE] [--quiet]\n  \
         rcb profile <scenario> <cell> [--trials N] [--seed S] [--max-slots M]\n  \
         rcb shard plan <scenario> --state-dir DIR [--trials N] [--seed S] [--batch-width W] \
         [--max-slots M] [--checkpoint-every K] [--stale-after-ms MS] [--store DIR]\n  \
         rcb shard work --state-dir DIR [--worker-id ID] [--threads K] \
         [--max-trials-then-exit N] [--poll-ms MS]\n  \
         rcb shard status --state-dir DIR\n  \
         rcb shard merge --state-dir DIR [--out FILE]\n  \
         rcb store list|show <key>|trend <key> <leaf>|gc [--store DIR]\n  \
         rcb diff <a.json|store:KEY> <b.json|store:KEY> [--threshold X] \
         [--ignore KEY ...] [--no-default-ignore] [--store DIR]\n\
         \nscenarios:\n{}",
        registry()
            .iter()
            .map(|s| format!("  {:<18} {}", s.name, s.summary))
            .collect::<Vec<_>>()
            .join("\n")
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    let Some(v) = v else {
        eprintln!("missing value for {flag}");
        usage()
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("describe") => match args.get(1) {
            Some(name) => cmd_describe(name),
            None => usage(),
        },
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("profile") => match (args.get(1), args.get(2)) {
            (Some(name), Some(cell)) => cmd_profile(name, cell, &args[3..]),
            _ => usage(),
        },
        Some("shard") => cmd_shard(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("diff") => match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => cmd_diff(a, b, &args[3..]),
            _ => usage(),
        },
        _ => usage(),
    }
}

fn cmd_list() {
    println!("scenario catalog ({} entries):\n", registry().len());
    for s in registry() {
        let cells = (s.build)().cells.len();
        println!("  {:<18} {:>3} cells  {}", s.name, cells, s.summary);
    }
    println!("\nrun with: rcb run <scenario> --trials 1000 --out BENCH_<scenario>.json");
}

fn cmd_describe(name: &str) {
    let Some(s) = find(name) else {
        eprintln!("unknown scenario: {name}");
        usage()
    };
    print!("{}", describe_campaign(&(s.build)(), s.summary));
}

fn cmd_run(rest: &[String]) {
    let mut cfg = CampaignConfig {
        progress: true,
        ..CampaignConfig::default()
    };
    let mut svc = ServiceConfig::default();
    let mut explicit_checkpoint_every: Option<u64> = None;
    let mut name: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => spec_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--trials" => cfg.trials_per_cell = parse(arg, it.next()),
            "--seed" => cfg.seed = parse(arg, it.next()),
            "--threads" => cfg.threads = parse(arg, it.next()),
            "--max-slots" => cfg.max_slots = Some(parse(arg, it.next())),
            "--batch-width" => cfg.batch_width = parse(arg, it.next()),
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--trace-out" => trace_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--perf" => cfg.telemetry = true,
            "--quiet" => cfg.progress = false,
            "--state-dir" => {
                svc.state_dir = Some(PathBuf::from(it.next().cloned().unwrap_or_else(|| usage())))
            }
            "--resume" => svc.resume = true,
            "--checkpoint-every" => explicit_checkpoint_every = Some(parse(arg, it.next())),
            "--store" => {
                svc.store_dir = Some(PathBuf::from(it.next().cloned().unwrap_or_else(|| usage())))
            }
            "--max-trials-then-exit" => svc.kill_after_trials = Some(parse(arg, it.next())),
            bare if !bare.starts_with('-') && name.is_none() => name = Some(bare.to_string()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    if cfg.trials_per_cell == 0 {
        eprintln!("--trials: must be at least 1");
        std::process::exit(2)
    }
    svc.checkpoint_every = explicit_checkpoint_every.unwrap_or(svc.checkpoint_every);
    // Flag-combination misuse fails with `--flag: why` context at exit 2
    // (never a panic, never a silently-substituted default).
    if let Err(e) = validate_service_flags(&svc, explicit_checkpoint_every) {
        eprintln!("{e}");
        std::process::exit(2)
    }
    let service_active = svc.state_dir.is_some()
        || svc.store_dir.is_some()
        || svc.resume
        || svc.kill_after_trials.is_some();
    if trace_path.is_some() && service_active {
        eprintln!("--trace-out cannot be combined with the service flags (--state-dir/--resume/--store/--max-trials-then-exit)");
        usage()
    }
    let spec: CampaignSpec = match (&name, &spec_path) {
        (Some(name), None) => {
            let Some(s) = find(name) else {
                eprintln!("unknown scenario: {name}");
                usage()
            };
            (s.build)()
        }
        (None, Some(path)) => load_spec(path).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2)
        }),
        _ => {
            eprintln!("run takes exactly one of <scenario> or --spec FILE");
            usage()
        }
    };

    // Open the artifact file before the (potentially long) run so a bad
    // path fails in milliseconds, not after the campaign.
    let create = |path: &String| {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2)
        })
    };
    let mut out_file = out_path.as_ref().map(create);
    let trace_file = trace_path.as_ref().map(create);

    let threads_used = if trace_path.is_some() {
        1 // deterministic trace line order needs a single writer
    } else {
        rcb_harness::resolve_threads(cfg.threads)
    };
    if cfg.progress {
        eprintln!(
            "[rcb] campaign {}: {} cells x {} trials = {} total, seed {}, {} threads{}",
            spec.name,
            spec.cells.len(),
            cfg.trials_per_cell,
            spec.cells.len() as u64 * cfg.trials_per_cell,
            cfg.seed,
            threads_used,
            if trace_path.is_some() {
                " (trace export is single-threaded)"
            } else {
                ""
            },
        );
    }

    let start = Instant::now();
    let report = match trace_file {
        Some(f) => {
            let mut sink = std::io::BufWriter::new(f);
            run_campaign_traced(&spec, &cfg, &mut sink).unwrap_or_else(|e| {
                eprintln!(
                    "cannot write trace {}: {e}",
                    trace_path.as_deref().unwrap_or("?")
                );
                std::process::exit(2)
            })
        }
        None => match run_campaign_service(&spec, &cfg, &svc) {
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2)
            }
            Ok(ServiceRun::Killed { simulated_trials }) => {
                // Deliberate mid-run exit: checkpoints are on disk, no
                // artifact is written (a partial artifact would be worse
                // than none). Leave no empty --out file behind.
                drop(out_file);
                if let Some(path) = out_path.as_ref() {
                    let _ = std::fs::remove_file(path);
                }
                eprintln!(
                    "[rcb] exited after {simulated_trials} simulated trial(s) (--max-trials-then-exit); \
                     resume with --resume --state-dir {}",
                    svc.state_dir
                        .as_deref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|| "<DIR>".into())
                );
                return;
            }
            Ok(ServiceRun::Complete {
                report,
                store_hits,
                resumed_trials,
                simulated_trials,
            }) => {
                if service_active {
                    eprintln!(
                        "[rcb] service: {store_hits} store hit(s), {resumed_trials} trial(s) \
                         resumed from checkpoints, simulated {simulated_trials} trial(s)"
                    );
                }
                report
            }
        },
    };
    let elapsed = start.elapsed();
    if let Some(path) = trace_path.as_ref() {
        println!("trace written to {path}");
    }

    println!("{}", report.to_table());
    eprintln!("[rcb] completed in {elapsed:.1?}");

    let violations: u64 = report.cells.iter().map(|c| c.safety_violations).sum();
    if violations > 0 {
        eprintln!("[rcb] WARNING: {violations} safety violation(s) — protocol bug");
    }

    if let (Some(f), Some(path)) = (out_file.as_mut(), out_path.as_ref()) {
        f.write_all(report.to_json().as_bytes())
            .expect("write artifact");
        println!("artifact written to {path}");
    }

    if violations > 0 {
        std::process::exit(1);
    }
}

fn cmd_bench(rest: &[String]) {
    let mut cfg = BenchConfig {
        progress: true,
        ..BenchConfig::default()
    };
    // Explicit flags always win over the --quick preset, whatever the
    // argument order.
    let mut quick = false;
    let mut explicit_trials: Option<u64> = None;
    let mut explicit_max_slots: Option<u64> = None;
    let mut names: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trials" => explicit_trials = Some(parse(arg, it.next())),
            "--seed" => cfg.seed = parse(arg, it.next()),
            "--max-slots" => explicit_max_slots = Some(parse(arg, it.next())),
            "--no-reference" => cfg.reference = false,
            "--batch-width" => cfg.batch_width = parse(arg, it.next()),
            "--min-wall" => cfg.min_wall_s = parse(arg, it.next()),
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--quiet" => cfg.progress = false,
            name if !name.starts_with('-') => names.push(name.to_string()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    if quick {
        let preset = BenchConfig::quick();
        cfg.trials_per_cell = preset.trials_per_cell;
        cfg.max_slots = preset.max_slots;
    }
    if let Some(t) = explicit_trials {
        cfg.trials_per_cell = t;
    }
    if let Some(m) = explicit_max_slots {
        cfg.max_slots = Some(m);
    }

    let scenarios: Vec<_> = if names.is_empty() {
        registry()
    } else {
        names
            .iter()
            .map(|n| {
                find(n).unwrap_or_else(|| {
                    eprintln!("unknown scenario: {n}");
                    usage()
                })
            })
            .collect()
    };

    let mut out_file = out_path.as_ref().map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2)
        })
    });

    let start = Instant::now();
    let report = run_bench(&scenarios, &cfg);
    println!("{}", report.to_table());
    eprintln!("[rcb bench] completed in {:.1?}", start.elapsed());

    if let (Some(f), Some(path)) = (out_file.as_mut(), out_path.as_ref()) {
        f.write_all(report.to_json().as_bytes())
            .expect("write artifact");
        println!("artifact written to {path}");
    }
}

fn cmd_profile(name: &str, cell: &str, rest: &[String]) {
    let Some(s) = find(name) else {
        eprintln!("unknown scenario: {name}");
        usage()
    };
    let cell_index: usize = cell.parse().unwrap_or_else(|_| {
        eprintln!("bad cell index: {cell} (see `rcb describe {name}`)");
        usage()
    });
    let mut cfg = ProfileConfig::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => cfg.trials = parse(arg, it.next()),
            "--seed" => cfg.seed = parse(arg, it.next()),
            "--max-slots" => cfg.max_slots = Some(parse(arg, it.next())),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    match profile_cell(&s, cell_index, &cfg) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2)
        }
    }
}

/// Rebuild the campaign spec a shard plan names. Workers rebuild specs
/// from the scenario catalog — the plan's per-cell identity keys then
/// verify the rebuild matches what was planned.
fn shard_spec(plan: &rcb_campaign::ShardPlan) -> CampaignSpec {
    match find(&plan.campaign) {
        Some(s) => (s.build)(),
        None => {
            eprintln!(
                "shard plan names campaign `{}`, which is not in the scenario catalog; shard \
                 workers rebuild specs from the catalog, so ad-hoc --spec campaigns cannot be \
                 sharded",
                plan.campaign
            );
            std::process::exit(2)
        }
    }
}

fn cmd_shard(rest: &[String]) {
    let Some(sub) = rest.first() else { usage() };
    let fail = |e: rcb_campaign::ServiceError| -> ! {
        eprintln!("{e}");
        std::process::exit(2)
    };
    let mut state_dir: Option<PathBuf> = None;
    let mut name: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut cfg = CampaignConfig::default();
    let mut plan_opts = PlanOptions::default();
    let mut worker_opts = WorkerOptions::default();
    let mut it = rest[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--state-dir" => {
                state_dir = Some(PathBuf::from(it.next().cloned().unwrap_or_else(|| usage())))
            }
            "--trials" => cfg.trials_per_cell = parse(arg, it.next()),
            "--seed" => cfg.seed = parse(arg, it.next()),
            "--batch-width" => cfg.batch_width = parse(arg, it.next()),
            "--max-slots" => cfg.max_slots = Some(parse(arg, it.next())),
            "--checkpoint-every" => plan_opts.checkpoint_every = parse(arg, it.next()),
            "--stale-after-ms" => plan_opts.stale_after_ms = parse(arg, it.next()),
            "--store" => {
                plan_opts.store_dir =
                    Some(PathBuf::from(it.next().cloned().unwrap_or_else(|| usage())))
            }
            "--worker-id" => worker_opts.worker_id = it.next().cloned().unwrap_or_else(|| usage()),
            "--threads" => worker_opts.threads = parse(arg, it.next()),
            "--max-trials-then-exit" => worker_opts.max_trials = Some(parse(arg, it.next())),
            "--poll-ms" => worker_opts.poll_ms = parse(arg, it.next()),
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            bare if !bare.starts_with('-') && name.is_none() => name = Some(bare.to_string()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    let Some(state_dir) = state_dir else {
        eprintln!("--state-dir: required (the shard plan, leases, and checkpoints live there)");
        std::process::exit(2)
    };

    match sub.as_str() {
        "plan" => {
            let Some(name) = name else {
                eprintln!("shard plan takes a scenario name (see `rcb list`)");
                usage()
            };
            let Some(s) = find(&name) else {
                eprintln!("unknown scenario: {name}");
                usage()
            };
            let spec = (s.build)();
            let plan = write_plan(&spec, &cfg, &state_dir, &plan_opts).unwrap_or_else(|e| fail(e));
            println!(
                "plan {} in {}: campaign {} ({} cells x {} trials), seed {}, batch width {}, \
                 checkpoint every {}, stale after {} ms{}",
                plan.plan_id,
                state_dir.display(),
                plan.campaign,
                plan.cells(),
                plan.trials_per_cell,
                plan.seed,
                plan.batch_width,
                plan.checkpoint_every,
                plan.stale_after_ms,
                plan.store_dir
                    .as_ref()
                    .map(|d| format!(", store {}", d.display()))
                    .unwrap_or_default(),
            );
            println!(
                "start workers with: rcb shard work --state-dir {}",
                state_dir.display()
            );
        }
        "work" => {
            let plan = load_plan(&state_dir).unwrap_or_else(|e| fail(e));
            let spec = shard_spec(&plan);
            eprintln!(
                "[rcb shard] worker {} on plan {} ({} cells x {} trials)",
                worker_opts.worker_id,
                plan.plan_id,
                plan.cells(),
                plan.trials_per_cell
            );
            match shard_work(&spec, &state_dir, &worker_opts).unwrap_or_else(|e| fail(e)) {
                WorkerOutcome::Finished {
                    cells_completed,
                    cells_stolen,
                    trials_simulated,
                    store_hits,
                } => println!(
                    "[rcb shard] plan complete: this worker finished {cells_completed} cell(s) \
                     ({cells_stolen} stolen, {store_hits} store hit(s)), simulated \
                     {trials_simulated} trial(s); merge with: rcb shard merge --state-dir {}",
                    state_dir.display()
                ),
                WorkerOutcome::Killed { trials_simulated } => eprintln!(
                    "[rcb shard] worker exited after {trials_simulated} simulated trial(s) \
                     (--max-trials-then-exit); its lease will go stale and be stolen"
                ),
            }
        }
        "status" => {
            let plan = load_plan(&state_dir).unwrap_or_else(|e| fail(e));
            let rows = shard_status(&state_dir, &plan).unwrap_or_else(|e| fail(e));
            let done = rows.iter().filter(|r| r.state == CellState::Done).count();
            println!(
                "plan {}: campaign {}, {done}/{} cells done\n",
                plan.plan_id,
                plan.campaign,
                rows.len()
            );
            println!(
                "  {:>4} {:<10} {:>12} {:<12} beat age",
                "cell", "state", "trials", "owner"
            );
            for r in &rows {
                let state = match r.state {
                    CellState::Done => "done",
                    CellState::Claimed => "claimed",
                    CellState::Stealable => "stealable",
                    CellState::Available => "available",
                };
                println!(
                    "  {:>4} {:<10} {:>5}/{:<6} {:<12} {}",
                    r.cell,
                    state,
                    r.watermark,
                    plan.trials_per_cell,
                    r.owner.as_deref().unwrap_or("-"),
                    r.beat_age_ms
                        .map(|ms| format!("{ms} ms"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
        }
        "merge" => {
            let plan = load_plan(&state_dir).unwrap_or_else(|e| fail(e));
            let spec = shard_spec(&plan);
            let merged = shard_merge(&spec, &state_dir).unwrap_or_else(|e| fail(e));
            println!("{}", merged.report.to_table());
            if merged.swept_files > 0 {
                eprintln!(
                    "[rcb shard] swept {} leftover lease/tmp file(s)",
                    merged.swept_files
                );
            }
            if let Some(path) = out_path.as_ref() {
                std::fs::write(path, merged.report.to_json().as_bytes()).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2)
                });
                println!("artifact written to {path}");
            }
        }
        _ => {
            eprintln!("unknown shard subcommand: {sub}");
            usage()
        }
    }
}

fn cmd_store(rest: &[String]) {
    let Some(sub) = rest.first() else { usage() };
    let mut dir = DEFAULT_STORE_DIR.to_string();
    let mut operands: Vec<String> = Vec::new();
    let mut it = rest[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => dir = it.next().cloned().unwrap_or_else(|| usage()),
            bare if !bare.starts_with('-') && operands.len() < 2 => operands.push(bare.to_string()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    let operand = operands.first().cloned();
    let fail = |e: rcb_campaign::ServiceError| -> ! {
        eprintln!("{e}");
        std::process::exit(2)
    };
    let store = Store::new(PathBuf::from(&dir));
    match sub.as_str() {
        "list" => {
            let entries = store.list().unwrap_or_else(|e| fail(e));
            if entries.is_empty() {
                println!("store {dir}: empty");
                return;
            }
            println!("store {dir}: {} entr(ies)\n", entries.len());
            println!(
                "  {:<32} {:<16} {:>4} {:>8} {:>10}  cell",
                "key", "campaign", "cell", "trials", "seed"
            );
            for e in &entries {
                println!(
                    "  {:<32} {:<16} {:>4} {:>8} {:>10}  {}",
                    e.key, e.campaign, e.cell_index, e.trials, e.seed, e.cell
                );
            }
        }
        "show" => {
            let Some(prefix) = operand else {
                eprintln!("store show takes a key (or unique key prefix)");
                usage()
            };
            let text = store.render_cell(&prefix).unwrap_or_else(|e| fail(e));
            println!("{text}");
        }
        "trend" => {
            let (Some(prefix), Some(leaf)) = (operands.first(), operands.get(1)) else {
                eprintln!(
                    "store trend takes a key (or unique key prefix) and a report leaf path, \
                     e.g. `rcb store trend 3f2a metrics.completion_slots.p50`"
                );
                usage()
            };
            let rows = store.trend(prefix, leaf).unwrap_or_else(|e| fail(e));
            println!(
                "store {dir}: {} build(s) of the cell behind {prefix}, leaf {leaf}\n",
                rows.len()
            );
            println!("  {:<20} {:<10} value", "code_version", "key");
            for row in &rows {
                let value = match &row.value {
                    Some(rcb_campaign::Json::Int(i)) => i.to_string(),
                    Some(rcb_campaign::Json::Float(x)) => format!("{x:.6}"),
                    Some(rcb_campaign::Json::Str(s)) => s.clone(),
                    Some(other) => other.to_compact(),
                    None => "-".to_string(),
                };
                println!("  {:<20} {:<10} {value}", row.code_version, &row.key[..8]);
            }
        }
        "gc" => {
            let (kept, removed) = store.gc().unwrap_or_else(|e| fail(e));
            for key in &removed {
                println!("removed {key}");
            }
            println!(
                "store {dir}: kept {} entr(ies), removed {}",
                kept.len(),
                removed.len()
            );
        }
        _ => {
            eprintln!("unknown store subcommand: {sub}");
            usage()
        }
    }
}

fn cmd_diff(path_a: &str, path_b: &str, rest: &[String]) {
    let mut threshold: Option<f64> = None;
    let mut ignore: Vec<String> = Vec::new();
    let mut default_ignores = true;
    let mut store_dir = DEFAULT_STORE_DIR.to_string();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => threshold = Some(parse(arg, it.next())),
            "--ignore" => ignore.push(it.next().cloned().unwrap_or_else(|| usage())),
            "--no-default-ignore" => default_ignores = false,
            "--store" => store_dir = it.next().cloned().unwrap_or_else(|| usage()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    if default_ignores {
        ignore.extend(DEFAULT_IGNORES.iter().map(|k| k.to_string()));
    }

    // Operands are either artifact paths or `store:KEY` references, where
    // KEY is any unique prefix of a content key in the artifact store.
    let load = |path: &str| -> rcb_campaign::Json {
        let text = match path.strip_prefix("store:") {
            Some(prefix) => Store::new(PathBuf::from(&store_dir))
                .render_cell(prefix)
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2)
                }),
            None => std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2)
            }),
        };
        jsonin::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2)
        })
    };
    let (a, b) = (load(path_a), load(path_b));

    let out = diff(&a, &b, &ignore).unwrap_or_else(|e| {
        eprintln!("diff failed: {e}");
        std::process::exit(2)
    });

    if out.rows.is_empty() {
        println!(
            "no numeric differences ({} leaves compared, {} ignored)",
            out.compared, out.ignored
        );
        return;
    }
    println!(
        "{} differing leaves of {} compared ({} ignored); max |rel| = {:.3}",
        out.rows.len(),
        out.compared,
        out.ignored,
        out.max_rel()
    );
    for row in &out.rows {
        match row.kind {
            rcb_campaign::DiffKind::Changed => println!(
                "  {:<60} {:>14.4} -> {:>14.4}  ({:+.2}%)",
                row.path,
                row.a,
                row.b,
                row.rel * 100.0
            ),
            rcb_campaign::DiffKind::MissingInB => println!(
                "  {:<60} {:>14.4} -> {:>14}  (missing in {path_b})",
                row.path,
                row.a,
                "-",
                path_b = path_b,
            ),
            rcb_campaign::DiffKind::ExtraInB => println!(
                "  {:<60} {:>14} -> {:>14.4}  (only in {path_b})",
                row.path,
                "-",
                row.b,
                path_b = path_b,
            ),
        }
    }
    if let Some(t) = threshold {
        let violations = out.violations(t);
        if !violations.is_empty() {
            eprintln!(
                "[rcb diff] FAIL: {} leaves exceed the {:.3} relative threshold",
                violations.len(),
                t
            );
            std::process::exit(1);
        }
        println!("all deltas within the {t:.3} threshold");
    }
}
