//! `rcb` — run named campaigns from the scenario catalog.
//!
//! ```text
//! rcb list                                  # the scenario catalog
//! rcb describe <scenario>                   # cells of one scenario
//! rcb run <scenario> [--trials N] [--seed S] [--threads K]
//!                    [--max-slots M] [--batch-width W] [--out FILE]
//!                    [--perf] [--trace-out FILE] [--quiet]
//!                    [--state-dir DIR] [--resume] [--checkpoint-every K]
//!                    [--store DIR] [--max-trials-then-exit N]
//! rcb run --spec <file.toml|file.json> [same flags]
//! rcb bench [scenario ...] [--quick] [--trials N] [--seed S]
//!           [--max-slots M] [--no-reference] [--batch-width W]
//!           [--min-wall S] [--out FILE] [--quiet]
//! rcb profile <scenario> <cell> [--trials N] [--seed S] [--max-slots M]
//! rcb store list|show <key>|gc [--store DIR]
//! rcb diff <a.json|store:KEY> <b.json|store:KEY> [--threshold X]
//!          [--ignore KEY ...] [--no-default-ignore] [--store DIR]
//! ```
//!
//! `run` takes either a catalog scenario name or `--spec FILE` — a
//! declarative TOML/JSON campaign spec (cells, adversaries, topologies,
//! world schedules; see `docs/NEMESIS.md`). Malformed spec files fail with
//! file/line/key context and exit code 2.
//!
//! `run` prints a human summary table to stdout and, with `--out`, writes
//! the schema-versioned JSON artifact. The artifact's deterministic leaves
//! depend only on (scenario, seed, trials, max-slots): rerunning with the
//! same seed gives byte-identical files at any `--threads` value. `--perf`
//! additionally fills the wall-clock leaves of each cell's `perf` block
//! (making the file host-dependent); `--trace-out` streams a JSONL event
//! trace of every trial (forces single-threaded execution so line order is
//! deterministic).
//!
//! The service flags make `run` kill-safe and re-runs free (see
//! `docs/CAMPAIGN_SERVICE.md`): `--state-dir` checkpoints each cell's
//! aggregator state atomically, `--resume` continues from the watermarks
//! (the resumed artifact is byte-identical to an uninterrupted run, and
//! `--trials` may grow but never shrink), `--store` fronts the engine
//! with a content-addressed cell cache so unchanged re-runs simulate
//! nothing, and `--max-trials-then-exit` is the deliberate kill switch CI
//! uses to exercise resume. Corrupt or mismatched state fails with
//! `file: message` context and exit 2.
//!
//! `bench` measures single-threaded engine throughput (slots/sec, wall
//! time, fast-forward speedup) per catalog cell; `profile` breaks one
//! cell's time down by engine phase and telemetry counter; `store`
//! lists, renders, and garbage-collects store entries; `diff` compares
//! two artifacts (file paths or `store:KEY` references) and exits
//! non-zero when any relative delta exceeds `--threshold` — together
//! they are the perf-trajectory regression gate. `diff` ignores the
//! build stamp and wall-clock leaves unless `--no-default-ignore` is
//! given.

use rcb_campaign::{
    describe_campaign, diff, find, jsonin, load_spec, profile_cell, registry, run_bench,
    run_campaign_service, run_campaign_traced, BenchConfig, CampaignConfig, CampaignSpec,
    ProfileConfig, ServiceConfig, ServiceRun, Store, DEFAULT_IGNORES, DEFAULT_STORE_DIR,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  rcb list\n  rcb describe <scenario>\n  rcb run <scenario> \
         [--trials N] [--seed S] [--threads K] [--max-slots M] [--batch-width W] \
         [--out FILE] [--perf] [--trace-out FILE] [--quiet]\n               \
         [--state-dir DIR] [--resume] [--checkpoint-every K] [--store DIR] \
         [--max-trials-then-exit N]\n  \
         rcb run --spec <file.toml|file.json> [same flags as above]\n  \
         rcb bench [scenario ...] [--quick] [--trials N] [--seed S] [--max-slots M] \
         [--no-reference] [--batch-width W] [--min-wall S] [--out FILE] [--quiet]\n  \
         rcb profile <scenario> <cell> [--trials N] [--seed S] [--max-slots M]\n  \
         rcb store list|show <key>|gc [--store DIR]\n  \
         rcb diff <a.json|store:KEY> <b.json|store:KEY> [--threshold X] \
         [--ignore KEY ...] [--no-default-ignore] [--store DIR]\n\
         \nscenarios:\n{}",
        registry()
            .iter()
            .map(|s| format!("  {:<18} {}", s.name, s.summary))
            .collect::<Vec<_>>()
            .join("\n")
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    let Some(v) = v else {
        eprintln!("missing value for {flag}");
        usage()
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("describe") => match args.get(1) {
            Some(name) => cmd_describe(name),
            None => usage(),
        },
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("profile") => match (args.get(1), args.get(2)) {
            (Some(name), Some(cell)) => cmd_profile(name, cell, &args[3..]),
            _ => usage(),
        },
        Some("store") => cmd_store(&args[1..]),
        Some("diff") => match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => cmd_diff(a, b, &args[3..]),
            _ => usage(),
        },
        _ => usage(),
    }
}

fn cmd_list() {
    println!("scenario catalog ({} entries):\n", registry().len());
    for s in registry() {
        let cells = (s.build)().cells.len();
        println!("  {:<18} {:>3} cells  {}", s.name, cells, s.summary);
    }
    println!("\nrun with: rcb run <scenario> --trials 1000 --out BENCH_<scenario>.json");
}

fn cmd_describe(name: &str) {
    let Some(s) = find(name) else {
        eprintln!("unknown scenario: {name}");
        usage()
    };
    print!("{}", describe_campaign(&(s.build)(), s.summary));
}

fn cmd_run(rest: &[String]) {
    let mut cfg = CampaignConfig {
        progress: true,
        ..CampaignConfig::default()
    };
    let mut svc = ServiceConfig::default();
    let mut name: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => spec_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--trials" => cfg.trials_per_cell = parse(arg, it.next()),
            "--seed" => cfg.seed = parse(arg, it.next()),
            "--threads" => cfg.threads = parse(arg, it.next()),
            "--max-slots" => cfg.max_slots = Some(parse(arg, it.next())),
            "--batch-width" => cfg.batch_width = parse(arg, it.next()),
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--trace-out" => trace_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--perf" => cfg.telemetry = true,
            "--quiet" => cfg.progress = false,
            "--state-dir" => {
                svc.state_dir = Some(PathBuf::from(it.next().cloned().unwrap_or_else(|| usage())))
            }
            "--resume" => svc.resume = true,
            "--checkpoint-every" => svc.checkpoint_every = parse(arg, it.next()),
            "--store" => {
                svc.store_dir = Some(PathBuf::from(it.next().cloned().unwrap_or_else(|| usage())))
            }
            "--max-trials-then-exit" => svc.kill_after_trials = Some(parse(arg, it.next())),
            bare if !bare.starts_with('-') && name.is_none() => name = Some(bare.to_string()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    if cfg.trials_per_cell == 0 {
        eprintln!("--trials must be at least 1");
        usage()
    }
    if svc.resume && svc.state_dir.is_none() {
        eprintln!("--resume requires --state-dir");
        usage()
    }
    if svc.kill_after_trials == Some(0) {
        eprintln!("--max-trials-then-exit must be at least 1");
        usage()
    }
    let service_active = svc.state_dir.is_some()
        || svc.store_dir.is_some()
        || svc.resume
        || svc.kill_after_trials.is_some();
    if trace_path.is_some() && service_active {
        eprintln!("--trace-out cannot be combined with the service flags (--state-dir/--resume/--store/--max-trials-then-exit)");
        usage()
    }
    let spec: CampaignSpec = match (&name, &spec_path) {
        (Some(name), None) => {
            let Some(s) = find(name) else {
                eprintln!("unknown scenario: {name}");
                usage()
            };
            (s.build)()
        }
        (None, Some(path)) => load_spec(path).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2)
        }),
        _ => {
            eprintln!("run takes exactly one of <scenario> or --spec FILE");
            usage()
        }
    };

    // Open the artifact file before the (potentially long) run so a bad
    // path fails in milliseconds, not after the campaign.
    let create = |path: &String| {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2)
        })
    };
    let mut out_file = out_path.as_ref().map(create);
    let trace_file = trace_path.as_ref().map(create);

    let threads_used = if trace_path.is_some() {
        1 // deterministic trace line order needs a single writer
    } else {
        rcb_harness::resolve_threads(cfg.threads)
    };
    if cfg.progress {
        eprintln!(
            "[rcb] campaign {}: {} cells x {} trials = {} total, seed {}, {} threads{}",
            spec.name,
            spec.cells.len(),
            cfg.trials_per_cell,
            spec.cells.len() as u64 * cfg.trials_per_cell,
            cfg.seed,
            threads_used,
            if trace_path.is_some() {
                " (trace export is single-threaded)"
            } else {
                ""
            },
        );
    }

    let start = Instant::now();
    let report = match trace_file {
        Some(f) => {
            let mut sink = std::io::BufWriter::new(f);
            run_campaign_traced(&spec, &cfg, &mut sink).unwrap_or_else(|e| {
                eprintln!(
                    "cannot write trace {}: {e}",
                    trace_path.as_deref().unwrap_or("?")
                );
                std::process::exit(2)
            })
        }
        None => match run_campaign_service(&spec, &cfg, &svc) {
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2)
            }
            Ok(ServiceRun::Killed { simulated_trials }) => {
                // Deliberate mid-run exit: checkpoints are on disk, no
                // artifact is written (a partial artifact would be worse
                // than none). Leave no empty --out file behind.
                drop(out_file);
                if let Some(path) = out_path.as_ref() {
                    let _ = std::fs::remove_file(path);
                }
                eprintln!(
                    "[rcb] exited after {simulated_trials} simulated trial(s) (--max-trials-then-exit); \
                     resume with --resume --state-dir {}",
                    svc.state_dir
                        .as_deref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|| "<DIR>".into())
                );
                return;
            }
            Ok(ServiceRun::Complete {
                report,
                store_hits,
                resumed_trials,
                simulated_trials,
            }) => {
                if service_active {
                    eprintln!(
                        "[rcb] service: {store_hits} store hit(s), {resumed_trials} trial(s) \
                         resumed from checkpoints, simulated {simulated_trials} trial(s)"
                    );
                }
                report
            }
        },
    };
    let elapsed = start.elapsed();
    if let Some(path) = trace_path.as_ref() {
        println!("trace written to {path}");
    }

    println!("{}", report.to_table());
    eprintln!("[rcb] completed in {elapsed:.1?}");

    let violations: u64 = report.cells.iter().map(|c| c.safety_violations).sum();
    if violations > 0 {
        eprintln!("[rcb] WARNING: {violations} safety violation(s) — protocol bug");
    }

    if let (Some(f), Some(path)) = (out_file.as_mut(), out_path.as_ref()) {
        f.write_all(report.to_json().as_bytes())
            .expect("write artifact");
        println!("artifact written to {path}");
    }

    if violations > 0 {
        std::process::exit(1);
    }
}

fn cmd_bench(rest: &[String]) {
    let mut cfg = BenchConfig {
        progress: true,
        ..BenchConfig::default()
    };
    // Explicit flags always win over the --quick preset, whatever the
    // argument order.
    let mut quick = false;
    let mut explicit_trials: Option<u64> = None;
    let mut explicit_max_slots: Option<u64> = None;
    let mut names: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trials" => explicit_trials = Some(parse(arg, it.next())),
            "--seed" => cfg.seed = parse(arg, it.next()),
            "--max-slots" => explicit_max_slots = Some(parse(arg, it.next())),
            "--no-reference" => cfg.reference = false,
            "--batch-width" => cfg.batch_width = parse(arg, it.next()),
            "--min-wall" => cfg.min_wall_s = parse(arg, it.next()),
            "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--quiet" => cfg.progress = false,
            name if !name.starts_with('-') => names.push(name.to_string()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    if quick {
        let preset = BenchConfig::quick();
        cfg.trials_per_cell = preset.trials_per_cell;
        cfg.max_slots = preset.max_slots;
    }
    if let Some(t) = explicit_trials {
        cfg.trials_per_cell = t;
    }
    if let Some(m) = explicit_max_slots {
        cfg.max_slots = Some(m);
    }

    let scenarios: Vec<_> = if names.is_empty() {
        registry()
    } else {
        names
            .iter()
            .map(|n| {
                find(n).unwrap_or_else(|| {
                    eprintln!("unknown scenario: {n}");
                    usage()
                })
            })
            .collect()
    };

    let mut out_file = out_path.as_ref().map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2)
        })
    });

    let start = Instant::now();
    let report = run_bench(&scenarios, &cfg);
    println!("{}", report.to_table());
    eprintln!("[rcb bench] completed in {:.1?}", start.elapsed());

    if let (Some(f), Some(path)) = (out_file.as_mut(), out_path.as_ref()) {
        f.write_all(report.to_json().as_bytes())
            .expect("write artifact");
        println!("artifact written to {path}");
    }
}

fn cmd_profile(name: &str, cell: &str, rest: &[String]) {
    let Some(s) = find(name) else {
        eprintln!("unknown scenario: {name}");
        usage()
    };
    let cell_index: usize = cell.parse().unwrap_or_else(|_| {
        eprintln!("bad cell index: {cell} (see `rcb describe {name}`)");
        usage()
    });
    let mut cfg = ProfileConfig::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => cfg.trials = parse(arg, it.next()),
            "--seed" => cfg.seed = parse(arg, it.next()),
            "--max-slots" => cfg.max_slots = Some(parse(arg, it.next())),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    match profile_cell(&s, cell_index, &cfg) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2)
        }
    }
}

fn cmd_store(rest: &[String]) {
    let Some(sub) = rest.first() else { usage() };
    let mut dir = DEFAULT_STORE_DIR.to_string();
    let mut operand: Option<String> = None;
    let mut it = rest[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => dir = it.next().cloned().unwrap_or_else(|| usage()),
            bare if !bare.starts_with('-') && operand.is_none() => operand = Some(bare.to_string()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    let fail = |e: rcb_campaign::ServiceError| -> ! {
        eprintln!("{e}");
        std::process::exit(2)
    };
    let store = Store::new(PathBuf::from(&dir));
    match sub.as_str() {
        "list" => {
            let entries = store.list().unwrap_or_else(|e| fail(e));
            if entries.is_empty() {
                println!("store {dir}: empty");
                return;
            }
            println!("store {dir}: {} entr(ies)\n", entries.len());
            println!(
                "  {:<32} {:<16} {:>4} {:>8} {:>10}  cell",
                "key", "campaign", "cell", "trials", "seed"
            );
            for e in &entries {
                println!(
                    "  {:<32} {:<16} {:>4} {:>8} {:>10}  {}",
                    e.key, e.campaign, e.cell_index, e.trials, e.seed, e.cell
                );
            }
        }
        "show" => {
            let Some(prefix) = operand else {
                eprintln!("store show takes a key (or unique key prefix)");
                usage()
            };
            let text = store.render_cell(&prefix).unwrap_or_else(|e| fail(e));
            println!("{text}");
        }
        "gc" => {
            let (kept, removed) = store.gc().unwrap_or_else(|e| fail(e));
            for key in &removed {
                println!("removed {key}");
            }
            println!(
                "store {dir}: kept {} entr(ies), removed {}",
                kept.len(),
                removed.len()
            );
        }
        _ => {
            eprintln!("unknown store subcommand: {sub}");
            usage()
        }
    }
}

fn cmd_diff(path_a: &str, path_b: &str, rest: &[String]) {
    let mut threshold: Option<f64> = None;
    let mut ignore: Vec<String> = Vec::new();
    let mut default_ignores = true;
    let mut store_dir = DEFAULT_STORE_DIR.to_string();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => threshold = Some(parse(arg, it.next())),
            "--ignore" => ignore.push(it.next().cloned().unwrap_or_else(|| usage())),
            "--no-default-ignore" => default_ignores = false,
            "--store" => store_dir = it.next().cloned().unwrap_or_else(|| usage()),
            _ => {
                eprintln!("unknown flag: {arg}");
                usage()
            }
        }
    }
    if default_ignores {
        ignore.extend(DEFAULT_IGNORES.iter().map(|k| k.to_string()));
    }

    // Operands are either artifact paths or `store:KEY` references, where
    // KEY is any unique prefix of a content key in the artifact store.
    let load = |path: &str| -> rcb_campaign::Json {
        let text = match path.strip_prefix("store:") {
            Some(prefix) => Store::new(PathBuf::from(&store_dir))
                .render_cell(prefix)
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2)
                }),
            None => std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2)
            }),
        };
        jsonin::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2)
        })
    };
    let (a, b) = (load(path_a), load(path_b));

    let out = diff(&a, &b, &ignore).unwrap_or_else(|e| {
        eprintln!("diff failed: {e}");
        std::process::exit(2)
    });

    if out.rows.is_empty() {
        println!(
            "no numeric differences ({} leaves compared, {} ignored)",
            out.compared, out.ignored
        );
        return;
    }
    println!(
        "{} differing leaves of {} compared ({} ignored); max |rel| = {:.3}",
        out.rows.len(),
        out.compared,
        out.ignored,
        out.max_rel()
    );
    for row in &out.rows {
        match row.kind {
            rcb_campaign::DiffKind::Changed => println!(
                "  {:<60} {:>14.4} -> {:>14.4}  ({:+.2}%)",
                row.path,
                row.a,
                row.b,
                row.rel * 100.0
            ),
            rcb_campaign::DiffKind::MissingInB => println!(
                "  {:<60} {:>14.4} -> {:>14}  (missing in {path_b})",
                row.path,
                row.a,
                "-",
                path_b = path_b,
            ),
            rcb_campaign::DiffKind::ExtraInB => println!(
                "  {:<60} {:>14} -> {:>14.4}  (only in {path_b})",
                row.path,
                "-",
                row.b,
                path_b = path_b,
            ),
        }
    }
    if let Some(t) = threshold {
        let violations = out.violations(t);
        if !violations.is_empty() {
            eprintln!(
                "[rcb diff] FAIL: {} leaves exceed the {:.3} relative threshold",
                violations.len(),
                t
            );
            std::process::exit(1);
        }
        println!("all deltas within the {t:.3} threshold");
    }
}
