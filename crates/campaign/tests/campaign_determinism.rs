//! Cross-cutting guarantees of the campaign subsystem, exercised through
//! the public API exactly as the `rcb` binary uses it:
//!
//! 1. the JSON artifact is byte-identical across thread counts,
//! 2. streaming aggregation agrees with exact batch statistics,
//! 3. every registered scenario can actually run end to end,
//! 4. telemetry collection (`--perf`) and trace export (`--trace-out`)
//!    never change a deterministic leaf of the artifact.

use rcb_campaign::{
    diff, find, jsonin, registry, run_campaign, run_campaign_traced, CampaignConfig, CampaignSpec,
    CellSpec, DEFAULT_IGNORES,
};
use rcb_harness::{cell_trial_seed, run_trial, AdversaryKind, ProtocolKind, TrialSpec};

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        name: "itest".into(),
        description: "integration test campaign".into(),
        cells: vec![
            CellSpec::new(
                ProtocolKind::Naive {
                    n: 32,
                    act_prob: 1.0,
                },
                AdversaryKind::Silent,
            )
            .with_max_slots(100_000),
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n: 16,
                    params: Default::default(),
                },
                AdversaryKind::Uniform {
                    t: 2_000,
                    frac: 0.5,
                },
            )
            .with_max_slots(1_000_000),
        ],
    }
}

/// Same seed ⇒ byte-identical artifact at 1, 2, and 5 threads (the
/// headline determinism guarantee of the engine).
#[test]
fn artifact_is_byte_identical_across_thread_counts() {
    let spec = small_spec();
    let json_at = |threads: usize| {
        run_campaign(
            &spec,
            &CampaignConfig {
                seed: 1234,
                trials_per_cell: 12,
                threads,
                ..Default::default()
            },
        )
        .to_json()
    };
    let reference = json_at(1);
    assert!(reference.contains("\"schema_version\": 5"));
    assert_eq!(reference, json_at(2));
    assert_eq!(reference, json_at(5));
}

/// Turning wall-clock telemetry on (`rcb run --perf`) may only change the
/// host-dependent leaves `rcb diff` ignores by default — every
/// deterministic leaf, including the perf counters, must stay bit-equal.
#[test]
fn telemetry_changes_only_default_ignored_leaves() {
    let spec = small_spec();
    let json_with = |telemetry: bool| {
        run_campaign(
            &spec,
            &CampaignConfig {
                seed: 99,
                trials_per_cell: 4,
                threads: 2,
                telemetry,
                ..Default::default()
            },
        )
        .to_json()
    };
    let (off, on) = (json_with(false), json_with(true));
    let ignores: Vec<String> = DEFAULT_IGNORES.iter().map(|k| k.to_string()).collect();
    let a = jsonin::parse(&off).unwrap();
    let b = jsonin::parse(&on).unwrap();
    let out = diff(&a, &b, &ignores).expect("artifacts comparable");
    assert!(
        out.rows.is_empty(),
        "telemetry must not move deterministic leaves: {:?}",
        out.rows.iter().map(|r| &r.path).collect::<Vec<_>>()
    );
    assert!(out.ignored > 0, "wall leaves were actually present");
    // And with timing off, the artifact is bit-identical to the default —
    // the wall leaves are hard zeros, not small timings.
    assert_eq!(
        off,
        run_campaign(
            &spec,
            &CampaignConfig {
                seed: 99,
                trials_per_cell: 4,
                threads: 5,
                ..Default::default()
            },
        )
        .to_json()
    );
}

/// The traced sequential path (`rcb run --trace-out`) produces exactly the
/// parallel engine's artifact, and the trace itself is deterministic and
/// schema-tagged.
#[test]
fn traced_run_matches_parallel_run_and_trace_is_deterministic() {
    let spec = small_spec();
    let cfg = CampaignConfig {
        seed: 31,
        trials_per_cell: 3,
        threads: 4,
        ..Default::default()
    };
    let parallel = run_campaign(&spec, &cfg).to_json();
    let mut trace_a: Vec<u8> = Vec::new();
    let traced = run_campaign_traced(&spec, &cfg, &mut trace_a)
        .expect("vec sink cannot fail")
        .to_json();
    assert_eq!(parallel, traced, "observers cannot influence a run");

    let mut trace_b: Vec<u8> = Vec::new();
    run_campaign_traced(&spec, &cfg, &mut trace_b).unwrap();
    assert_eq!(trace_a, trace_b, "trace files are byte-deterministic");

    let text = String::from_utf8(trace_a).unwrap();
    let mut lines = text.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("\"kind\":\"rcb-trace\""));
    assert!(header.contains("\"schema_version\":1"));
    // Every line parses as JSON; trial_start/trial_end pair up per trial.
    let mut starts = 0u64;
    let mut ends = 0u64;
    for line in text.lines() {
        let parsed = jsonin::parse(line).expect("every trace line is JSON");
        drop(parsed);
        if line.contains("\"event\":\"trial_start\"") {
            starts += 1;
        }
        if line.contains("\"event\":\"trial_end\"") {
            ends += 1;
        }
    }
    let total = spec.cells.len() as u64 * cfg.trials_per_cell;
    assert_eq!(starts, total);
    assert_eq!(ends, total);
}

/// The streaming aggregates in the report equal exact batch statistics
/// computed from the same trials run individually through the harness.
#[test]
fn streaming_aggregation_matches_exact_batch() {
    let spec = small_spec();
    let seed = 777u64;
    let trials = 9u64;
    let report = run_campaign(
        &spec,
        &CampaignConfig {
            seed,
            trials_per_cell: trials,
            threads: 3,
            ..Default::default()
        },
    );

    for (ci, cell_spec) in spec.cells.iter().enumerate() {
        // Re-run the exact trials the engine derives for this cell.
        let results: Vec<_> = (0..trials)
            .map(|t| {
                run_trial(
                    &TrialSpec::new(
                        cell_spec.protocol.clone(),
                        cell_spec.adversary.clone(),
                        cell_trial_seed(seed, ci as u64, t),
                    )
                    .with_max_slots(cell_spec.max_slots),
                )
            })
            .collect();
        let times: Vec<f64> = results.iter().map(|r| r.completion_time() as f64).collect();
        let exact_mean = times.iter().sum::<f64>() / times.len() as f64;
        let exact_min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

        let cell = &report.cells[ci];
        assert_eq!(cell.trials, trials);
        assert_eq!(cell.completion_slots.count, trials);
        assert!(
            (cell.completion_slots.mean - exact_mean).abs() < 1e-9,
            "cell {ci}: streaming mean {} vs exact {exact_mean}",
            cell.completion_slots.mean
        );
        assert_eq!(cell.completion_slots.min, exact_min, "cell {ci} min");
        assert_eq!(cell.completion_slots.max, exact_max, "cell {ci} max");
        // Sketch quantiles carry a 1% relative-error guarantee.
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact_p50 = sorted[(0.5 * (sorted.len() - 1) as f64).round() as usize];
        let rel = (cell.completion_slots.p50 - exact_p50).abs() / exact_p50;
        assert!(rel <= 0.0101, "cell {ci}: p50 rel error {rel}");
        // Exact counters must match too.
        let exact_completed = results.iter().filter(|r| r.completed).count() as u64;
        assert_eq!(cell.completed, exact_completed);
        assert_eq!(cell.safety_violations, 0);
    }
}

/// Every catalog entry expands and survives a 2-trial micro-campaign
/// end-to-end (the same path `rcb run <scenario> --trials 2` takes), with
/// a slot cap so a regression cannot hang CI.
#[test]
fn every_registered_scenario_runs() {
    assert!(registry().len() >= 8);
    for s in registry() {
        let spec = (s.build)();
        let report = run_campaign(
            &spec,
            &CampaignConfig {
                seed: 5,
                trials_per_cell: 2,
                threads: 0,
                max_slots: Some(2_000_000),
                ..Default::default()
            },
        );
        assert_eq!(report.cells.len(), spec.cells.len(), "{}", s.name);
        for cell in &report.cells {
            assert_eq!(cell.trials, 2, "{}: cell ran wrong trial count", s.name);
            assert_eq!(
                cell.safety_violations, 0,
                "{}: safety violation in {} vs {}",
                s.name, cell.protocol, cell.adversary
            );
        }
        let json = report.to_json();
        assert!(json.contains(&format!("\"campaign\": \"{}\"", s.name)));
    }
}

/// `find` resolves exactly the registered names.
#[test]
fn catalog_lookup() {
    for s in registry() {
        assert!(find(s.name).is_some());
    }
    assert!(find("bogus").is_none());
}
