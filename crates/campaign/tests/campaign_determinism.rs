//! Cross-cutting guarantees of the campaign subsystem, exercised through
//! the public API exactly as the `rcb` binary uses it:
//!
//! 1. the JSON artifact is byte-identical across thread counts,
//! 2. streaming aggregation agrees with exact batch statistics,
//! 3. every registered scenario can actually run end to end.

use rcb_campaign::{find, registry, run_campaign, CampaignConfig, CampaignSpec, CellSpec};
use rcb_harness::{run_trial, AdversaryKind, ProtocolKind, TrialSpec};
use rcb_sim::derive_seed;

fn small_spec() -> CampaignSpec {
    CampaignSpec {
        name: "itest".into(),
        description: "integration test campaign".into(),
        cells: vec![
            CellSpec::new(
                ProtocolKind::Naive {
                    n: 32,
                    act_prob: 1.0,
                },
                AdversaryKind::Silent,
            )
            .with_max_slots(100_000),
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n: 16,
                    params: Default::default(),
                },
                AdversaryKind::Uniform {
                    t: 2_000,
                    frac: 0.5,
                },
            )
            .with_max_slots(1_000_000),
        ],
    }
}

/// Same seed ⇒ byte-identical artifact at 1, 2, and 5 threads (the
/// headline determinism guarantee of the engine).
#[test]
fn artifact_is_byte_identical_across_thread_counts() {
    let spec = small_spec();
    let json_at = |threads: usize| {
        run_campaign(
            &spec,
            &CampaignConfig {
                seed: 1234,
                trials_per_cell: 12,
                threads,
                ..Default::default()
            },
        )
        .to_json()
    };
    let reference = json_at(1);
    assert!(reference.contains("\"schema_version\": 2"));
    assert_eq!(reference, json_at(2));
    assert_eq!(reference, json_at(5));
}

/// The streaming aggregates in the report equal exact batch statistics
/// computed from the same trials run individually through the harness.
#[test]
fn streaming_aggregation_matches_exact_batch() {
    let spec = small_spec();
    let seed = 777u64;
    let trials = 9u64;
    let report = run_campaign(
        &spec,
        &CampaignConfig {
            seed,
            trials_per_cell: trials,
            threads: 3,
            ..Default::default()
        },
    );

    for (ci, cell_spec) in spec.cells.iter().enumerate() {
        // Re-run the exact trials the engine derives for this cell.
        let results: Vec<_> = (0..trials)
            .map(|t| {
                let g = ci as u64 * trials + t;
                run_trial(
                    &TrialSpec::new(
                        cell_spec.protocol.clone(),
                        cell_spec.adversary.clone(),
                        derive_seed(seed, g),
                    )
                    .with_max_slots(cell_spec.max_slots),
                )
            })
            .collect();
        let times: Vec<f64> = results.iter().map(|r| r.completion_time() as f64).collect();
        let exact_mean = times.iter().sum::<f64>() / times.len() as f64;
        let exact_min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

        let cell = &report.cells[ci];
        assert_eq!(cell.trials, trials);
        assert_eq!(cell.completion_slots.count, trials);
        assert!(
            (cell.completion_slots.mean - exact_mean).abs() < 1e-9,
            "cell {ci}: streaming mean {} vs exact {exact_mean}",
            cell.completion_slots.mean
        );
        assert_eq!(cell.completion_slots.min, exact_min, "cell {ci} min");
        assert_eq!(cell.completion_slots.max, exact_max, "cell {ci} max");
        // Sketch quantiles carry a 1% relative-error guarantee.
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact_p50 = sorted[(0.5 * (sorted.len() - 1) as f64).round() as usize];
        let rel = (cell.completion_slots.p50 - exact_p50).abs() / exact_p50;
        assert!(rel <= 0.0101, "cell {ci}: p50 rel error {rel}");
        // Exact counters must match too.
        let exact_completed = results.iter().filter(|r| r.completed).count() as u64;
        assert_eq!(cell.completed, exact_completed);
        assert_eq!(cell.safety_violations, 0);
    }
}

/// Every catalog entry expands and survives a 2-trial micro-campaign
/// end-to-end (the same path `rcb run <scenario> --trials 2` takes), with
/// a slot cap so a regression cannot hang CI.
#[test]
fn every_registered_scenario_runs() {
    assert!(registry().len() >= 8);
    for s in registry() {
        let spec = (s.build)();
        let report = run_campaign(
            &spec,
            &CampaignConfig {
                seed: 5,
                trials_per_cell: 2,
                threads: 0,
                max_slots: Some(2_000_000),
                ..Default::default()
            },
        );
        assert_eq!(report.cells.len(), spec.cells.len(), "{}", s.name);
        for cell in &report.cells {
            assert_eq!(cell.trials, 2, "{}: cell ran wrong trial count", s.name);
            assert_eq!(
                cell.safety_violations, 0,
                "{}: safety violation in {} vs {}",
                s.name, cell.protocol, cell.adversary
            );
        }
        let json = report.to_json();
        assert!(json.contains(&format!("\"campaign\": \"{}\"", s.name)));
    }
}

/// `find` resolves exactly the registered names.
#[test]
fn catalog_lookup() {
    for s in registry() {
        assert!(find(s.name).is_some());
    }
    assert!(find("bogus").is_none());
}
