//! `rcb run --spec docs/examples/nemesis.toml` must reproduce the built-in
//! `nemesis` scenario leaf-for-leaf: the example spec file and the catalog
//! entry describe the same campaign, so with equal seed/trials the cell
//! reports — timelines, survivor metrics, telemetry counters, every
//! deterministic leaf — are identical.

use rcb_campaign::{find, parse_spec, run_campaign, CampaignConfig};

const EXAMPLE: &str = include_str!("../../../docs/examples/nemesis.toml");

#[test]
fn example_spec_reproduces_the_builtin_nemesis_cells_leaf_for_leaf() {
    let from_file = parse_spec(EXAMPLE, "docs/examples/nemesis.toml").expect("example spec parses");
    let builtin = (find("nemesis").expect("nemesis is registered").build)();
    assert_eq!(from_file.name, builtin.name);
    assert_eq!(
        from_file.cells.len(),
        builtin.cells.len(),
        "example file mirrors the whole catalog entry"
    );

    let cfg = CampaignConfig {
        seed: 42,
        trials_per_cell: 2,
        threads: 2,
        max_slots: Some(200_000),
        ..Default::default()
    };
    let a = run_campaign(&from_file, &cfg);
    let b = run_campaign(&builtin, &cfg);
    for (i, (ca, cb)) in a.cells.iter().zip(&b.cells).enumerate() {
        assert_eq!(ca, cb, "cell {i} diverged between spec file and catalog");
    }

    // The schedules actually materialized: every cell carries a schedule
    // block and the artifact exposes the v4 markers CI greps for.
    assert!(a.cells.iter().all(|c| c.schedule.is_some()));
    let json = a.to_json();
    assert!(json.contains("\"schema_version\": 5"));
    assert!(json.contains("\"timeline\""));
    assert!(json.contains("\"survivors\""));
}
