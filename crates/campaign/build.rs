//! Stamp the git revision into the binary as `RCB_CODE_VERSION`, so every
//! campaign/bench artifact records which code produced it (the first field
//! the ROADMAP's content-addressed artifact store needs). Falls back to
//! `"unknown"` when git is unavailable (offline tarball builds).

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=RCB_CODE_VERSION={hash}");
    // Re-stamp when HEAD moves (best-effort: the path may not exist in
    // exported tarballs, which cargo tolerates).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
