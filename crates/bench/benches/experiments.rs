//! One criterion bench per experiment table (E1–E12): a scaled-down kernel
//! of each experiment's workload, so `cargo bench` tracks the wall-clock
//! cost of regenerating every table in EXPERIMENTS.md. (The full tables are
//! produced by the `repro` binary; these kernels use one seed and the
//! smallest sweep point so each iteration stays in the tens-of-milliseconds
//! range.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rcb_core::AdvParams;
use rcb_harness::{run_trial, AdversaryKind, ProtocolKind, TrialSpec};

fn kernel(spec: TrialSpec) -> u64 {
    let r = run_trial(&spec);
    assert_eq!(r.safety_violations, 0);
    r.slots
}

fn adv_params() -> AdvParams {
    AdvParams {
        alpha: 0.24,
        ..AdvParams::default()
    }
}

fn bench_experiment_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    // E1: naive epidemic through 90% jamming, n = 256.
    g.bench_function("e01_epidemic_90pct", |b| {
        b.iter(|| {
            black_box(kernel(
                TrialSpec::new(
                    ProtocolKind::Naive {
                        n: 256,
                        act_prob: 1.0,
                    },
                    AdversaryKind::Uniform {
                        t: u64::MAX / 2,
                        frac: 0.9,
                    },
                    1,
                )
                .with_max_slots(100_000),
            ))
        });
    });

    // E2: MultiCastCore under uniform jamming (one budget point).
    g.bench_function("e02_core_t2m", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::Core {
                    n: 64,
                    t: 2_000_000,
                    params: Default::default(),
                },
                AdversaryKind::Uniform {
                    t: 2_000_000,
                    frac: 0.9,
                },
                2,
            )))
        });
    });

    // E3: burst recovery.
    g.bench_function("e03_core_burst", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::Core {
                    n: 64,
                    t: 2_000_000,
                    params: Default::default(),
                },
                AdversaryKind::Burst {
                    t: 2_000_000,
                    start: 0,
                },
                3,
            )))
        });
    });

    // E4/E5: one MultiCast sweep point (they share the workload).
    g.bench_function("e04_e05_multicast_t400k", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::MultiCast {
                    n: 16,
                    params: Default::default(),
                },
                AdversaryKind::Uniform {
                    t: 400_000,
                    frac: 0.9,
                },
                4,
            )))
        });
    });

    // E6: the single-channel comparator at the same point.
    g.bench_function("e06_single_channel_t400k", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::SingleChannel {
                    n: 16,
                    params: Default::default(),
                },
                AdversaryKind::Uniform {
                    t: 400_000,
                    frac: 0.9,
                },
                5,
            )))
        });
    });

    // E7: one safety-matrix cell (95% jamming).
    g.bench_function("e07_safety_cell", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::MultiCast {
                    n: 32,
                    params: Default::default(),
                },
                AdversaryKind::Uniform {
                    t: 100_000,
                    frac: 0.95,
                },
                6,
            )))
        });
    });

    // E8: MultiCastAdv, T = 0 kernel (n = 16, α = 0.24).
    g.bench_function("e08_adv_n16_t0", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::Adv {
                    n: 16,
                    params: adv_params(),
                },
                AdversaryKind::Silent,
                7,
            )))
        });
    });

    // E9: helper audit under 30% jamming.
    g.bench_function("e09_adv_jammed", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::Adv {
                    n: 16,
                    params: adv_params(),
                },
                AdversaryKind::Uniform {
                    t: 200_000,
                    frac: 0.3,
                },
                8,
            )))
        });
    });

    // E10: MultiCast(C) at C = 8.
    g.bench_function("e10_multicast_c8", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::MultiCastC {
                    n: 64,
                    c: 8,
                    params: Default::default(),
                },
                AdversaryKind::Uniform {
                    t: 500_000,
                    frac: 0.6,
                },
                9,
            )))
        });
    });

    // E11: MultiCastAdv(C) at C = 8 (= n/2: the cheap cap point).
    g.bench_function("e11_adv_c8", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::Adv {
                    n: 16,
                    params: AdvParams {
                        channel_cap: Some(8),
                        ..adv_params()
                    },
                },
                AdversaryKind::Silent,
                10,
            )))
        });
    });

    // E12: one competitiveness row (MultiCast at a large budget).
    g.bench_function("e12_competitive_row", |b| {
        b.iter(|| {
            black_box(kernel(TrialSpec::new(
                ProtocolKind::MultiCast {
                    n: 16,
                    params: Default::default(),
                },
                AdversaryKind::Uniform {
                    t: 1_600_000,
                    frac: 0.9,
                },
                11,
            )))
        });
    });

    g.finish();
}

criterion_group!(benches, bench_experiment_kernels);
criterion_main!(benches);
