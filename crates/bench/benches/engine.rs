//! Microbenchmarks of the simulator substrate: RNG, subset sampler, channel
//! board, and end-to-end engine slot throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcb_core::{CoreParams, MultiCastCore};
use rcb_sim::{
    bernoulli_subset, run, ChannelBoard, EngineConfig, JamSet, NoAdversary, Payload, Xoshiro256,
};

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1));
    g.bench_function("next_u64", |b| {
        let mut rng = Xoshiro256::seeded(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("gen_range_1000", |b| {
        let mut rng = Xoshiro256::seeded(2);
        b.iter(|| black_box(rng.gen_range(1000)));
    });
    g.bench_function("next_f64", |b| {
        let mut rng = Xoshiro256::seeded(3);
        b.iter(|| black_box(rng.next_f64()));
    });
    g.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampler");
    for &(m, p) in &[(1024usize, 1.0 / 64.0), (1024, 0.25), (65536, 1.0 / 64.0)] {
        g.throughput(Throughput::Elements(m as u64));
        g.bench_with_input(
            BenchmarkId::new("bernoulli_subset", format!("m{m}_p{p:.3}")),
            &(m, p),
            |b, &(m, p)| {
                let mut rng = Xoshiro256::seeded(4);
                let mut out = Vec::with_capacity((m as f64 * p * 2.0) as usize);
                b.iter(|| {
                    out.clear();
                    bernoulli_subset(&mut rng, m, p, &mut out);
                    black_box(out.len())
                });
            },
        );
    }
    g.finish();
}

fn bench_channel_board(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel_board");
    g.bench_function("resolve_32_bcasts_32_listens", |b| {
        let mut board = ChannelBoard::new();
        let mut rng = Xoshiro256::seeded(5);
        b.iter(|| {
            board.clear();
            for _ in 0..32 {
                board.add_broadcast(rng.gen_range(512), Payload::Data);
            }
            board.resolve();
            let mut noise = 0u32;
            for _ in 0..32 {
                if board.outcome(rng.gen_range(512), false) == rcb_sim::Feedback::Noise {
                    noise += 1;
                }
            }
            black_box(noise)
        });
    });
    g.finish();
}

fn bench_jamset(c: &mut Criterion) {
    let mut g = c.benchmark_group("jamset");
    let window = JamSet::Window {
        start: 100,
        len: 200,
    };
    let list = JamSet::from_channels((0..200).map(|i| i * 3).collect());
    g.bench_function("window_contains", |b| {
        let mut ch = 0u64;
        b.iter(|| {
            ch = (ch + 7) % 512;
            black_box(window.contains(ch, 512))
        });
    });
    g.bench_function("list_contains", |b| {
        let mut ch = 0u64;
        b.iter(|| {
            ch = (ch + 7) % 512;
            black_box(list.contains(ch, 512))
        });
    });
    g.finish();
}

/// End-to-end engine throughput: physical slots per second on the
/// `MultiCastCore` workload (sparse sampling, n/2 channels).
fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for &n in &[64u64, 256, 1024] {
        let slots = 20_000u64;
        g.throughput(Throughput::Elements(slots));
        g.bench_with_input(BenchmarkId::new("core_slots", n), &n, |b, &n| {
            b.iter(|| {
                let mut proto = MultiCastCore::with_params(
                    n,
                    1000,
                    CoreParams {
                        a: 64.0,
                        ..Default::default()
                    },
                );
                let out = Simulation::new(&mut proto).config(EngineConfig::capped(slots)).run(7);
                black_box(out.slots)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rng,
    bench_sampler,
    bench_channel_board,
    bench_jamset,
    bench_engine_throughput
);
criterion_main!(benches);
