//! Protocol kernels under criterion: wall-clock cost of simulating each
//! algorithm of the paper (fixed slot budgets, so numbers are comparable
//! engine-throughput measurements rather than completion times).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcb_adversary::UniformFraction;
use rcb_core::baseline::{Decay, NaiveEpidemic, SingleChannelRcb};
use rcb_core::{AdvParams, MultiCast, MultiCastAdv, MultiCastC, MultiCastCore};
use rcb_sim::{EngineConfig, Simulation};

const SLOTS: u64 = 50_000;

fn bench_protocol_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_kernels");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SLOTS));
    let n = 64u64;
    let cfg = EngineConfig::capped(SLOTS);

    g.bench_function("multicast_core", |b| {
        b.iter(|| {
            let mut p = MultiCastCore::new(n, 100_000);
            black_box(Simulation::new(&mut p).config(cfg).run(1).slots)
        });
    });
    g.bench_function("multicast", |b| {
        b.iter(|| {
            let mut p = MultiCast::new(n);
            black_box(Simulation::new(&mut p).config(cfg).run(1).slots)
        });
    });
    g.bench_function("multicast_c8", |b| {
        b.iter(|| {
            let mut p = MultiCastC::new(n, 8);
            black_box(Simulation::new(&mut p).config(cfg).run(1).slots)
        });
    });
    g.bench_function("multicast_adv", |b| {
        b.iter(|| {
            let mut p = MultiCastAdv::with_params(
                n,
                AdvParams {
                    alpha: 0.24,
                    ..Default::default()
                },
            );
            black_box(Simulation::new(&mut p).config(cfg).run(1).slots)
        });
    });
    g.bench_function("single_channel", |b| {
        b.iter(|| {
            let mut p = SingleChannelRcb::new(n);
            black_box(Simulation::new(&mut p).config(cfg).run(1).slots)
        });
    });
    g.bench_function("naive_epidemic_sparse", |b| {
        b.iter(|| {
            let mut p = NaiveEpidemic::with_act_prob(n, 1.0 / 64.0);
            black_box(Simulation::new(&mut p).config(cfg).run(1).slots)
        });
    });
    g.bench_function("decay", |b| {
        b.iter(|| {
            let mut p = Decay::new(n);
            // Decay's dense per-slot sampling is the slow path; cap lower.
            black_box(Simulation::new(&mut p).config(EngineConfig::capped(5_000)).run(1).slots)
        });
    });
    g.finish();
}

/// Jamming overhead: how much does an active adversary cost the engine?
fn bench_adversary_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("adversary_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SLOTS));
    let n = 64u64;
    let cfg = EngineConfig::capped(SLOTS);
    for frac in [0.0f64, 0.5, 0.9] {
        g.bench_with_input(BenchmarkId::new("uniform_frac", frac), &frac, |b, &frac| {
            b.iter(|| {
                let mut p = MultiCast::new(n);
                if frac == 0.0 {
                    black_box(Simulation::new(&mut p).config(cfg).run(2).slots)
                } else {
                    let mut eve = UniformFraction::new(u64::MAX / 2, frac, 3);
                    black_box(Simulation::new(&mut p).adversary(&mut eve).config(cfg).run(2).slots)
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocol_kernels, bench_adversary_overhead);
criterion_main!(benches);
