//! # rcb-bench — experiment regeneration and benchmarks
//!
//! The paper has no empirical tables or figures — its "evaluation" is its
//! theorems. This crate regenerates **every theorem and load-bearing lemma
//! as an empirical table** (experiments E1–E12, indexed in DESIGN.md §4 and
//! recorded in EXPERIMENTS.md):
//!
//! ```text
//! cargo run --release -p rcb-bench --bin repro -- --exp all      # quick scale
//! cargo run --release -p rcb-bench --bin repro -- --exp e5 --full
//! cargo run --release -p rcb-bench --bin repro -- --list
//! ```
//!
//! Criterion benches (`crates/bench/benches/`) additionally measure the
//! simulator's wall-clock performance on a scaled-down kernel of each
//! experiment, plus engine/sampler microbenchmarks.

pub mod experiments;
pub mod scale;

pub use experiments::{all_experiments, Experiment};
pub use scale::Scale;
