//! `repro` — regenerate every experiment table of the reproduction.
//!
//! The paper (Chen & Zheng, SPAA 2019) is evaluated through its theorems;
//! this binary regenerates the empirical table for each of them
//! (`repro --list` prints the experiment index).
//!
//! ```text
//! repro --list                 # show the experiment index
//! repro --exp e5               # regenerate one table (quick scale)
//! repro --exp e5,e8            # several
//! repro --exp all --full       # everything, full scale
//! repro --exp all --out report.md   # also write the reports to a file
//! ```

use rcb_bench::{all_experiments, Scale};
use std::io::Write as _;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--list] [--exp <id>[,<id>…]|all] [--full] [--threads <k>] [--out <file>]\n\
         ids: {}",
        all_experiments()
            .iter()
            .map(|e| e.id)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut list = false;
    let mut out_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--full" => scale = Scale::Full,
            "--exp" => match it.next() {
                Some(v) => wanted.extend(v.split(',').map(|s| s.trim().to_lowercase())),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                // Experiments resolve their worker counts through
                // `rcb_harness::resolve_threads`, which honours RCB_THREADS.
                Some(k) if k > 0 => std::env::set_var("RCB_THREADS", k.to_string()),
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let experiments = all_experiments();
    if list || (wanted.is_empty()) {
        println!("experiment index:\n");
        for e in &experiments {
            println!("  {:>4}  {}\n        {}\n", e.id, e.title, e.claim);
        }
        if !list {
            println!("run with: repro --exp all   (or --exp e1,e2,…; add --full for more seeds)");
        }
        return;
    }

    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<_> = experiments
        .iter()
        .filter(|e| run_all || wanted.iter().any(|w| w == e.id))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment matches {wanted:?}");
        usage();
    }

    let mut full_report = format!(
        "# Reproduction run — scale: {scale:?}, {} experiment(s)\n\n",
        selected.len()
    );
    print!("{full_report}");
    let total = Instant::now();
    let n_selected = selected.len();
    for (i, e) in selected.into_iter().enumerate() {
        eprintln!(
            "[repro {}/{}] running {} — {} …",
            i + 1,
            n_selected,
            e.id,
            e.title
        );
        let start = Instant::now();
        let report = (e.run)(scale);
        let stamp = format!("_[{} regenerated in {:.1?}]_\n", e.id, start.elapsed());
        println!("{report}");
        println!("{stamp}");
        full_report.push_str(&report);
        full_report.push('\n');
        full_report.push_str(&stamp);
        full_report.push('\n');
    }
    println!("total wall time: {:.1?}", total.elapsed());
    if let Some(path) = out_path {
        let mut f =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        f.write_all(full_report.as_bytes()).expect("write report");
        println!("report written to {path}");
    }
}
