//! Experiment scale presets.

/// How big to run an experiment. `Quick` regenerates every table with
/// enough seeds/points to show the shapes in minutes; `Full` adds seeds,
/// sweep points, and larger `n`/`T` for tighter fits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    /// Seeds per sweep point.
    pub fn seeds(&self) -> u64 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 8,
        }
    }

    /// Seeds for expensive (`MultiCastAdv`-class) trials.
    pub fn seeds_heavy(&self) -> u64 {
        match self {
            Scale::Quick => 2,
            Scale::Full => 4,
        }
    }

    /// Pick between a quick and a full variant of a constant.
    pub fn pick<T: Copy>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(Scale::Full.seeds() > Scale::Quick.seeds());
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
