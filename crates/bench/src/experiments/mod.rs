//! The experiment registry: every theorem/lemma of the paper mapped to a
//! regenerable table (`repro --list` prints the index). Every experiment
//! runs on the campaign engine — cells in, streaming per-cell reports out —
//! so no code path here re-materializes per-trial result vectors.

mod exp_adv;
mod exp_core;
mod exp_extension;
mod exp_multicast;
mod exp_multihop;
mod exp_multimessage;
mod exp_summary;

use crate::scale::Scale;

/// One reproducible experiment.
pub struct Experiment {
    /// Short id (`e1` … `e12`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper claim it reproduces.
    pub claim: &'static str,
    /// Regenerate the table; returns a markdown report.
    pub run: fn(Scale) -> String,
}

/// All experiments, in index order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            title: "Epidemic growth under heavy jamming",
            claim: "Claim 4.1.1 / Lemma 4.1: with 90% of channels jammed, the \
                    epidemic still completes in O(lg n) slots",
            run: exp_core::e1_epidemic_growth,
        },
        Experiment {
            id: "e2",
            title: "MultiCastCore time and cost vs T",
            claim: "Theorem 4.4: time and per-node cost are O(T/n + lg T̂)",
            run: exp_core::e2_core_scaling,
        },
        Experiment {
            id: "e3",
            title: "MultiCastCore fast termination after jamming stops",
            claim: "Section 4 remark: after Eve stops, all nodes halt within \
                    ~one Θ(lg T̂)-slot iteration, independent of T",
            run: exp_core::e3_core_fast_termination,
        },
        Experiment {
            id: "e4",
            title: "MultiCast time vs T",
            claim: "Theorem 5.4(a): all nodes terminate within O(T/n + lg²n) slots",
            run: exp_multicast::e4_multicast_time,
        },
        Experiment {
            id: "e5",
            title: "MultiCast energy vs T",
            claim: "Theorem 5.4(b): per-node cost is O(√(T/n)·√lg T·lg n + lg²n)",
            run: exp_multicast::e5_multicast_cost,
        },
        Experiment {
            id: "e6",
            title: "Multi-channel vs single-channel broadcast",
            claim: "Headline: Õ(T/n) multi-channel time vs Õ(T + n) single-channel \
                    time at the same Õ(√(T/n)) energy",
            run: exp_multicast::e6_vs_single_channel,
        },
        Experiment {
            id: "e7",
            title: "Safety and liveness matrix",
            claim: "Lemmas 4.2/5.2 (never halt uninformed) and 4.3/5.3 (always \
                    halt once jamming is weak) across all adversaries",
            run: exp_multicast::e7_safety_matrix,
        },
        Experiment {
            id: "e8",
            title: "MultiCastAdv time and cost vs T",
            claim: "Theorem 6.10: time Õ(T/n^{1−2α} + n^{2α}), cost \
                    Õ(√(T/n^{1−2α}) + n^{2α})",
            run: exp_adv::e8_adv_scaling,
        },
        Experiment {
            id: "e9",
            title: "Helper localization",
            claim: "Lemmas 6.1–6.3: helpers form only at i > lg n, j = lg n − 1 \
                    (the protocol implicitly measures n)",
            run: exp_adv::e9_helper_localization,
        },
        Experiment {
            id: "e10",
            title: "MultiCast(C) channel sweep",
            claim: "Corollary 7.1: time O(T/C + (n/C)·lg²n) — inversely \
                    proportional to C — at C-independent energy",
            run: exp_multicast::e10_channel_sweep,
        },
        Experiment {
            id: "e11",
            title: "MultiCastAdv(C) under limited channels",
            claim: "Theorem 7.2 / Corollary C.1: helpers form at j = lg C; time \
                    dominated by Õ(T/C^{1−2α} + n^{2+2α}/C^{2−2α})",
            run: exp_adv::e11_adv_limited,
        },
        Experiment {
            id: "e12",
            title: "Resource competitiveness summary",
            claim: "Definition 3.1: max node cost = ρ(T) + τ with ρ(T) ∈ o(T) \
                    for every protocol; naive baselines pay Θ(T)",
            run: exp_summary::e12_competitiveness,
        },
        Experiment {
            id: "e13",
            title: "Adaptive adversaries (extension)",
            claim: "Section 8 conjecture: the protocols survive an adaptive \
                    (band-sensing, reactive) Eve essentially unchanged",
            run: exp_extension::e13_adaptive_adversary,
        },
        Experiment {
            id: "e14",
            title: "Channel-count ablation (extension)",
            claim: "Section 4 design choice: n/2 channels balances parallelism \
                    against meeting probability",
            run: exp_extension::e14_channel_count_ablation,
        },
        Experiment {
            id: "e15",
            title: "Halting-threshold ablation (extension)",
            claim: "Figures 1/2 design choice: the Nn < R·p/2 threshold \
                    separates collision noise from sustainable jamming",
            run: exp_extension::e15_halt_threshold_ablation,
        },
        Experiment {
            id: "e16",
            title: "Sparse-epidemic ablation (extension)",
            claim: "Section 5 design choice: sparsity costs the epidemic ~p⁻² \
                    time and ~p⁻¹ energy, but prices waiting at √R per \
                    iteration — the origin of the √T bound",
            run: exp_extension::e16_sparse_epidemic_ablation,
        },
        Experiment {
            id: "e17",
            title: "Multi-hop topologies (extension)",
            claim: "Beyond the paper's single-hop model: over a connectivity \
                    graph, flooding time scales with diameter, and per-round \
                    edge churn (Ahmadi–Kuhn dynamic networks) delays but \
                    never strands reachable nodes",
            run: exp_multihop::e17_multihop,
        },
        Experiment {
            id: "e18",
            title: "Multi-message broadcast (extension)",
            claim: "Ahmadi-Kuhn multi-message model: k concurrent payloads \
                    multiplexed through one relay schedule complete in \
                    ~k ln k of the single-message time, and jamming only \
                    delays them",
            run: exp_multimessage::e18_multimessage,
        },
    ]
}

/// Shared report header.
pub(crate) fn header(exp: &str, title: &str, claim: &str, setup: &str) -> String {
    format!("## {exp} — {title}\n\n**Claim.** {claim}\n\n**Setup.** {setup}\n\n")
}

/// Run a grid of cells under the campaign engine and return the per-cell
/// reports in cell order. The campaign-engine path (rather than raw
/// `run_trials`) gives experiments streaming aggregation — no per-trial
/// result vectors — plus positional seed derivation for free.
pub(crate) fn campaign(
    name: &str,
    cells: Vec<rcb_campaign::CellSpec>,
    seeds: u64,
    master_seed: u64,
) -> Vec<rcb_campaign::CellReport> {
    let spec = rcb_campaign::CampaignSpec {
        name: name.to_string(),
        description: String::new(),
        cells,
    };
    rcb_campaign::run_campaign(
        &spec,
        &rcb_campaign::CampaignConfig {
            seed: master_seed,
            trials_per_cell: seeds,
            threads: 0,
            max_slots: None,
            progress: false,
            telemetry: false,
            batch_width: 1,
        },
    )
    .cells
}

/// 95% half-width on the completion-time mean from a cell's streaming
/// moments.
pub(crate) fn ci95_of(m: &rcb_campaign::MetricReport) -> f64 {
    1.96 * m.std_dev / (m.count as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let exps = all_experiments();
        assert_eq!(exps.len(), 18, "12 paper experiments + 6 extensions");
        for (k, e) in exps.iter().enumerate() {
            assert_eq!(e.id, format!("e{}", k + 1));
            assert!(!e.title.is_empty());
            assert!(!e.claim.is_empty());
        }
    }
}
