//! Experiment E12: the resource-competitiveness summary table. Runs on the
//! campaign engine — three cells (T = 0, T = lo, T = hi) per protocol,
//! aggregated streamingly.

use super::{campaign, header};
use crate::scale::Scale;
use rcb_campaign::CellSpec;
use rcb_core::AdvParams;
use rcb_harness::{AdversaryKind, ProtocolKind};
use rcb_stats::Table;

/// E12 — Definition 3.1 across the whole protocol line-up.
///
/// Competitiveness is an *asymptotic* statement — `ρ(T) ∈ o(T)` — so the
/// verdict is based on the measured growth exponent of max node cost with
/// respect to Eve's spend (cost ∝ spendᵝ between two budgets 4x apart):
/// `β` well below 1 means Eve's return on investment decays and she goes
/// bankrupt first; `β ≈ 1` (the naive baselines) means nodes match her
/// spending one-for-one.
pub fn e12_competitiveness(scale: Scale) -> String {
    let n = 16u64;
    let t_hi = scale.pick(8_000_000u64, 32_000_000u64);
    let t_lo = t_hi / 4;
    let seeds = scale.seeds_heavy();
    let alpha = 0.24;

    let mut out = header(
        "E12",
        "Resource competitiveness summary",
        "Definition 3.1: an algorithm is (ρ, τ)-resource competitive if every \
         node's cost is ≤ ρ(T) + τ with ρ(T) ∈ o(T). The paper's protocols \
         achieve ρ(T) = Õ(√T·…); naive baselines pay Θ(T). Verdict column: \
         measured exponent β of cost vs Eve's spend (β < 1 ⇔ competitive).",
        &format!(
            "n = {n}; each protocol at budgets T = {t_lo} and {t_hi} against its \
             worst line-up jammer (uniform 90% for the MultiCast family, \
             phase-targeted for MultiCastAdv, full-band burst for Decay); \
             {seeds} seeds; τ column = measured T = 0 cost."
        ),
    );

    let adv_params = AdvParams {
        alpha,
        ..AdvParams::default()
    };
    let jammer_for = |proto: &ProtocolKind, t: u64| -> AdversaryKind {
        match proto {
            ProtocolKind::Adv { .. } => AdversaryKind::TargetAdvPhase {
                t,
                frac: 0.9,
                phase: 3,
                from_epoch: 1,
                params: adv_params,
            },
            ProtocolKind::Decay { .. } => AdversaryKind::Burst { t, start: 0 },
            _ => AdversaryKind::Uniform { t, frac: 0.9 },
        }
    };
    let lineup: Vec<ProtocolKind> = vec![
        ProtocolKind::Core {
            n,
            t: t_hi,
            params: Default::default(),
        },
        ProtocolKind::MultiCast {
            n,
            params: Default::default(),
        },
        ProtocolKind::MultiCastC {
            n,
            c: 4,
            params: Default::default(),
        },
        ProtocolKind::Adv {
            n,
            params: adv_params,
        },
        ProtocolKind::Decay { n },
    ];

    let mut table = Table::new(&[
        "protocol",
        "τ (T=0 cost)",
        &format!("cost @ T={t_lo}"),
        &format!("cost @ T={t_hi}"),
        "cost/Eve @ hi",
        "β measured",
        "β theory",
        "competitive?",
    ]);
    // Each protocol's predicted cost-growth exponent and its competitiveness
    // mechanism. MultiCastCore is the interesting case: Theorem 4.4 gives it
    // *linear* cost O(T/n + lg T̂) — it is competitive through the 1/n ratio
    // (Eve pays n-fold per unit of node drain), not through a sub-linear
    // exponent. The √T protocols have both.
    let theory = |name: &str| -> (&'static str, bool) {
        match name {
            "MultiCastCore" => ("1.0 (O(T/n))", true),
            "MultiCast" | "MultiCast(C)" => ("0.5 + polylog", true),
            "MultiCastAdv" | "MultiCastAdv(C)" => ("0.5 + polylog", true),
            _ => ("1.0 (Θ(T))", false),
        }
    };
    // Three campaign cells per protocol: the T = 0 floor, the low budget,
    // and the high budget, in that order.
    let cells: Vec<CellSpec> = lineup
        .iter()
        .flat_map(|proto| {
            [
                AdversaryKind::Silent,
                jammer_for(proto, t_lo),
                jammer_for(proto, t_hi),
            ]
            .into_iter()
            .map(|adv| CellSpec::new(proto.clone(), adv).with_max_slots(2_000_000_000))
        })
        .collect();
    let reports = campaign("e12-competitiveness", cells, seeds, 405_000);

    for (k, proto) in lineup.iter().enumerate() {
        let chunk = &reports[3 * k..3 * k + 3];
        for c in chunk {
            assert!(
                c.completed == c.trials && c.safety_violations == 0,
                "E12 {} cell failed: {c:?}",
                proto.name()
            );
        }
        let tau = chunk[0].max_node_cost.mean;
        let (c_lo, e_lo) = (chunk[1].max_node_cost.mean, chunk[1].eve_spent.mean);
        let (c_hi, e_hi) = (chunk[2].max_node_cost.mean, chunk[2].eve_spent.mean);
        // Exponent of the jamming-induced cost (subtract the τ floor so the
        // T = 0 term of the theorem does not flatten the slope) vs spend.
        let excess_lo = (c_lo - tau).max(1.0);
        let excess_hi = (c_hi - tau).max(1.0);
        let beta = (excess_hi / excess_lo).ln() / (e_hi / e_lo.max(1.0)).ln();
        let ratio = c_hi / e_hi.max(1.0);
        let (beta_theory, expect_competitive) = theory(proto.name());
        // Definition 3.1 verdict: competitive if the node-to-Eve ratio is
        // far below 1 (the O(T/n) mechanism) or the growth exponent is
        // clearly sub-linear (the √T mechanism).
        let verdict = ratio < 0.1 || beta < 0.85;
        table.row(&[
            proto.name().to_string(),
            format!("{tau:.0}"),
            format!("{c_lo:.0}"),
            format!("{c_hi:.0}"),
            format!("{ratio:.4}"),
            format!("{beta:.2}"),
            beta_theory.to_string(),
            match (verdict, expect_competitive) {
                (true, true) => "yes".into(),
                (false, false) => "NO (as expected: Θ(T) control)".to_string(),
                (v, _) => format!("UNEXPECTED ({v})"),
            },
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(
        "\n**Result.** The two competitiveness mechanisms the paper's theorems \
         predict both show up: MultiCastCore's cost grows linearly (β ≈ 1, as \
         Theorem 4.4 says) but at a constant ~1/n-scale ratio to Eve's spend, \
         while MultiCast/MultiCast(C)/MultiCastAdv grow sub-linearly (β ≈ \
         0.5–0.8: the √T signature plus the polylog drift of the Õ bounds), so \
         their ratios *fall* as Eve spends more. The Decay control pays her \
         one-for-one (β = 1 at ratio 1) — no competitiveness without the \
         noise-triggered termination machinery. MultiCastAdv's absolute \
         numbers are the largest: the price of knowing neither n nor T is the \
         Õ(n^{2α}) τ-term and bigger constants, exactly as Theorem 6.10 \
         warns.\n",
    );
    out
}
