//! Experiment E18: multi-message broadcast (extension).
//!
//! The paper broadcasts a single message `m`; the multi-message model
//! (Ahmadi & Kuhn, arXiv:1610.02931) carries `k` concurrent payloads.
//! `MultiMessageCast` multiplexes them through one relay schedule — every
//! partial holder re-broadcasts a uniformly random message it knows — and
//! the engine's per-message tracking gives each payload its own completion
//! slot. This experiment measures how completion time scales with `k` at
//! fixed `n`, and that jamming delays but does not break the multiplexed
//! flood. It is the first experiment whose protocol was written once
//! against the unified `Simulation` core (no per-entry-point code).

use super::{campaign, ci95_of, header};
use crate::scale::Scale;
use rcb_campaign::CellSpec;
use rcb_harness::{AdversaryKind, ProtocolKind};
use rcb_stats::Table;

/// E18 — completion time grows with the payload count `k`; the multiplexed
/// flood survives jamming.
pub fn e18_multimessage(scale: Scale) -> String {
    let seeds = scale.seeds();
    let mm = |k: u32| ProtocolKind::MultiMessage {
        n: 32,
        k,
        channels: 16,
        p: 0.25,
    };

    let mut out = header(
        "E18",
        "Multi-message broadcast",
        "Extension of the single-message model: k concurrent payloads \
         multiplexed through one relay schedule (Ahmadi-Kuhn multi-message \
         broadcast). Each additional payload dilutes every broadcast slot \
         k ways, so completion time grows with k — roughly the \
         coupon-collector factor — while a budget-limited jammer still only \
         delays completion.",
        &format!(
            "MultiMessageCast at n = 32 on 16 channels (p = 0.25, any holder \
             relays a random known message) for k in {{1, 2, 4, 8, 16}}, plus \
             a half-band-jammed k = 4 cell (T = 20k); {seeds} seeds per cell \
             via the campaign engine."
        ),
    );

    let ks = [1u32, 2, 4, 8, 16];
    let mut cells: Vec<CellSpec> = ks
        .iter()
        .map(|&k| CellSpec::new(mm(k), AdversaryKind::Silent).with_max_slots(20_000_000))
        .collect();
    cells.push(
        CellSpec::new(
            mm(4),
            AdversaryKind::Uniform {
                t: 20_000,
                frac: 0.5,
            },
        )
        .with_max_slots(20_000_000),
    );
    let reports = campaign("e18-multimessage", cells, seeds, 180_000);

    let base = reports[0].completion_slots.mean;
    let mut table = Table::new(&["k", "adversary", "ok", "time (slots)", "± ci95", "vs k=1"]);
    for (label, c) in ks
        .iter()
        .map(|k| k.to_string())
        .chain(std::iter::once("4 (jammed)".into()))
        .zip(&reports)
    {
        assert_eq!(
            c.completed, c.trials,
            "E18 k={label}: every payload must reach everyone: {c:?}"
        );
        assert_eq!(c.safety_violations, 0, "E18 k={label}: safety violation");
        table.row(&[
            label,
            c.adversary.clone(),
            format!("{}/{}", c.completed, c.trials),
            format!("{:.0}", c.completion_slots.mean),
            format!("{:.0}", ci95_of(&c.completion_slots)),
            format!("{:.2}x", c.completion_slots.mean / base),
        ]);
    }
    out.push_str(&table.markdown());

    let k16 = reports[4].completion_slots.mean;
    let jammed = reports[5].completion_slots.mean;
    let clean_k4 = reports[2].completion_slots.mean;
    assert!(
        k16 > base,
        "16 payloads must take longer than one: {k16} vs {base}"
    );
    assert!(
        jammed >= clean_k4,
        "jamming cannot speed the flood up: {jammed} vs {clean_k4}"
    );
    out.push_str(&format!(
        "\n**Result.** Sixteen concurrent payloads take {:.1}x the \
         single-message time — the k-way broadcast dilution times the \
         coupon-collector tail (~k ln k), since the slowest payload gets only \
         1/k of the relay slots and must still reach every node. The \
         half-band jammer stretches the k = 4 cell by {:.2}x but every trial \
         still completes: multiplexing inherits the single-message model's \
         jamming resilience unchanged.\n",
        k16 / base,
        jammed / clean_k4,
    ));
    out
}
