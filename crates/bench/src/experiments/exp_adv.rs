//! Experiments E8, E9, E11: `MultiCastAdv` and `MultiCastAdv(C)`.
//!
//! All three run on the **campaign engine**: one cell per sweep point,
//! streaming aggregation, and (for the helper audits of E9/E11) the
//! per-cell `helper_events` histogram instead of per-trial helper vectors.

use super::{campaign, header};
use crate::scale::Scale;
use rcb_campaign::CellSpec;
use rcb_core::AdvParams;
use rcb_harness::{AdversaryKind, ProtocolKind};
use rcb_stats::{fit_power_law, Table};

fn adv_params(alpha: f64) -> AdvParams {
    AdvParams {
        alpha,
        ..AdvParams::default()
    }
}

/// E8 — `MultiCastAdv` time/cost vs `T` and the `n^{2α}` floor
/// (Theorem 6.10).
pub fn e8_adv_scaling(scale: Scale) -> String {
    let alpha = 0.24;
    let n = 16u64;
    let lgn_minus1 = 3u32;
    let budgets: &[u64] = scale.pick(
        &[0, 2_000_000, 8_000_000][..],
        &[0, 2_000_000, 8_000_000, 32_000_000][..],
    );
    let seeds = scale.seeds_heavy();

    let mut out = header(
        "E8",
        "MultiCastAdv time and cost vs T",
        "Theorem 6.10: without knowing n or T, every node halts within \
         Õ(T/n^{1−2α} + n^{2α}) slots at Õ(√(T/n^{1−2α}) + n^{2α}) energy. \
         Eve's best strategy (Section 6.1) is to target the one \"good\" phase \
         j = lg n − 1 of each epoch — which is exactly what this adversary does.",
        &format!(
            "n = {n}, α = {alpha}; schedule-targeted jammer hits 90% of channels \
             in every step of phase j = {lgn_minus1}; {seeds} seeds per budget. \
             Floor sweep: T = 0 across n ∈ {{16, 32, 64}}."
        ),
    );

    // --- T sweep at fixed n: one campaign cell per budget -------------------
    let cells: Vec<CellSpec> = budgets
        .iter()
        .map(|&t| {
            CellSpec::new(
                ProtocolKind::Adv {
                    n,
                    params: adv_params(alpha),
                },
                if t == 0 {
                    AdversaryKind::Silent
                } else {
                    AdversaryKind::TargetAdvPhase {
                        t,
                        frac: 0.9,
                        phase: lgn_minus1,
                        from_epoch: 1,
                        params: adv_params(alpha),
                    }
                },
            )
        })
        .collect();
    let reports = campaign("e8-adv-scaling", cells, seeds, 101_000);
    for c in &reports {
        assert!(
            c.completed == c.trials && c.safety_violations == 0,
            "E8 cell failed: {c:?}"
        );
    }
    let mut table = Table::new(&["T", "time (slots)", "max node cost", "cost/Eve spend"]);
    let mut time_pts = Vec::new();
    let mut cost_pts = Vec::new();
    let mut floor_time = 0.0f64;
    let mut floor_cost = 0.0f64;
    for (c, &t) in reports.iter().zip(budgets) {
        let time = c.completion_slots.mean;
        let cost = c.max_node_cost.mean;
        let eve = c.eve_spent.mean;
        if t == 0 {
            floor_time = time;
            floor_cost = cost;
        } else {
            // Fit the jamming-induced excess over the T = 0 floor against
            // Eve's actual spend (past the last blockable epoch she stops
            // spending), so the Õ(n^{2α}) τ-term does not flatten the slope.
            time_pts.push((eve, (time - floor_time).max(1.0)));
            cost_pts.push((eve, (cost - floor_cost).max(1.0)));
        }
        table.row(&[
            t.to_string(),
            format!("{time:.0}"),
            format!("{cost:.0}"),
            if eve > 0.0 {
                format!("{:.4}", cost / eve)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&table.markdown());
    let (_, bt, rt) = fit_power_law(&time_pts);
    let (_, bc, rc) = fit_power_law(&cost_pts);
    if cost_pts.len() >= 2 {
        out.push_str("\n```text\nexcess max node cost vs Eve's spend:\n");
        out.push_str(&rcb_stats::loglog_plot(&cost_pts, 56, 10));
        out.push_str("```\n");
    }
    out.push_str(&format!(
        "\nexcess time ∝ spend^{bt:.2} (r² = {rt:.3}; theorem: ~1), excess max \
         cost ∝ spend^{bc:.2} (r² = {rc:.3}; theorem: 0.5 plus polylog drift — \
         the lg³-factors the Õ hides grow with the epoch index, so small-scale \
         fits land in [0.5, 0.8] and drift down as T grows).\n"
    ));

    // --- n^{2α} floor at T = 0: one cell per n ------------------------------
    let ns = [16u64, 32, 64];
    let floor_cells: Vec<CellSpec> = ns
        .iter()
        .map(|&fn_| {
            CellSpec::new(
                ProtocolKind::Adv {
                    n: fn_,
                    params: adv_params(alpha),
                },
                AdversaryKind::Silent,
            )
        })
        .collect();
    let floor_reports = campaign("e8-adv-floor", floor_cells, seeds, 105_000);
    let mut ftable = Table::new(&["n", "T=0 time (slots)", "T=0 max cost", "cost/n^{2α}·lg³n"]);
    let mut fpts = Vec::new();
    for (c, &fn_) in floor_reports.iter().zip(&ns) {
        assert!(c.completed == c.trials && c.safety_violations == 0);
        let time = c.completion_slots.mean;
        let cost = c.max_node_cost.mean;
        fpts.push((fn_ as f64, cost));
        let lgn = (fn_ as f64).log2();
        ftable.row(&[
            fn_.to_string(),
            format!("{time:.0}"),
            format!("{cost:.0}"),
            format!(
                "{:.1}",
                cost / ((fn_ as f64).powf(2.0 * alpha) * lgn.powi(3))
            ),
        ]);
    }
    out.push('\n');
    out.push_str(&ftable.markdown());
    let (_, bn, rn) = fit_power_law(&fpts);
    out.push_str(&format!(
        "\n**Result.** T = 0 cost ∝ n^{bn:.2} (r² = {rn:.3}); the theorem's floor \
         is n^{{2α}}·lg³n with 2α = {:.2} — the lg³n factor adds ~0.3 to the \
         small-n fitted exponent, so the measured value should sit between 2α \
         and 2α + 0.5.\n",
        2.0 * alpha
    ));
    out
}

/// E9 — helpers form only at `(i > lg n, j = lg n − 1)` (Lemmas 6.1–6.3).
pub fn e9_helper_localization(scale: Scale) -> String {
    let alpha = 0.24;
    let ns: &[u64] = scale.pick(&[16, 32][..], &[16, 32, 64][..]);
    let seeds = scale.seeds_heavy();
    let t = 200_000u64;

    let mut out = header(
        "E9",
        "Helper localization",
        "Lemmas 6.1–6.3: while all nodes are active, a node can become helper \
         only in phases with i > lg n and j = lg n − 1 — the phase whose 2^j = \
         n/2 channel guess matches the network. The helper event is therefore an \
         implicit measurement of n.",
        &format!(
            "α = {alpha}; adversaries: silent and a 30% uniform jammer (T = {t}); \
             {seeds} seeds per cell. Every helper event's (i, j) is audited."
        ),
    );

    // One campaign cell per n × adversary; the audit reads the cell's
    // streamed helper_events histogram rather than per-trial vectors.
    let mut cells = Vec::new();
    for &n in ns {
        for adv in [
            AdversaryKind::Silent,
            AdversaryKind::Uniform { t, frac: 0.3 },
        ] {
            cells.push(CellSpec::new(
                ProtocolKind::Adv {
                    n,
                    params: adv_params(alpha),
                },
                adv,
            ));
        }
    }
    let reports = campaign("e9-helper-localization", cells, seeds, 202_000);

    let mut table = Table::new(&[
        "n",
        "adversary",
        "helper events",
        "at j = lg n − 1",
        "at i > lg n",
        "earliest epoch",
    ]);
    let mut bad = 0u64;
    for c in &reports {
        // Audit each cell against the n it actually ran with.
        let n = c.n;
        let want_j = (n as f64).log2() as u32 - 1;
        let lgn = (n as f64).log2() as u32;
        assert!(
            c.completed == c.trials && c.safety_violations == 0,
            "E9 cell failed: {c:?}"
        );
        let mut events = 0u64;
        let mut at_j = 0u64;
        let mut at_i = 0u64;
        let mut earliest = u32::MAX;
        for h in &c.helper_events {
            events += h.count;
            if h.phase == want_j {
                at_j += h.count;
            } else {
                bad += h.count;
            }
            if h.epoch > lgn {
                at_i += h.count;
            } else {
                bad += h.count;
            }
            earliest = earliest.min(h.epoch);
        }
        table.row(&[
            n.to_string(),
            c.adversary.clone(),
            events.to_string(),
            at_j.to_string(),
            at_i.to_string(),
            earliest.to_string(),
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\n**Result.** {bad} of the audited helper events fell outside \
         (i > lg n, j = lg n − 1) — the localization lemmas hold exactly, under \
         jamming as well as in the clean run.\n"
    ));
    out
}

/// E11 — `MultiCastAdv(C)`: cut-off phases, helpers at `j = lg C`
/// (Theorem 7.2 / Corollary C.1).
pub fn e11_adv_limited(scale: Scale) -> String {
    let alpha = 0.24;
    let n = 16u64;
    let cs: &[u64] = scale.pick(&[4, 8][..], &[2, 4, 8][..]);
    let seeds = scale.seeds_heavy();

    let mut out = header(
        "E11",
        "MultiCastAdv(C) under limited channels",
        "Theorem 7.2 / Corollary C.1: with only C ≤ n/2 channels, phases above \
         j = lg C are cut off and helpers now form at j = lg C (where the N'm \
         condition is dropped); runtime degrades gracefully as C shrinks \
         (the Õ(n^{2+2α}/C^{2−2α}) floor).",
        &format!("n = {n}, α = {alpha}, C ∈ {cs:?}, no jamming, {seeds} seeds."),
    );

    let cells: Vec<CellSpec> = cs
        .iter()
        .map(|&c| {
            CellSpec::new(
                ProtocolKind::Adv {
                    n,
                    params: AdvParams {
                        channel_cap: Some(c),
                        ..adv_params(alpha)
                    },
                },
                AdversaryKind::Silent,
            )
            .with_max_slots(2_000_000_000)
        })
        .collect();
    let reports = campaign("e11-adv-limited", cells, seeds, 303_000);

    let mut table = Table::new(&[
        "C",
        "lg C",
        "helper phases seen",
        "time (slots)",
        "max node cost",
    ]);
    let mut times = Vec::new();
    for (report, &c) in reports.iter().zip(cs) {
        assert!(
            report.completed == report.trials && report.safety_violations == 0,
            "E11 cell failed (C={c}): {report:?}"
        );
        // Audit the streamed helper histogram: every promotion must land
        // exactly at phase j = lg C (Theorem 7.2's cut-off condition).
        let want_j = (c as f64).log2() as u32;
        let mut phases = std::collections::BTreeSet::new();
        for h in &report.helper_events {
            phases.insert(h.phase);
            assert_eq!(h.phase, want_j, "helper outside lg C (C={c})");
        }
        let time = report.completion_slots.mean;
        let cost = report.max_node_cost.mean;
        times.push((c as f64, time));
        table.row(&[
            c.to_string(),
            want_j.to_string(),
            format!("{phases:?}"),
            format!("{time:.0}"),
            format!("{cost:.0}"),
        ]);
    }
    out.push_str(&table.markdown());
    let mono = times.windows(2).all(|w| w[0].1 >= w[1].1);
    out.push_str(&format!(
        "\n**Result.** Every helper event lands exactly at j = lg C, and runtime \
         is {} in C (fewer channels ⇒ a worse n-estimate is accepted later ⇒ \
         more epochs), matching the Õ(n^{{2+2α}}/C^{{2−2α}}) floor's direction.\n",
        if mono {
            "monotonically decreasing"
        } else {
            "NOT monotone (unexpected)"
        }
    ));
    out
}
