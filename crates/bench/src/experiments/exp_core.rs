//! Experiments E1–E3: the epidemic primitive and `MultiCastCore`.

use super::header;
use crate::scale::Scale;
use rcb_harness::{run_trials, AdversaryKind, ProtocolKind, TrialSpec};
use rcb_stats::{fit_power_law, Summary, Table};

/// E1 — epidemic growth beats 90% jamming (Claim 4.1.1 / Lemma 4.1).
pub fn e1_epidemic_growth(scale: Scale) -> String {
    let ns: &[u64] = scale.pick(&[64, 256, 1024][..], &[64, 128, 256, 512, 1024][..]);
    let fracs = [0.0, 0.5, 0.9];
    let seeds = scale.seeds().max(5);

    let mut out = header(
        "E1",
        "Epidemic growth under heavy jamming",
        "Claim 4.1.1 / Lemma 4.1: even with 90% of all n/2 channels jammed in \
         every slot, the number of informed nodes keeps growing geometrically, \
         so the naive epidemic completes in O(lg n) slots.",
        &format!(
            "NaiveEpidemic (everyone acts every slot) on n/2 channels; uniform \
             jammer with unbounded budget jamming a fixed fraction; {seeds} seeds; \
             time = slots until all n nodes are informed."
        ),
    );

    let mut table = Table::new(&[
        "n",
        "jam 0% (slots)",
        "jam 50% (slots)",
        "jam 90% (slots)",
        "90% slots / lg n",
    ]);
    let mut per_lgn = Vec::new();
    for &n in ns {
        let mut cells = vec![n.to_string()];
        let mut jam90 = 0.0;
        for &frac in &fracs {
            let specs: Vec<TrialSpec> = (0..seeds)
                .map(|s| {
                    TrialSpec::new(
                        ProtocolKind::Naive { n, act_prob: 1.0 },
                        if frac == 0.0 {
                            AdversaryKind::Silent
                        } else {
                            AdversaryKind::Uniform {
                                t: u64::MAX / 2,
                                frac,
                            }
                        },
                        11_000 + n + s,
                    )
                    .with_max_slots(10_000_000)
                })
                .collect();
            let rs = run_trials(&specs, 0);
            assert!(rs.iter().all(|r| r.completed), "E1: epidemic must complete");
            let times: Vec<f64> = rs.iter().map(|r| r.completion_time() as f64).collect();
            let s = Summary::of(&times).expect("nonempty");
            cells.push(format!("{:.0} ± {:.0}", s.mean, s.ci95()));
            if frac == 0.9 {
                jam90 = s.mean;
            }
        }
        let lgn = (n as f64).log2();
        per_lgn.push(jam90 / lgn);
        cells.push(format!("{:.1}", jam90 / lgn));
        table.row(&cells);
    }
    out.push_str(&table.markdown());
    let spread = per_lgn.iter().cloned().fold(f64::MIN, f64::max)
        / per_lgn.iter().cloned().fold(f64::MAX, f64::min);
    out.push_str(&format!(
        "\n**Result.** Completion under 90% jamming stays within a {spread:.2}x band \
         of c·lg n across a {}x range of n — logarithmic growth as claimed; \
         jamming a constant fraction of channels costs only a constant factor.\n",
        ns[ns.len() - 1] / ns[0]
    ));
    out
}

/// E2 — `MultiCastCore` time & cost scale as `O(T/n + lg T̂)` (Theorem 4.4).
pub fn e2_core_scaling(scale: Scale) -> String {
    let n = 64u64;
    // Budgets start where T/n dominates the Θ(lg T̂)-slot iteration floor
    // (R ≈ 250k slots; Eve's 90%-band jamming costs ~29/slot, so T = 8M buys
    // ~280k jammed slots ≈ one iteration).
    let budgets: &[u64] = scale.pick(
        &[0, 8_000_000, 64_000_000, 512_000_000][..],
        &[0, 8_000_000, 32_000_000, 128_000_000, 512_000_000][..],
    );
    let seeds = scale.seeds().min(3);

    let mut out = header(
        "E2",
        "MultiCastCore time and cost vs T",
        "Theorem 4.4: every node's running time *and* energy are \
         O(T/n + max{lg T, lg n}), i.e. both scale linearly in T once T \
         dominates the logarithmic floor.",
        &format!(
            "n = {n} (32 channels), uniform jammer at 90% of the band; Core is \
             given the true T; {seeds} seeds per budget."
        ),
    );

    let mut table = Table::new(&["T", "time (slots)", "time·n/T", "max node cost", "cost·n/T"]);
    let mut time_points = Vec::new();
    let mut cost_points = Vec::new();
    for &t in budgets {
        let specs: Vec<TrialSpec> = (0..seeds)
            .map(|s| {
                TrialSpec::new(
                    ProtocolKind::Core {
                        n,
                        t,
                        params: Default::default(),
                    },
                    if t == 0 {
                        AdversaryKind::Silent
                    } else {
                        AdversaryKind::Uniform { t, frac: 0.9 }
                    },
                    22_000 + t + s,
                )
            })
            .collect();
        let rs = run_trials(&specs, 0);
        for r in &rs {
            assert!(
                r.completed && r.safety_violations == 0,
                "E2 trial failed: {r:?}"
            );
        }
        let time = rs.iter().map(|r| r.completion_time() as f64).sum::<f64>() / rs.len() as f64;
        let cost = rs.iter().map(|r| r.max_cost as f64).sum::<f64>() / rs.len() as f64;
        if t > 0 {
            time_points.push((t as f64, time));
            cost_points.push((t as f64, cost));
        }
        table.row(&[
            t.to_string(),
            format!("{time:.0}"),
            if t > 0 {
                format!("{:.3}", time * n as f64 / t as f64)
            } else {
                "-".into()
            },
            format!("{cost:.0}"),
            if t > 0 {
                format!("{:.4}", cost * n as f64 / t as f64)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&table.markdown());
    let (_, bt, rt) = fit_power_law(&time_points);
    let (_, bc, rc) = fit_power_law(&cost_points);
    out.push_str("\n```text\ntime vs T (w.h.p. linear shape):\n");
    out.push_str(&rcb_stats::loglog_plot(&time_points, 56, 10));
    out.push_str("```\n");
    out.push_str(&format!(
        "\n**Result.** time ∝ T^{bt:.2} (r² = {rt:.3}), max cost ∝ T^{bc:.2} \
         (r² = {rc:.3}); Theorem 4.4 predicts exponent 1.0 for both once \
         T ≫ n·lg T̂. Unlike MultiCast (E5), Core's *energy* is also linear in \
         T — the price of its simplicity.\n"
    ));
    out
}

/// E3 — fast termination after a burst ends (Section 4 remark).
pub fn e3_core_fast_termination(scale: Scale) -> String {
    let n = 64u64;
    let budgets: &[u64] = scale.pick(
        &[2_000_000u64, 8_000_000, 32_000_000][..],
        &[2_000_000u64, 8_000_000, 32_000_000, 128_000_000][..],
    );
    let seeds = scale.seeds();

    let mut out = header(
        "E3",
        "MultiCastCore fast termination after jamming stops",
        "Section 4 remark: once Eve stops disrupting, all remaining nodes learn \
         m (if needed) and halt within one Θ(lg T̂)-slot iteration — a property \
         the paper notes other resource-competitive algorithms (needing Θ̃(T)) \
         lack.",
        &format!(
            "n = {n}; front-loaded full-band burst spends the whole budget in the \
             first T/(n/2) slots; gap = (last halt + 1) − (jam end), reported in \
             units of the iteration length R; {seeds} seeds."
        ),
    );

    let mut table = Table::new(&["T", "jam end (slot)", "R", "gap (slots)", "gap / R"]);
    let mut worst_ratio: f64 = 0.0;
    for &t in budgets {
        let jam_end = t / (n / 2);
        let specs: Vec<TrialSpec> = (0..seeds)
            .map(|s| {
                TrialSpec::new(
                    ProtocolKind::Core {
                        n,
                        t,
                        params: Default::default(),
                    },
                    AdversaryKind::Burst { t, start: 0 },
                    33_000 + t + s,
                )
            })
            .collect();
        let rs = run_trials(&specs, 0);
        // Recover R from the protocol parameters.
        let r_len = rcb_core::MultiCastCore::new(n, t).iteration_len();
        let mut gaps = Vec::new();
        for r in &rs {
            assert!(r.completed && r.all_informed, "E3 trial failed");
            let end = r.last_halt.expect("halted") + 1;
            gaps.push(end.saturating_sub(jam_end) as f64);
        }
        let gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let ratio = gap / r_len as f64;
        worst_ratio = worst_ratio.max(ratio);
        table.row(&[
            t.to_string(),
            jam_end.to_string(),
            r_len.to_string(),
            format!("{gap:.0}"),
            format!("{ratio:.2}"),
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\n**Result.** The halt gap stays ≤ {worst_ratio:.2}·R across a 16x range \
         of T — constant in iterations, exactly the paper's \"within one \
         iteration\" recovery (≤ 2R is the guarantee: the tail of the burst \
         iteration plus one clean iteration).\n"
    ));
    out
}
