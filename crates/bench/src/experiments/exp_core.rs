//! Experiments E1–E3: the epidemic primitive and `MultiCastCore`.
//!
//! This family runs on the **campaign engine** (`rcb-campaign`): each
//! experiment declares a grid of [`CellSpec`]s, executes it with
//! `run_campaign` (parallel, streaming aggregation, positional seed
//! derivation), and renders its table from the per-cell reports. E4–E6
//! (`exp_multicast.rs`) follow the same pattern; E7+ still drive
//! `run_trials` directly (remaining port tracked in ROADMAP.md).

use super::{campaign, ci95_of, header};
use crate::scale::Scale;
use rcb_campaign::{CellReport, CellSpec};
use rcb_harness::{AdversaryKind, ProtocolKind};
use rcb_stats::{fit_power_law, Table};

/// 95% half-width on the mean from a cell's streaming moments.
fn ci95(c: &CellReport) -> f64 {
    ci95_of(&c.completion_slots)
}

/// E1 — epidemic growth beats 90% jamming (Claim 4.1.1 / Lemma 4.1).
pub fn e1_epidemic_growth(scale: Scale) -> String {
    let ns: &[u64] = scale.pick(&[64, 256, 1024][..], &[64, 128, 256, 512, 1024][..]);
    let fracs = [0.0, 0.5, 0.9];
    let seeds = scale.seeds().max(5);

    let mut out = header(
        "E1",
        "Epidemic growth under heavy jamming",
        "Claim 4.1.1 / Lemma 4.1: even with 90% of all n/2 channels jammed in \
         every slot, the number of informed nodes keeps growing geometrically, \
         so the naive epidemic completes in O(lg n) slots.",
        &format!(
            "NaiveEpidemic (everyone acts every slot) on n/2 channels; uniform \
             jammer with effectively unbounded budget jamming a fixed fraction; \
             {seeds} seeds per cell via the campaign engine; time = slots until \
             all n nodes are informed."
        ),
    );

    // One cell per (n, frac), in nested loop order.
    let mut cells = Vec::new();
    for &n in ns {
        for &frac in &fracs {
            cells.push(
                CellSpec::new(
                    ProtocolKind::Naive { n, act_prob: 1.0 },
                    if frac == 0.0 {
                        AdversaryKind::Silent
                    } else {
                        AdversaryKind::Uniform {
                            t: u64::MAX / 8,
                            frac,
                        }
                    },
                )
                .with_max_slots(10_000_000),
            );
        }
    }
    let reports = campaign("e1-epidemic-growth", cells, seeds, 11_000);

    let mut table = Table::new(&[
        "n",
        "jam 0% (slots)",
        "jam 50% (slots)",
        "jam 90% (slots)",
        "90% slots / lg n",
    ]);
    let mut per_lgn = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        let mut row = vec![n.to_string()];
        let mut jam90 = 0.0;
        for (j, &frac) in fracs.iter().enumerate() {
            let c = &reports[i * fracs.len() + j];
            assert_eq!(
                c.completed, c.trials,
                "E1: epidemic must complete (n={n}, frac={frac})"
            );
            row.push(format!("{:.0} ± {:.0}", c.completion_slots.mean, ci95(c)));
            if frac == 0.9 {
                jam90 = c.completion_slots.mean;
            }
        }
        let lgn = (n as f64).log2();
        per_lgn.push(jam90 / lgn);
        row.push(format!("{:.1}", jam90 / lgn));
        table.row(&row);
    }
    out.push_str(&table.markdown());
    let spread = per_lgn.iter().cloned().fold(f64::MIN, f64::max)
        / per_lgn.iter().cloned().fold(f64::MAX, f64::min);
    out.push_str(&format!(
        "\n**Result.** Completion under 90% jamming stays within a {spread:.2}x band \
         of c·lg n across a {}x range of n — logarithmic growth as claimed; \
         jamming a constant fraction of channels costs only a constant factor.\n",
        ns[ns.len() - 1] / ns[0]
    ));
    out
}

/// E2 — `MultiCastCore` time & cost scale as `O(T/n + lg T̂)` (Theorem 4.4).
pub fn e2_core_scaling(scale: Scale) -> String {
    let n = 64u64;
    // Budgets start where T/n dominates the Θ(lg T̂)-slot iteration floor
    // (R ≈ 250k slots; Eve's 90%-band jamming costs ~29/slot, so T = 8M buys
    // ~280k jammed slots ≈ one iteration).
    let budgets: &[u64] = scale.pick(
        &[0, 8_000_000, 64_000_000, 512_000_000][..],
        &[0, 8_000_000, 32_000_000, 128_000_000, 512_000_000][..],
    );
    let seeds = scale.seeds().min(3);

    let mut out = header(
        "E2",
        "MultiCastCore time and cost vs T",
        "Theorem 4.4: every node's running time *and* energy are \
         O(T/n + max{lg T, lg n}), i.e. both scale linearly in T once T \
         dominates the logarithmic floor.",
        &format!(
            "n = {n} (32 channels), uniform jammer at 90% of the band; Core is \
             given the true T; {seeds} seeds per budget via the campaign engine."
        ),
    );

    let cells = budgets
        .iter()
        .map(|&t| {
            CellSpec::new(
                ProtocolKind::Core {
                    n,
                    t,
                    params: Default::default(),
                },
                if t == 0 {
                    AdversaryKind::Silent
                } else {
                    AdversaryKind::Uniform { t, frac: 0.9 }
                },
            )
            .with_max_slots(2_000_000_000)
        })
        .collect();
    let reports = campaign("e2-core-scaling", cells, seeds, 22_000);

    let mut table = Table::new(&["T", "time (slots)", "time·n/T", "max node cost", "cost·n/T"]);
    let mut time_points = Vec::new();
    let mut cost_points = Vec::new();
    for (c, &t) in reports.iter().zip(budgets) {
        assert_eq!(c.completed, c.trials, "E2 trial failed at T={t}");
        assert_eq!(c.safety_violations, 0, "E2 safety violation at T={t}");
        let time = c.completion_slots.mean;
        let cost = c.max_node_cost.mean;
        if t > 0 {
            time_points.push((t as f64, time));
            cost_points.push((t as f64, cost));
        }
        table.row(&[
            t.to_string(),
            format!("{time:.0}"),
            if t > 0 {
                format!("{:.3}", time * n as f64 / t as f64)
            } else {
                "-".into()
            },
            format!("{cost:.0}"),
            if t > 0 {
                format!("{:.4}", cost * n as f64 / t as f64)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&table.markdown());
    let (_, bt, rt) = fit_power_law(&time_points);
    let (_, bc, rc) = fit_power_law(&cost_points);
    out.push_str("\n```text\ntime vs T (w.h.p. linear shape):\n");
    out.push_str(&rcb_stats::loglog_plot(&time_points, 56, 10));
    out.push_str("```\n");
    out.push_str(&format!(
        "\n**Result.** time ∝ T^{bt:.2} (r² = {rt:.3}), max cost ∝ T^{bc:.2} \
         (r² = {rc:.3}); Theorem 4.4 predicts exponent 1.0 for both once \
         T ≫ n·lg T̂. Unlike MultiCast (E5), Core's *energy* is also linear in \
         T — the price of its simplicity.\n"
    ));
    out
}

/// E3 — fast termination after a burst ends (Section 4 remark).
pub fn e3_core_fast_termination(scale: Scale) -> String {
    let n = 64u64;
    let budgets: &[u64] = scale.pick(
        &[2_000_000u64, 8_000_000, 32_000_000][..],
        &[2_000_000u64, 8_000_000, 32_000_000, 128_000_000][..],
    );
    let seeds = scale.seeds();

    let mut out = header(
        "E3",
        "MultiCastCore fast termination after jamming stops",
        "Section 4 remark: once Eve stops disrupting, all remaining nodes learn \
         m (if needed) and halt within one Θ(lg T̂)-slot iteration — a property \
         the paper notes other resource-competitive algorithms (needing Θ̃(T)) \
         lack.",
        &format!(
            "n = {n}; front-loaded full-band burst spends the whole budget in the \
             first T/(n/2) slots; gap = (last halt + 1) − (jam end), reported in \
             units of the iteration length R; {seeds} seeds per budget via the \
             campaign engine."
        ),
    );

    let cells = budgets
        .iter()
        .map(|&t| {
            CellSpec::new(
                ProtocolKind::Core {
                    n,
                    t,
                    params: Default::default(),
                },
                AdversaryKind::Burst { t, start: 0 },
            )
            .with_max_slots(2_000_000_000)
        })
        .collect();
    let reports = campaign("e3-core-fast-termination", cells, seeds, 33_000);

    let mut table = Table::new(&["T", "jam end (slot)", "R", "gap (slots)", "gap / R"]);
    let mut worst_ratio: f64 = 0.0;
    for (c, &t) in reports.iter().zip(budgets) {
        let jam_end = t / (n / 2);
        assert_eq!(c.completed, c.trials, "E3 trial failed at T={t}");
        assert_eq!(c.all_informed, c.trials, "E3 trial uninformed at T={t}");
        // Recover R from the protocol parameters.
        let r_len = rcb_core::MultiCastCore::new(n, t).iteration_len();
        // completion_slots = last halt + 1, so the mean gap is the mean
        // completion minus the (deterministic) jam end.
        let gap = (c.completion_slots.mean - jam_end as f64).max(0.0);
        let ratio = gap / r_len as f64;
        worst_ratio = worst_ratio.max(ratio);
        table.row(&[
            t.to_string(),
            jam_end.to_string(),
            r_len.to_string(),
            format!("{gap:.0}"),
            format!("{ratio:.2}"),
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\n**Result.** The halt gap stays ≤ {worst_ratio:.2}·R across a 16x range \
         of T — constant in iterations, exactly the paper's \"within one \
         iteration\" recovery (≤ 2R is the guarantee: the tail of the burst \
         iteration plus one clean iteration).\n"
    ));
    out
}
