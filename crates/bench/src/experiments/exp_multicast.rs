//! Experiments E4–E7 and E10: `MultiCast` and its channel-limited variant.
//!
//! All of them run on the **campaign engine** (like E1–E3): cells in,
//! streaming per-cell reports out — no per-trial result vectors.

use super::{campaign, ci95_of, header};
use crate::scale::Scale;
use rcb_campaign::{CellReport, CellSpec};
use rcb_harness::{AdversaryKind, ProtocolKind};
use rcb_stats::{fit_power_law, Table};

/// Budgets spaced so each step lets Eve block roughly one more `MultiCast`
/// iteration at n = 16 (blocking iteration i costs Θ(R_i·n/2) and R_i grows
/// ~4x per iteration).
fn mc_budgets(scale: Scale) -> &'static [u64] {
    scale.pick(
        &[0, 400_000, 1_600_000, 6_400_000, 35_000_000][..],
        &[0, 400_000, 1_600_000, 6_400_000, 35_000_000, 140_000_000][..],
    )
}

/// A 90%-band uniform jammer, degrading to Silent at `T = 0`.
fn uniform_or_silent(t: u64) -> AdversaryKind {
    if t == 0 {
        AdversaryKind::Silent
    } else {
        AdversaryKind::Uniform { t, frac: 0.9 }
    }
}

fn assert_clean(cells: &[CellReport], exp: &str) {
    for c in cells {
        assert_eq!(c.completed, c.trials, "{exp} trial failed: {c:?}");
        assert_eq!(c.safety_violations, 0, "{exp} safety violation: {c:?}");
    }
}

/// Shared T-sweep for E4/E5: `MultiCast` at n = 16 under a 90% uniform
/// jammer, one campaign cell per budget.
fn multicast_t_sweep(scale: Scale, name: &str, master_seed: u64) -> Vec<CellReport> {
    let n = 16u64;
    let cells = mc_budgets(scale)
        .iter()
        .map(|&t| {
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: Default::default(),
                },
                uniform_or_silent(t),
            )
            .with_max_slots(2_000_000_000)
        })
        .collect();
    let reports = campaign(name, cells, scale.seeds(), master_seed);
    assert_clean(&reports, name);
    reports
}

/// E4 — `MultiCast` time is `O(T/n + lg²n)` (Theorem 5.4a).
pub fn e4_multicast_time(scale: Scale) -> String {
    let n = 16u64;
    let reports = multicast_t_sweep(scale, "e4-multicast-time", 44_000);
    let budgets = mc_budgets(scale);

    let mut out = header(
        "E4",
        "MultiCast time vs T",
        "Theorem 5.4(a): all nodes receive m and terminate within O(T/n + lg²n) \
         slots — time linear in the adversary's budget, with a polylog floor.",
        &format!(
            "n = {n} (8 channels), uniform jammer at 90% of the band, {} seeds per \
             budget via the campaign engine; time = slot of the last halt + 1.",
            scale.seeds()
        ),
    );
    let mut table = Table::new(&["T", "time (slots)", "± ci95", "time·n/T"]);
    let mut pts = Vec::new();
    for (c, &t) in reports.iter().zip(budgets) {
        let time = c.completion_slots.mean;
        if t > 0 {
            pts.push((t as f64, time));
        }
        table.row(&[
            t.to_string(),
            format!("{time:.0}"),
            format!("{:.0}", ci95_of(&c.completion_slots)),
            if t > 0 {
                format!("{:.3}", time * n as f64 / t as f64)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&table.markdown());
    let (_, beta, r2) = fit_power_law(&pts);
    let floor = reports[0].completion_slots.mean;
    let lg2n = (n as f64).log2().powi(2);
    out.push_str(&format!(
        "\n**Result.** time ∝ T^{beta:.2} (r² = {r2:.3}; theorem: 1.0). The T = 0 \
         floor is {floor:.0} slots = {:.0}·lg²n — the additive O(lg²n) term.\n",
        floor / lg2n
    ));
    out
}

/// E5 — `MultiCast` energy is `O(√(T/n)·polylog)` (Theorem 5.4b).
pub fn e5_multicast_cost(scale: Scale) -> String {
    let n = 16u64;
    let reports = multicast_t_sweep(scale, "e5-multicast-cost", 55_000);
    let budgets = mc_budgets(scale);

    let mut out = header(
        "E5",
        "MultiCast energy vs T",
        "Theorem 5.4(b): each node's cost is O(√(T/n)·√lg T·lg n + lg²n) — the \
         resource-competitive √T signature. Doubling Eve's budget buys her only \
         ~√2 more node drain.",
        &format!(
            "Same sweep as E4 (n = {n}, 90% uniform jammer, {} seeds); cost = max \
             over nodes of total energy.",
            scale.seeds()
        ),
    );
    let mut table = Table::new(&[
        "T",
        "max node cost",
        "± ci95",
        "cost/√(T/n)",
        "cost/Eve spend",
    ]);
    let mut pts = Vec::new();
    for (c, &t) in reports.iter().zip(budgets) {
        let cost = c.max_node_cost.mean;
        if t > 0 {
            pts.push((t as f64, cost));
        }
        table.row(&[
            t.to_string(),
            format!("{cost:.0}"),
            format!("{:.0}", ci95_of(&c.max_node_cost)),
            if t > 0 {
                format!("{:.1}", cost / (t as f64 / n as f64).sqrt())
            } else {
                "-".into()
            },
            if c.eve_spent.mean > 0.0 {
                format!("{:.4}", cost / c.eve_spent.mean)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&table.markdown());
    let (_, beta, r2) = fit_power_law(&pts);
    out.push_str("\n```text\nmax node cost vs T (w.h.p. √T shape):\n");
    out.push_str(&rcb_stats::loglog_plot(&pts, 56, 10));
    out.push_str("```\n");
    out.push_str(&format!(
        "\n**Result.** max node cost ∝ T^{beta:.2} (r² = {r2:.3}); the theorem \
         predicts 0.5 plus a √lg T correction (which is why the measured exponent \
         sits slightly above 0.5). The cost/Eve column shrinks monotonically: \
         Eve's return on investment degrades as she spends more — Definition \
         3.1's competitiveness.\n"
    ));
    out
}

/// E6 — multi-channel vs single-channel (the headline comparison).
pub fn e6_vs_single_channel(scale: Scale) -> String {
    let n = 16u64;
    let budgets: &[u64] = scale.pick(
        &[0, 400_000, 1_600_000, 6_400_000][..],
        &[0, 400_000, 1_600_000, 6_400_000, 35_000_000][..],
    );
    let seeds = scale.seeds();

    let mut out = header(
        "E6",
        "Multi-channel vs single-channel broadcast",
        "The headline: MultiCast finishes in Õ(T/n) slots where the best \
         single-channel resource-competitive broadcast (Gilbert et al. SPAA'14, \
         here realized as MultiCast(C = 1), which matches its bounds) needs \
         Õ(T + n) — same Õ(√(T/n)) energy on both sides.",
        &format!(
            "n = {n}; both protocols against a 90% uniform jammer with the same \
             budget; {seeds} seeds via the campaign engine. The jammer's 90% \
             rounds to the full band for C = 1."
        ),
    );

    // Cell layout: per budget, a MultiCast cell then a SingleChannel cell.
    let mut cells = Vec::new();
    for &t in budgets {
        cells.push(
            CellSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: Default::default(),
                },
                uniform_or_silent(t),
            )
            .with_max_slots(2_000_000_000),
        );
        cells.push(
            CellSpec::new(
                ProtocolKind::SingleChannel {
                    n,
                    params: Default::default(),
                },
                uniform_or_silent(t),
            )
            .with_max_slots(2_000_000_000),
        );
    }
    let reports = campaign("e6-vs-single-channel", cells, seeds, 66_000);
    assert_clean(&reports, "E6");

    let mut table = Table::new(&[
        "T",
        "MultiCast time",
        "1-channel time",
        "speedup",
        "MultiCast max cost",
        "1-channel max cost",
    ]);
    for (k, &t) in budgets.iter().enumerate() {
        let (mc, sc) = (&reports[2 * k], &reports[2 * k + 1]);
        let (tm, ts) = (mc.completion_slots.mean, sc.completion_slots.mean);
        table.row(&[
            t.to_string(),
            format!("{tm:.0}"),
            format!("{ts:.0}"),
            format!("{:.1}x", ts / tm),
            format!("{:.0}", mc.max_node_cost.mean),
            format!("{:.0}", sc.max_node_cost.mean),
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\n**Result.** The multi-channel protocol wins on time by n/2 = {}x at \
         every budget — both the O(lg²n) floor and the O(T) jamming term shrink \
         by the full channel factor (Corollary 7.1: O(T/C + (n/C)lg²n)) — while \
         the max-cost columns track each other within noise. Channels buy time, \
         never battery.\n",
        n / 2
    ));
    out
}

/// E7 — the safety/liveness matrix.
pub fn e7_safety_matrix(scale: Scale) -> String {
    let n = 32u64;
    let t = 100_000u64;
    let seeds = scale.pick(8, 25);

    let mut out = header(
        "E7",
        "Safety and liveness matrix",
        "Lemmas 4.2/5.2: no node ever halts uninformed. Lemmas 4.3/5.3: once \
         jamming is weak, everyone halts — under *every* adversary strategy \
         (Definition 3.1 quantifies over arbitrary executions).",
        &format!("n = {n}, T = {t}, {seeds} seeds per protocol × adversary cell."),
    );

    let protocols = [
        ProtocolKind::Core {
            n,
            t,
            params: Default::default(),
        },
        ProtocolKind::MultiCast {
            n,
            params: Default::default(),
        },
        ProtocolKind::MultiCastC {
            n,
            c: 4,
            params: Default::default(),
        },
        ProtocolKind::SingleChannel {
            n,
            params: Default::default(),
        },
    ];
    let adversaries = [
        AdversaryKind::Silent,
        AdversaryKind::Uniform { t, frac: 0.95 },
        AdversaryKind::Burst { t, start: 0 },
        AdversaryKind::Pulse {
            t,
            period: 128,
            duty: 64,
            frac: 0.9,
        },
        AdversaryKind::Sweep {
            t,
            width: 12,
            step: 1,
        },
        AdversaryKind::RandomSubset { t, k: 12 },
        AdversaryKind::GilbertElliott {
            t,
            p_gb: 0.05,
            p_bg: 0.05,
            frac: 0.9,
        },
        AdversaryKind::Reactive {
            t,
            max_channels: 16,
        },
    ];

    // One campaign cell per protocol × adversary pairing; the campaign
    // engine aggregates the counters this table needs streamingly.
    let cells: Vec<CellSpec> = protocols
        .iter()
        .flat_map(|proto| {
            adversaries
                .iter()
                .map(|adv| CellSpec::new(proto.clone(), adv.clone()))
        })
        .collect();
    let reports = campaign("e7-safety-matrix", cells, seeds, 77_000);

    let mut table = Table::new(&[
        "protocol",
        "adversary",
        "trials",
        "completed",
        "informed",
        "halted-uninformed",
    ]);
    let mut total_violations = 0u64;
    let mut total_incomplete = 0u64;
    for c in &reports {
        total_violations += c.safety_violations;
        total_incomplete += c.trials - c.completed;
        table.row(&[
            c.protocol.clone(),
            c.adversary.clone(),
            c.trials.to_string(),
            c.completed.to_string(),
            c.all_informed.to_string(),
            c.safety_violations.to_string(),
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(&format!(
        "\n**Result.** {total_violations} halted-uninformed events and \
         {total_incomplete} incomplete runs across the whole matrix — the \
         two-sided termination guarantee holds against every strategy in the \
         line-up.\n"
    ));
    out
}

/// E10 — `MultiCast(C)`: time ∝ 1/C, energy flat (Corollary 7.1).
pub fn e10_channel_sweep(scale: Scale) -> String {
    let n = 64u64;
    let t = 500_000u64;
    let cs: &[u64] = &[1, 2, 4, 8, 16, 32];
    let seeds = scale.seeds();

    let mut out = header(
        "E10",
        "MultiCast(C) channel sweep",
        "Corollary 7.1: with C ≤ n/2 channels, time is O(T/C + (n/C)·lg²n) and \
         per-node cost is unchanged from MultiCast — spectrum buys time, never \
         energy, and \"the more channels we have, the faster we can be\".",
        &format!(
            "n = {n}, T = {t} against a 60% uniform jammer, C ∈ {cs:?}, {seeds} \
             seeds per point."
        ),
    );

    let cells: Vec<CellSpec> = cs
        .iter()
        .map(|&c| {
            CellSpec::new(
                ProtocolKind::MultiCastC {
                    n,
                    c,
                    params: Default::default(),
                },
                AdversaryKind::Uniform { t, frac: 0.6 },
            )
            .with_max_slots(2_000_000_000)
        })
        .collect();
    let reports = campaign("e10-channel-sweep", cells, seeds, 88_000);
    assert_clean(&reports, "E10");

    let mut table = Table::new(&[
        "C",
        "time (slots)",
        "time·C",
        "max node cost",
        "cost vs C=32",
    ]);
    let mut pts = Vec::new();
    let base_cost = reports.last().expect("nonempty sweep").max_node_cost.mean;
    for (report, &c) in reports.iter().zip(cs) {
        let time = report.completion_slots.mean;
        let cost = report.max_node_cost.mean;
        pts.push((c as f64, time));
        table.row(&[
            c.to_string(),
            format!("{time:.0}"),
            format!("{:.2e}", time * c as f64),
            format!("{cost:.0}"),
            format!("{:.2}x", cost / base_cost),
        ]);
    }
    out.push_str(&table.markdown());
    let (_, beta, r2) = fit_power_law(&pts);
    out.push_str(&format!(
        "\n**Result.** time ∝ C^{beta:.2} (r² = {r2:.3}; corollary: −1), while max \
         node cost stays within a few percent across a 32x range of C.\n"
    ));
    out
}
