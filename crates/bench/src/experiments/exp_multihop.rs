//! Experiment E17: multi-hop broadcast over topology families (extension).
//!
//! The paper is deliberately single-hop; this experiment exercises the
//! topology layer (`rcb_sim::topology`) end to end on the campaign engine:
//! `MultiHopCast` relays the message across lines, grids, random geometric
//! graphs, and a dynamically churning graph, with completion defined as
//! "every node reachable from the source is informed". The reference model
//! for the dynamic family is Ahmadi & Kuhn (arXiv:1610.02931).

use super::{campaign, ci95_of, header};
use crate::scale::Scale;
use rcb_campaign::CellSpec;
use rcb_harness::{AdversaryKind, ProtocolKind, TopologyKind};
use rcb_sim::{Topology, TopologyView};
use rcb_stats::Table;

/// E17 — flooding time grows with topology depth; reachability-complete
/// under churn and jamming.
pub fn e17_multihop(scale: Scale) -> String {
    let seeds = scale.seeds();
    let radius = Topology::connectivity_radius(32);
    let mh = |n: u64, channels: u64| ProtocolKind::MultiHop {
        n,
        channels,
        p: 0.25,
    };

    let mut out = header(
        "E17",
        "Multi-hop broadcast over topology families",
        "Extension of the single-hop model: over a connectivity graph the \
         message must propagate hop by hop through relays, so flooding time \
         scales with topology depth (diameter), not just with n — and \
         per-round edge churn (the Ahmadi–Kuhn dynamic-network direction) \
         slows but does not stop completion.",
        &format!(
            "MultiHopCast (p = 0.25, informed nodes relay) on lines of \
             diameter 15/31, a 4-row grid, random geometric graphs at the \
             connectivity-safe radius {radius:.2}, and a 30%-churn dynamic \
             line; {seeds} seeds per cell via the campaign engine."
        ),
    );

    // (label, cell, static diameter if deterministic)
    let cases: Vec<(&str, CellSpec, Option<u64>)> = vec![
        (
            "line n=16",
            CellSpec::new(mh(16, 4), AdversaryKind::Silent)
                .with_topology(TopologyKind::Line)
                .with_max_slots(20_000_000),
            TopologyView::build(&Topology::Line, 16).diameter(),
        ),
        (
            "line n=32",
            CellSpec::new(mh(32, 4), AdversaryKind::Silent)
                .with_topology(TopologyKind::Line)
                .with_max_slots(20_000_000),
            TopologyView::build(&Topology::Line, 32).diameter(),
        ),
        (
            "grid 8x4 n=32",
            CellSpec::new(mh(32, 4), AdversaryKind::Silent)
                .with_topology(TopologyKind::Grid { cols: 8 })
                .with_max_slots(20_000_000),
            TopologyView::build(&Topology::Grid { cols: 8 }, 32).diameter(),
        ),
        (
            "geometric n=32",
            CellSpec::new(mh(32, 8), AdversaryKind::Silent)
                .with_topology(TopologyKind::RandomGeometric { radius })
                .with_max_slots(20_000_000),
            None, // per-trial graphs
        ),
        (
            "dynamic line n=16",
            CellSpec::new(
                mh(16, 4),
                AdversaryKind::Uniform {
                    t: 5_000,
                    frac: 0.5,
                },
            )
            .with_topology(TopologyKind::Dynamic {
                base: Box::new(TopologyKind::Line),
                p_down: 0.3,
            })
            .with_max_slots(20_000_000),
            TopologyView::build(&Topology::Line, 16).diameter(),
        ),
    ];

    let cells = cases.iter().map(|(_, c, _)| c.clone()).collect();
    let reports = campaign("e17-multihop", cells, seeds, 170_000);

    let mut table = Table::new(&[
        "topology",
        "n",
        "diameter",
        "ok",
        "time (slots)",
        "± ci95",
        "max node cost",
    ]);
    for ((label, _, diameter), c) in cases.iter().zip(&reports) {
        assert_eq!(
            c.completed, c.trials,
            "E17 {label}: reachable component must always be informed: {c:?}"
        );
        assert_eq!(c.safety_violations, 0, "E17 {label}: safety violation");
        table.row(&[
            label.to_string(),
            c.n.to_string(),
            diameter.map_or("~".into(), |d| d.to_string()),
            format!("{}/{}", c.completed, c.trials),
            format!("{:.0}", c.completion_slots.mean),
            format!("{:.0}", ci95_of(&c.completion_slots)),
            format!("{:.0}", c.max_node_cost.mean),
        ]);
    }
    out.push_str(&table.markdown());

    let line16 = reports[0].completion_slots.mean;
    let line32 = reports[1].completion_slots.mean;
    let grid32 = reports[2].completion_slots.mean;
    assert!(
        line32 > line16,
        "deeper line must flood slower: {line32} vs {line16}"
    );
    out.push_str(&format!(
        "\n**Result.** Flooding time follows depth: the diameter-31 line takes \
         {:.1}x the diameter-15 line, while the same 32 nodes arranged as a \
         diameter-10 grid need only {:.2}x the n=16 line's time — with n \
         fixed, the graph (not the node count) sets the pace. The churned \
         line and the jammed cells still complete every trial: transient \
         edge loss and jamming delay the flood but cannot strand a \
         reachable node.\n",
        line32 / line16,
        grid32 / line16,
    ));
    out
}
