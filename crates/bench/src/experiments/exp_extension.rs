//! Experiments E13–E16: extensions beyond the paper's theorems.
//!
//! * E13 tests the Section 8 **future-work conjecture** (robustness against
//!   adaptive adversaries) empirically.
//! * E14–E16 are **ablations of the paper's design choices**: the `n/2`
//!   channel count (Section 4's discussion), the `R·p/2` halting threshold
//!   (Figures 1/2), and the "sparse epidemic" action probability
//!   (Section 5's key modification).
//!
//! All four run on the **campaign engine**: cells in, streaming per-cell
//! reports out — no per-trial result vectors.

use super::{campaign, header};
use crate::scale::Scale;
use rcb_campaign::{CellReport, CellSpec};
use rcb_core::McParams;
use rcb_harness::{AdversaryKind, ProtocolKind};
use rcb_stats::Table;

/// E13 — adaptive (reactive) jamming vs oblivious jamming of equal spend.
pub fn e13_adaptive_adversary(scale: Scale) -> String {
    let n = 16u64;
    let t = scale.pick(1_600_000u64, 6_400_000u64);
    let seeds = scale.seeds();

    let mut out = header(
        "E13",
        "Adaptive adversaries (Section 8 conjecture)",
        "Section 8: \"we suspect MultiCast and MultiCastAdv can handle such \
         more powerful adversary with few (or even no) modifications\". Here an \
         adaptive Eve observes the previous slot's busy channels (full-band \
         sensing, one-slot reaction latency) and reacts; the conjecture holds \
         structurally because nodes hop to fresh uniform channels every slot, \
         so yesterday's activity carries no information about today's.",
        &format!(
            "MultiCast, n = {n}, budget T = {t}, {seeds} seeds. The hotspot \
             jammer (k = 4 of 8 channels) is compared against an oblivious \
             uniform jammer of identical per-slot spend (50% of the band); the \
             pure reactive jammer spends only ~n·p per slot and gets a matched \
             low-rate oblivious control."
        ),
    );

    let lineup: Vec<(&str, AdversaryKind)> = vec![
        ("silent (baseline)", AdversaryKind::Silent),
        (
            "uniform 50% (oblivious)",
            AdversaryKind::Uniform { t, frac: 0.5 },
        ),
        (
            "hotspot k=4 (ADAPTIVE)",
            AdversaryKind::Hotspot {
                t,
                k: 4,
                decay: 0.8,
            },
        ),
        // ~0.25 channel-slots per slot: 1 channel of 8 every 4th slot,
        // matching the reactive jammer's expected spend of |busy| ≈ n·p.
        (
            "pulse 1ch/4slots (oblivious)",
            AdversaryKind::Pulse {
                t,
                period: 4,
                duty: 1,
                frac: 0.125,
            },
        ),
        (
            "reactive (ADAPTIVE)",
            AdversaryKind::Reactive { t, max_channels: 8 },
        ),
    ];

    // One single-cell campaign per adversary, all under the same master
    // seed: positional derivation then gives every row the *identical*
    // trial-seed set, so the spend-matched adaptive-vs-oblivious ratios
    // below are paired comparisons (same protocol randomness per row) and
    // the cross-row variance cancels.
    let reports: Vec<_> = lineup
        .iter()
        .map(|(_, adv)| {
            let cell = CellSpec::new(
                ProtocolKind::MultiCast {
                    n,
                    params: Default::default(),
                },
                adv.clone(),
            )
            .with_max_slots(2_000_000_000);
            campaign("e13-adaptive-adversary", vec![cell], seeds, 606_000)
                .into_iter()
                .next()
                .expect("one cell in, one report out")
        })
        .collect();

    let mut table = Table::new(&[
        "adversary",
        "Eve spent",
        "time (slots)",
        "max node cost",
        "cost/Eve",
    ]);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for (report, (label, _)) in reports.iter().zip(&lineup) {
        assert!(
            report.completed == report.trials && report.safety_violations == 0,
            "E13 {label} failed: {report:?}"
        );
        let time = report.completion_slots.mean;
        let cost = report.max_node_cost.mean;
        let eve = report.eve_spent.mean;
        rows.push((label.to_string(), time, cost));
        table.row(&[
            label.to_string(),
            format!("{eve:.0}"),
            format!("{time:.0}"),
            format!("{cost:.0}"),
            if eve > 0.0 {
                format!("{:.4}", cost / eve)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&table.markdown());
    // Compare adaptive rows with their spend-matched oblivious controls.
    let hotspot_vs_uniform = rows[2].2 / rows[1].2;
    let reactive_vs_low = rows[4].2 / rows[3].2;
    out.push_str(&format!(
        "\n**Result.** Spend-matched comparisons: hotspot/uniform cost ratio \
         {hotspot_vs_uniform:.2}, reactive/low-rate-uniform ratio \
         {reactive_vs_low:.2} — adaptivity buys Eve essentially nothing \
         (ratios ≈ 1), supporting the Section 8 conjecture for this class of \
         sensing adversaries. Channel hopping makes the band memoryless: a \
         reactive jammer is just an expensively-informed random jammer. All \
         runs remain safe (0 halted-uninformed) under adaptive jamming.\n"
    ));
    out
}

/// E14 — channel-count ablation: why `n/2` channels (Section 4).
pub fn e14_channel_count_ablation(scale: Scale) -> String {
    let n = 256u64;
    let seeds = scale.seeds().max(5);
    // Dense completions take < 2k slots, jammed sparse completions < 150k;
    // the caps just need to be far above those so "did not finish" is
    // unambiguous. (Dense deadlocked runs cost n node-actions per slot, so
    // the dense cap is kept tight.)
    let dense_cap = 100_000u64;
    let cap = 2_000_000u64;
    let channel_fracs: &[(u64, &str)] = &[
        (n / 16, "n/16"),
        (n / 8, "n/8"),
        (n / 4, "n/4"),
        (n / 2, "n/2 (paper)"),
        (n, "n"),
        (2 * n, "2n"),
    ];

    let mut out = header(
        "E14",
        "Channel-count ablation",
        "Section 4: \"Too few channels hurts parallelism, but too many channels \
         may result in nodes not being able to meet each other sufficiently \
         often… As it turns out, n/2 channels is a good choice.\" Two regimes \
         matter: under the *dense* epidemic of the intro (everyone acts every \
         slot), too few channels collapse under collisions; and against a \
         jammer with a fixed per-slot budget, too few channels are cheap to \
         blanket. The sweep measures both.",
        &format!(
            "n = {n}, {seeds} seeds. Dense column: act prob 1, no jamming \
             (cap {dense_cap} slots). Jammed column: act prob 1/64, Eve \
             blankets 32 channels every slot (cap {cap} slots). '>cap' = not \
             finished; completing runs finish 10–1000x below the caps."
        ),
    );

    // Two campaign cells per channel count: dense/no-jam and sparse/jammed.
    let cells: Vec<CellSpec> = channel_fracs
        .iter()
        .flat_map(|&(c, _)| {
            [
                CellSpec::new(
                    ProtocolKind::NaiveConfig {
                        n,
                        channels: c,
                        act_prob: 1.0,
                    },
                    AdversaryKind::Silent,
                )
                .with_max_slots(dense_cap),
                CellSpec::new(
                    ProtocolKind::NaiveConfig {
                        n,
                        channels: c,
                        act_prob: 1.0 / 64.0,
                    },
                    // A fixed 32-channel blanket: fraction 32/c of the band.
                    AdversaryKind::Uniform {
                        t: u64::MAX / 2,
                        frac: (32.0 / c as f64).min(1.0),
                    },
                )
                .with_max_slots(cap),
            ]
        })
        .collect();
    let reports = campaign("e14-channel-count", cells, seeds, 707_000);

    let mut table = Table::new(&[
        "channels",
        "dense epidemic (slots)",
        "sparse epidemic, 32-ch jammer (slots)",
    ]);
    let fmt_time = |c: &CellReport| -> String {
        if c.completed == c.trials {
            format!("{:.0}", c.completion_slots.mean)
        } else {
            format!(">cap ({}/{} finished)", c.completed, c.trials)
        }
    };
    for (k, &(_, label)) in channel_fracs.iter().enumerate() {
        table.row(&[
            label.to_string(),
            fmt_time(&reports[2 * k]),
            fmt_time(&reports[2 * k + 1]),
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(
        "\n**Result.** Both failure modes the paper describes appear at the \
         extremes: with few channels the *dense* epidemic drowns in collisions \
         (informed broadcasters saturate every channel), and a fixed-rate \
         jammer blankets a narrow band outright (the 32-channel jammer stops \
         the c = 32 sweep point cold — Eve's per-slot price to disrupt scales \
         with the channel count, which is the real currency of parallel \
         spectrum). With many channels both columns degrade gently as meetings \
         dilute. c = Θ(n) sits in the safe middle for both regimes \
         simultaneously — the Section 4 choice. (At sparse p with no jamming, \
         fewer channels are actually *faster* — concentration helps meetings — \
         which is why the argument for n/2 is about collisions and \
         jam-resistance, not raw speed.)\n",
    );
    out
}

/// E15 — halting-threshold ablation: why `Nn < R·p/2` (Figures 1/2).
pub fn e15_halt_threshold_ablation(scale: Scale) -> String {
    let n = 16u64;
    let seeds = scale.pick(5u64, 12);
    let ratios = [0.25f64, 0.5, 0.75, 0.9];
    // Strong jam: 85% of the band, enough budget to blanket the entire first
    // iteration — the epidemic cannot finish inside it, so any node that
    // halts at that boundary halts uninformed. Weak jam: 30%.
    let t_strong = 400_000u64;
    let t_weak = 400_000u64;

    let mut out = header(
        "E15",
        "Halting-threshold ablation",
        "MultiCast halts when fewer than ratio·R·p of an iteration's listens \
         were noisy; the paper picks ratio = 1/2 (the R_i/2^{i+1} threshold). \
         The threshold is squeezed from both sides: set it *above* the noise \
         fraction Eve sustains and nodes halt while her jamming still hides an \
         incomplete epidemic (safety broken); set it *below* the noise she can \
         cheaply sustain and she keeps everyone awake for free (cost broken).",
        &format!(
            "n = {n}, {seeds} seeds per cell. Strong jammer: 85% of the band, \
             T = {t_strong} (outlasts the whole first iteration). Weak jammer: \
             30%, T = {t_weak}. 'violations' = halted-while-uninformed nodes."
        ),
    );

    // Two campaign cells per threshold: the strong jammer (safety side)
    // and the weak jammer (cost side). Safety violations are *expected*
    // for over-aggressive thresholds — that is the measurement — so this
    // experiment reads the per-cell violation counter instead of asserting
    // on it.
    let cells: Vec<CellSpec> = ratios
        .iter()
        .flat_map(|&ratio| {
            let params = McParams {
                halt_ratio: ratio,
                ..McParams::default()
            };
            [
                CellSpec::new(
                    ProtocolKind::MultiCast { n, params },
                    AdversaryKind::Uniform {
                        t: t_strong,
                        frac: 0.85,
                    },
                )
                .with_max_slots(500_000_000),
                CellSpec::new(
                    ProtocolKind::MultiCast { n, params },
                    AdversaryKind::Uniform {
                        t: t_weak,
                        frac: 0.3,
                    },
                )
                .with_max_slots(500_000_000),
            ]
        })
        .collect();
    let reports = campaign("e15-halt-threshold", cells, seeds, 808_000);

    let mut table = Table::new(&[
        "halt ratio",
        "strong-jam violations",
        "strong-jam time",
        "weak-jam cost",
        "verdict",
    ]);
    for (k, &ratio) in ratios.iter().enumerate() {
        let (strong, weak) = (&reports[2 * k], &reports[2 * k + 1]);
        let violations = strong.safety_violations;
        let time = strong.completion_slots.mean;
        let cost = weak.max_node_cost.mean;
        let weak_cost_ok = {
            // The T = 0 first-iteration cost is ~2·R₆·p₆; staying awake into
            // iteration 7 roughly triples it.
            let floor = 2.0 * 49_152.0 / 64.0;
            cost < 2.0 * floor
        };
        let verdict = match (violations == 0, weak_cost_ok) {
            (true, true) => "sound + cheap",
            (true, false) => "sound but overpays (threshold under Eve's noise)",
            (false, _) => "UNSAFE (halts uninformed under strong jam)",
        };
        table.row(&[
            format!("{ratio}"),
            violations.to_string(),
            format!("{time:.0}"),
            format!("{cost:.0}"),
            verdict.to_string(),
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(
        "\n**Result.** The two failure modes bracket the paper's choice exactly: \
         thresholds at or above the strong jammer's noise level (0.9 > 0.85) \
         let nodes halt at the first boundary while the epidemic is still \
         incomplete — real halted-uninformed violations appear; thresholds \
         below the *weak* jammer's noise (0.25 < 0.3) let a 30% jammer hold \
         everyone awake long past her actual threat, inflating cost. \
         ratio = 1/2 clears both: above any cheaply-sustainable noise floor, \
         below any epidemic-hiding jam level the budget can sustain — the \
         two-sided separation Lemmas 5.2/5.3 formalize.\n",
    );
    out
}

/// E16 — sparse-epidemic ablation: the Section 5 probability reduction.
pub fn e16_sparse_epidemic_ablation(scale: Scale) -> String {
    let n = 256u64;
    let seeds = scale.seeds().max(5);
    let probs = [1.0f64, 0.25, 1.0 / 16.0, 1.0 / 64.0, 1.0 / 256.0];

    let mut out = header(
        "E16",
        "Sparse-epidemic ablation",
        "Section 5 deliberately *lowers* broadcasting/listening probabilities \
         as iterations grow (\"sparse epidemic\"). Sparsity is not free for the \
         epidemic itself — a transmission succeeds only when a broadcaster and \
         a listener coincide, so the per-slot success rate falls like p² and \
         completion time rises like ~1/p² (energy = p·time like ~1/p). The \
         payoff is elsewhere: an iteration is mostly *waiting* for Eve to go \
         bankrupt, and waiting at probability p_i prices an R_i-slot iteration \
         at p_i·R_i = Θ(√R_i) energy — the exact origin of the √T bound.",
        &format!("Epidemic on n/2 channels, n = {n}, no jamming, {seeds} seeds."),
    );

    let cells: Vec<CellSpec> = probs
        .iter()
        .map(|&p| {
            CellSpec::new(
                ProtocolKind::Naive { n, act_prob: p },
                AdversaryKind::Silent,
            )
            .with_max_slots(50_000_000)
        })
        .collect();
    let reports = campaign("e16-sparse-epidemic", cells, seeds, 909_000);

    let mut table = Table::new(&[
        "act prob p",
        "time to all informed",
        "time·p",
        "mean node cost",
    ]);
    for (report, &p) in reports.iter().zip(&probs) {
        assert_eq!(report.completed, report.trials, "E16 p={p}");
        let time = report.completion_slots.mean;
        let cost = report.mean_node_cost.mean;
        table.row(&[
            format!("{p:.4}"),
            format!("{time:.0}"),
            format!("{:.1}", time * p),
            format!("{cost:.0}"),
        ]);
    }
    out.push_str(&table.markdown());
    out.push_str(
        "\n**Result.** Time grows ≈ p⁻² and energy (= time·p) ≈ p⁻¹, as the \
         coincidence argument predicts: sparsifying the epidemic costs real \
         battery, not just wall-clock. MultiCast still shrinks p_i every \
         iteration because the epidemic is a one-off while *waiting out Eve* \
         dominates every long iteration: at p_i = 2^{-i} an R_i = Θ(4^i)-slot \
         iteration costs each node only Θ(2^i) = Θ(√R_i) — squaring the gap \
         between Eve's linear spend and the nodes' √T spend. E16 quantifies \
         the price paid on the dissemination side for that bargain; the \
         iteration lengths of Figure 2 are sized so one epidemic still fits \
         comfortably inside every iteration.\n",
    );
    out
}
