//! Trial-batched execution: step up to 64 trials of one protocol in
//! lockstep over structure-of-arrays state.
//!
//! A campaign cell runs the *same* protocol/adversary configuration across
//! many seeds. The scalar [`Simulation`] pays the full
//! per-slot dispatch — segment lookups, profile checks, observer hooks,
//! schedule guards — once per trial per slot. [`BatchSimulation`] amortizes
//! that: one *lane* per trial (up to [`MAX_BATCH_LANES`]), all lanes driven
//! by a single global slot cursor over a segment layout computed **once**
//! per boundary instead of once per lane.
//!
//! ## Why lanes can share the segment layout
//!
//! [`Protocol::segment`] is required to be a pure function of the starting
//! slot (every in-repo protocol satisfies this: epoch layouts depend only
//! on `n`, `T`, and the slot index, never on execution state). Segment
//! boundaries, round lengths, and slot profiles are therefore identical
//! across lanes, so the batch loop computes them once and every lane reuses
//! them.
//!
//! ## Per-lane equivalence, lane by lane
//!
//! Everything *random or adversarial* stays strictly per-lane, in the exact
//! order the scalar engine would produce it: each lane owns its engine
//! stream (seed stream 0), node streams (`i + 1`), sampler, adversary seat
//! with its own budget, and band observation. The structure-of-arrays part
//! is node status: `informed_bits[node]` and `halted_bits[node]` hold one
//! bit per lane, so membership tests and active-set rebuilds touch one
//! `u64` per node for the whole batch.
//!
//! The idle fast-forward generalizes to an event-driven walk: each lane
//! caches `busy_at`, the absolute slot of its next non-empty round (its
//! sampler's `empty_rounds_ahead()` is a draw-free O(1) read), and the
//! cursor jumps straight to the earliest of any lane's `busy_at`, the
//! segment boundary, or the slot cap. A lane idled past by the cursor pays
//! nothing per event — it *settles* lazily when it next acts (or at a
//! boundary/cap): one O(1) sampler skip and one pending-span accrual,
//! closed (one `jam_span` charge, one telemetry span) exactly like the
//! maximal span the scalar engine would have taken. Per-lane RNG draw
//! counts, jam charges, and outcomes are byte-identical to scalar runs of
//! the same seeds; the repo pins this for width 1 (where
//! [`BatchSimulation::run`] delegates to the scalar core) and per-lane for
//! wider batches (`tests/batch_equivalence.rs`).
//!
//! ## Scope
//!
//! The batch lane covers the bench/campaign hot path: single-hop (no
//! [`Topology`](crate::Topology)), no [`WorldSchedule`](crate::WorldSchedule),
//! no observer, single-message protocols, [`Sampling::Sparse`]. Callers with
//! a richer spec fall back to per-trial scalar runs (the harness'
//! `batch_supported` gate does this automatically).

use crate::adaptive::BandObservation;
use crate::channel::{ChannelBoard, Feedback};
use crate::engine::{checked_profile, ff_worth_it, EngineConfig, Eve, Sampling, Simulation};
use crate::jamset::JamSet;
use crate::metrics::{MessageOutcome, NodeOutcome, RunOutcome, SlotStats};
use crate::protocol::{Action, BoundaryDecision, Coin, Protocol, ProtocolNode, SlotProfile};
use crate::rng::{derive_seed, Xoshiro256};
use crate::sampler::TwoClassRoundStream;
use crate::telemetry::EngineTelemetry;

/// Maximum lanes per batch: node status packs one bit per lane into a
/// `u64`, so a batch is at most 64 trials wide.
pub const MAX_BATCH_LANES: usize = 64;

/// One trial of a batch: its master seed and adversary seat.
///
/// Seeds and adversaries are per-lane so a batch can run the usual
/// bench derivation (one seed per trial) with independently-budgeted
/// adversary instances.
pub struct BatchLane<'e> {
    /// Master seed; streams derive exactly as in the scalar engine
    /// (engine stream 0, node `i` stream `i + 1`).
    pub seed: u64,
    /// The lane's adversary seat (owns its own budget).
    pub eve: Eve<'e>,
}

impl BatchLane<'_> {
    /// A lane with no adversary.
    pub fn silent(seed: u64) -> Self {
        Self {
            seed,
            eve: Eve::Silent,
        }
    }
}

/// Builder for a trial-batched run — the lockstep counterpart of
/// [`Simulation`].
///
/// ```
/// use rcb_sim::batch::{BatchLane, BatchSimulation};
/// use rcb_sim::{EngineConfig, Simulation};
/// # use rcb_sim::{Action, BoundaryDecision, Coin, Feedback, NodeId, Payload,
/// #               Protocol, ProtocolNode, SlotProfile, Xoshiro256};
/// # struct Relay { n: u32 }
/// # struct RelayNode { informed: bool }
/// # impl ProtocolNode for RelayNode {
/// #     fn on_selected(&mut self, _p: &SlotProfile, coin: Coin, _r: &mut Xoshiro256) -> Action {
/// #         match coin {
/// #             Coin::One if self.informed => Action::Broadcast { ch: 0, payload: Payload::Data },
/// #             Coin::One => Action::Listen { ch: 0 },
/// #             Coin::Two => Action::Idle,
/// #         }
/// #     }
/// #     fn on_feedback(&mut self, _p: &SlotProfile, fb: Feedback) {
/// #         if matches!(fb, Feedback::Message(_)) { self.informed = true; }
/// #     }
/// #     fn on_boundary(&mut self, _p: &SlotProfile) -> BoundaryDecision {
/// #         if self.informed { BoundaryDecision::Halt } else { BoundaryDecision::Continue }
/// #     }
/// #     fn is_informed(&self) -> bool { self.informed }
/// # }
/// # impl Protocol for Relay {
/// #     type Node = RelayNode;
/// #     fn num_nodes(&self) -> u32 { self.n }
/// #     fn segment(&mut self, _start: u64) -> SlotProfile {
/// #         SlotProfile { p1: 0.5, p2: 0.0, channels: 1, virt_channels: 1,
/// #                       round_len: 1, seg_len: 64, seg_major: 0, seg_minor: 0, step: 0 }
/// #     }
/// #     fn make_node(&self, _id: NodeId, is_source: bool) -> RelayNode {
/// #         RelayNode { informed: is_source }
/// #     }
/// # }
/// let cfg = EngineConfig::capped(100_000);
/// let lanes = vec![BatchLane::silent(11), BatchLane::silent(12)];
/// let results = BatchSimulation::new(&mut Relay { n: 8 })
///     .config(cfg)
///     .run(lanes);
/// // Each lane matches the scalar engine at the same seed.
/// for (seed, (out, _tel)) in [11, 12].into_iter().zip(&results) {
///     let scalar = Simulation::new(&mut Relay { n: 8 }).config(cfg).run(seed);
///     assert_eq!(*out, scalar);
/// }
/// ```
pub struct BatchSimulation<'a, P: Protocol> {
    protocol: &'a mut P,
    config: EngineConfig,
}

impl<'a, P: Protocol> BatchSimulation<'a, P> {
    /// Start a batch builder for `protocol`.
    pub fn new(protocol: &'a mut P) -> Self {
        Self {
            protocol,
            config: EngineConfig::default(),
        }
    }

    /// Replace the default [`EngineConfig`]. The config applies to every
    /// lane; batched execution requires [`Sampling::Sparse`].
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Run all `lanes` to completion; returns one `(outcome, telemetry)`
    /// pair per lane, in lane order.
    ///
    /// A single lane delegates to the scalar engine (trivially
    /// byte-identical); wider batches run the lockstep loop.
    ///
    /// # Panics
    /// If `lanes` is empty or wider than [`MAX_BATCH_LANES`], if the
    /// protocol has fewer than 2 nodes or more than one message, or if the
    /// config asks for [`Sampling::DensePerNode`] with more than one lane.
    pub fn run(self, mut lanes: Vec<BatchLane<'a>>) -> Vec<(RunOutcome, EngineTelemetry)> {
        assert!(
            (1..=MAX_BATCH_LANES).contains(&lanes.len()),
            "batch width must be in 1..={MAX_BATCH_LANES}, got {}",
            lanes.len()
        );
        if lanes.len() == 1 {
            let BatchLane { seed, eve } = lanes.pop().expect("one lane");
            return vec![Simulation::new(self.protocol)
                .eve(eve)
                .config(self.config)
                .run_with_telemetry(seed)];
        }
        assert!(
            self.config.sampling == Sampling::Sparse,
            "batched execution requires Sampling::Sparse"
        );
        run_batch(self.protocol, lanes, &self.config)
    }
}

/// Per-lane execution state. Everything that is random, adversarial, or
/// timing-sensitive lives here; only node status bitmasks are shared
/// structure-of-arrays state (see the module docs).
struct Lane<'e, N> {
    bit: u64,
    eve: Eve<'e>,
    observes: bool,
    engine_rng: Xoshiro256,
    node_rngs: Vec<Xoshiro256>,
    nodes: Vec<N>,
    active: Vec<u32>,
    stream: TwoClassRoundStream,
    ff_active: bool,
    prev_obs: BandObservation,
    next_obs: BandObservation,
    eve_remaining: u64,
    eve_spent: u64,
    informed_count: u32,
    informed_at: Vec<Option<u64>>,
    halted_at: Vec<Option<u64>>,
    listen_cost: Vec<u64>,
    bcast_cost: Vec<u64>,
    totals: SlotStats,
    tel: EngineTelemetry,
    /// Idle slots accrued since the lane last acted; closed as one span.
    pending_span: u64,
    /// Cursor value when `pending_span` went from 0 to positive.
    span_start: u64,
    /// Slot up to which this lane's sampler and span state are
    /// materialized. Idle lanes fall behind the global cursor and settle
    /// lazily (one `skip_rounds` + one span accrual) when they next act.
    settled: u64,
    /// Absolute slot of the lane's next non-empty round (its cached
    /// `empty_rounds_ahead`), so the lockstep walk can jump straight to
    /// the earliest event instead of probing every lane every round.
    /// `u64::MAX` = idle until the segment boundary or slot cap.
    busy_at: u64,
    /// Final slot count, set when the lane leaves the running mask.
    slots: u64,
}

/// The absolute slot at which a lane with `ahead` empty rounds in front of
/// its position `settled` next executes a round. Lanes outside the
/// fast-forward gate execute every round.
fn next_busy(ahead: u64, settled: u64, round_len: u64, ff_active: bool) -> u64 {
    if !ff_active {
        return settled;
    }
    if ahead == u64::MAX {
        return u64::MAX;
    }
    settled.saturating_add(ahead.saturating_mul(round_len))
}

impl<N> Lane<'_, N> {
    /// Close the lane's accrued idle span: one `jam_span` charge over the
    /// whole run of idle slots, band observation reset, one telemetry
    /// span — exactly what the scalar fast-forward branch does for the
    /// same maximal span.
    fn close_span(&mut self, prof: &SlotProfile) {
        let span = self.pending_span;
        if span == 0 {
            return;
        }
        let spent = if self.eve_remaining > 0 {
            let charge = self.eve.jam_span(
                self.span_start,
                span,
                prof.channels,
                self.eve_remaining,
                &self.prev_obs,
            );
            let spent = charge.spent.min(self.eve_remaining);
            self.eve_remaining -= spent;
            self.eve_spent += spent;
            self.totals.jammed += spent;
            spent
        } else {
            0
        };
        if self.observes {
            self.prev_obs.clear();
            self.prev_obs.channels = prof.channels;
        }
        self.tel.record_span(span, spent);
        self.tel.observer_events += 1; // on_idle_span
        self.pending_span = 0;
    }

    /// Materialize the lane's idle progress up to `cursor`: consume the
    /// idled whole rounds from the sampler (O(1), draw-free) and fold the
    /// slots into the pending span. A trailing partial round (slot cap)
    /// contributes slots but no sampler round, exactly like the scalar
    /// span clip.
    fn settle(&mut self, cursor: u64, round_len: u64) {
        let delta = cursor - self.settled;
        if delta == 0 {
            return;
        }
        self.stream.skip_rounds(delta / round_len);
        if self.pending_span == 0 {
            self.span_start = self.settled;
        }
        self.pending_span += delta;
        self.settled = cursor;
    }
}

/// The lockstep loop behind [`BatchSimulation::run`] for width >= 2.
fn run_batch<'e, P: Protocol>(
    protocol: &mut P,
    lanes: Vec<BatchLane<'e>>,
    cfg: &EngineConfig,
) -> Vec<(RunOutcome, EngineTelemetry)> {
    let n = protocol.num_nodes();
    assert!(n >= 2, "broadcast needs at least a source and one receiver");
    assert!(
        protocol.num_messages() == 1,
        "batched execution covers single-message protocols only"
    );
    let width = lanes.len();
    let fast_forward = cfg.fast_forward;
    let informed_target = n;

    let mut prof = checked_profile(protocol.segment(0), n);
    let mut seg_end: u64 = prof.seg_len;

    // Shared structure-of-arrays node status: bit l of entry i is lane l's
    // informed/halted flag for node i.
    let mut informed_bits: Vec<u64> = vec![0; n as usize];
    let mut halted_bits: Vec<u64> = vec![0; n as usize];
    let full_mask: u64 = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    informed_bits[0] = full_mask; // every lane's source knows m from slot 0

    let mut ls: Vec<Lane<'e, P::Node>> = lanes
        .into_iter()
        .enumerate()
        .map(|(li, BatchLane { seed, eve })| {
            // Stream derivation order matches the scalar engine exactly:
            // engine stream first, then node streams, then the segment
            // sampler's initial gap draw.
            let mut engine_rng = Xoshiro256::seeded(derive_seed(seed, 0));
            let node_rngs: Vec<Xoshiro256> = (0..n)
                .map(|i| Xoshiro256::seeded(derive_seed(seed, i as u64 + 1)))
                .collect();
            let nodes: Vec<P::Node> = (0..n).map(|i| protocol.make_node(i, i == 0)).collect();
            let stream = TwoClassRoundStream::new(&mut engine_rng, n as usize, prof.p1, prof.p2);
            let ff_active = fast_forward && ff_worth_it(&prof, n as usize, cfg.max_slots);
            let busy_at = next_busy(
                stream.empty_rounds_ahead(),
                0,
                prof.round_len as u64,
                ff_active,
            );
            let mut tel = EngineTelemetry::default();
            if fast_forward && !ff_active {
                tel.ff_gated_segments += 1;
            }
            let observes = eve.observes();
            let eve_remaining = eve.budget();
            let mut informed_at = vec![None; n as usize];
            informed_at[0] = Some(0);
            Lane {
                bit: 1u64 << li,
                eve,
                observes,
                engine_rng,
                node_rngs,
                nodes,
                active: (0..n).collect(),
                stream,
                ff_active,
                prev_obs: BandObservation::default(),
                next_obs: BandObservation::default(),
                eve_remaining,
                eve_spent: 0,
                informed_count: 1,
                informed_at,
                halted_at: vec![None; n as usize],
                listen_cost: vec![0; n as usize],
                bcast_cost: vec![0; n as usize],
                totals: SlotStats::default(),
                tel,
                pending_span: 0,
                span_start: 0,
                settled: 0,
                busy_at,
                slots: 0,
            }
        })
        .collect();

    // Shared scratch, reused by every lane in turn.
    let mut board = ChannelBoard::new();
    let mut class1: Vec<u32> = Vec::new();
    let mut class2: Vec<u32> = Vec::new();
    let mut round_buf: Vec<Vec<(u32, Action)>> = vec![Vec::new()];
    let mut listeners: Vec<(u32, u64)> = Vec::new();

    let mut running: u64 = full_mask;
    let mut cursor: u64 = 0;

    while running != 0 {
        // --- Segment boundary (all lanes cross it together) --------------
        if cursor == seg_end {
            let round_len = prof.round_len as u64;
            for lane in ls.iter_mut() {
                if running & lane.bit == 0 {
                    continue;
                }
                lane.settle(cursor, round_len);
                lane.close_span(&prof);
                boundary(lane, &prof, cursor, &mut informed_bits, &mut halted_bits);
                if lane.active.is_empty() {
                    lane.slots = cursor;
                    running &= !lane.bit;
                }
            }
            if running == 0 {
                break;
            }
            if cursor >= cfg.max_slots {
                // Scalar runs exit on the slot-cap loop condition here,
                // without touching the next segment's profile or streams.
                break;
            }
            prof = checked_profile(protocol.segment(cursor), n);
            seg_end = cursor.saturating_add(prof.seg_len);
            for lane in ls.iter_mut() {
                if running & lane.bit == 0 {
                    continue;
                }
                // Fresh stream first, stop-check second: the scalar loop
                // rebuilds the sampler (drawing its initial gap) before the
                // head's completion check, so draw counts match even for
                // lanes that stop right at the boundary.
                lane.stream = TwoClassRoundStream::new(
                    &mut lane.engine_rng,
                    lane.active.len(),
                    prof.p1,
                    prof.p2,
                );
                lane.ff_active =
                    fast_forward && ff_worth_it(&prof, lane.active.len(), cfg.max_slots - cursor);
                if fast_forward && !lane.ff_active {
                    lane.tel.ff_gated_segments += 1;
                }
                lane.settled = cursor;
                lane.busy_at = next_busy(
                    lane.stream.empty_rounds_ahead(),
                    cursor,
                    prof.round_len as u64,
                    lane.ff_active,
                );
                if cfg.stop_when_all_informed && lane.informed_count >= informed_target {
                    lane.slots = cursor;
                    running &= !lane.bit;
                }
            }
            if running == 0 {
                break;
            }
        }
        if cursor >= cfg.max_slots {
            break;
        }

        let round_len = prof.round_len as u64;

        // --- Jump to the next event: the earliest lane step, the segment
        // boundary, or the slot cap. Idle lanes pay nothing until then —
        // they settle lazily (one sampler skip + one span accrual) when
        // they next act, cross the boundary, or hit the cap.
        let mut next = seg_end.min(cfg.max_slots);
        let mut rest = running;
        while rest != 0 {
            let li = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            next = next.min(ls[li].busy_at);
        }
        if next > cursor {
            cursor = next;
            continue;
        }

        // --- Step one round on every lane due at this slot, in lane order -
        let mut rest = running;
        while rest != 0 {
            let li = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let lane = &mut ls[li];
            if lane.busy_at > cursor {
                continue;
            }
            lane.settle(cursor, round_len);
            lane.close_span(&prof);

            let stepped_to = step_round(
                lane,
                &prof,
                cursor,
                cfg,
                informed_target,
                &mut informed_bits,
                &mut board,
                &mut class1,
                &mut class2,
                &mut round_buf,
                &mut listeners,
            );
            if let Some(final_slots) = stepped_to {
                lane.slots = final_slots;
                running &= !lane.bit;
            } else {
                lane.settled = cursor + round_len;
                lane.busy_at = next_busy(
                    lane.stream.empty_rounds_ahead(),
                    lane.settled,
                    round_len,
                    lane.ff_active,
                );
            }
        }
        cursor = (cursor + round_len).min(cfg.max_slots);
    }

    // Lanes still live here ran into the slot cap: settle their idle tail
    // (a partial round at the cap contributes span slots but no sampler
    // round), close their spans, and pin their final slot count, like the
    // scalar loop-condition exit.
    let round_len = prof.round_len as u64;
    let mut rest = running;
    while rest != 0 {
        let li = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let lane = &mut ls[li];
        lane.settle(cursor, round_len);
        lane.close_span(&prof);
        lane.slots = cursor;
    }

    ls.into_iter()
        .map(|lane| finalize(lane, n, informed_target, &informed_bits, &halted_bits))
        .collect()
}

/// Segment-boundary processing for one lane: `on_boundary` over the active
/// set in id order, deferred informs at `seg_end - 1`, halts folded into
/// the shared halted bitmask, active-set rebuild.
fn boundary<N: ProtocolNode>(
    lane: &mut Lane<'_, N>,
    prof: &SlotProfile,
    seg_end: u64,
    informed_bits: &mut [u64],
    halted_bits: &mut [u64],
) {
    let bit = lane.bit;
    let mut any_halt = false;
    for &nid in &lane.active {
        let node = &mut lane.nodes[nid as usize];
        let was_informed = node.is_informed();
        let decision = node.on_boundary(prof);
        let now_informed = node.is_informed();
        if !was_informed && now_informed {
            // Deferred status change (MultiCastAdv step-two check).
            lane.informed_at[nid as usize] = Some(seg_end - 1);
            lane.informed_count += 1;
            informed_bits[nid as usize] |= bit;
            lane.tel.observer_events += 1; // on_informed
        }
        if decision == BoundaryDecision::Halt {
            lane.halted_at[nid as usize] = Some(seg_end - 1);
            halted_bits[nid as usize] |= bit;
            any_halt = true;
            lane.tel.observer_events += 1; // on_halted
        }
    }
    if any_halt {
        lane.active
            .retain(|&nid| halted_bits[nid as usize] & bit == 0);
    }
    lane.tel.observer_events += 1; // on_boundary
}

/// Step one full round (all `round_len` sub-slots) for one lane. Returns
/// `Some(final_slots)` when the lane finishes inside the round (slot cap or
/// all-informed stop), `None` while it keeps running.
#[allow(clippy::too_many_arguments)]
fn step_round<N: ProtocolNode>(
    lane: &mut Lane<'_, N>,
    prof: &SlotProfile,
    round_start: u64,
    cfg: &EngineConfig,
    informed_target: u32,
    informed_bits: &mut [u64],
    board: &mut ChannelBoard,
    class1: &mut Vec<u32>,
    class2: &mut Vec<u32>,
    round_buf: &mut Vec<Vec<(u32, Action)>>,
    listeners: &mut Vec<(u32, u64)>,
) -> Option<u64> {
    let round_len = prof.round_len as u64;
    let bit = lane.bit;

    // Sample the round's acting subset and buffer concrete actions per
    // sub-slot, mapping virtual channels exactly like the scalar engine.
    for buf in round_buf.iter_mut() {
        buf.clear();
    }
    if round_buf.len() < round_len as usize {
        round_buf.resize_with(round_len as usize, Vec::new);
    }
    class1.clear();
    class2.clear();
    lane.stream.next_round(&mut lane.engine_rng, class1, class2);
    for (list, coin) in [(&*class1, Coin::One), (&*class2, Coin::Two)] {
        for &idx in list.iter() {
            let nid = lane.active[idx as usize];
            let action =
                lane.nodes[nid as usize].on_selected(prof, coin, &mut lane.node_rngs[nid as usize]);
            match action {
                Action::Idle => {}
                Action::Listen { ch } | Action::Broadcast { ch, .. } => {
                    let (target, phys) = if round_len == 1 {
                        (0u64, ch)
                    } else {
                        (ch / prof.channels, ch % prof.channels)
                    };
                    let mapped = match action {
                        Action::Listen { .. } => Action::Listen { ch: phys },
                        Action::Broadcast { payload, .. } => {
                            Action::Broadcast { ch: phys, payload }
                        }
                        Action::Idle => unreachable!(),
                    };
                    round_buf[target as usize].push((nid, mapped));
                }
            }
        }
    }

    let mut slot = round_start;
    for sub in 0..round_len {
        if slot >= cfg.max_slots {
            return Some(slot);
        }

        // Jamming: spend == size of the (possibly truncated) jam set.
        let (jam, take) = if lane.eve_remaining == 0 {
            (JamSet::Empty, 0)
        } else {
            let request = lane.eve.jam(slot, prof.channels, &lane.prev_obs);
            let want = request.count(prof.channels);
            let take = want.min(lane.eve_remaining);
            lane.eve_remaining -= take;
            lane.eve_spent += take;
            lane.tel.jam_spent_stepped += take;
            let jam = if take < want {
                request.truncate(take, prof.channels)
            } else {
                request
            };
            (jam.normalize(prof.channels), take)
        };

        board.clear();
        listeners.clear();
        let mut slot_stats = SlotStats {
            jammed: take,
            ..SlotStats::default()
        };
        for &(nid, action) in &round_buf[sub as usize] {
            match action {
                Action::Idle => {}
                Action::Listen { ch } => {
                    lane.listen_cost[nid as usize] += 1;
                    slot_stats.listens += 1;
                    listeners.push((nid, ch));
                }
                Action::Broadcast { ch, payload } => {
                    lane.bcast_cost[nid as usize] += 1;
                    slot_stats.broadcasts += 1;
                    board.add_broadcast(ch, payload);
                }
            }
        }
        board.resolve();
        for &(nid, ch) in listeners.iter() {
            let jammed = jam.contains(ch, prof.channels);
            let fb = board.outcome(ch, jammed);
            match fb {
                Feedback::Silence => slot_stats.heard_silence += 1,
                Feedback::Message(_) => slot_stats.heard_message += 1,
                Feedback::Noise => slot_stats.heard_noise += 1,
            }
            let node = &mut lane.nodes[nid as usize];
            let was_informed = node.is_informed();
            node.on_feedback(prof, fb);
            if !was_informed && node.is_informed() {
                lane.informed_at[nid as usize] = Some(slot);
                lane.informed_count += 1;
                informed_bits[nid as usize] |= bit;
                lane.tel.observer_events += 1; // on_informed
            }
        }
        lane.totals.broadcasts += slot_stats.broadcasts;
        lane.totals.listens += slot_stats.listens;
        lane.totals.heard_silence += slot_stats.heard_silence;
        lane.totals.heard_message += slot_stats.heard_message;
        lane.totals.heard_noise += slot_stats.heard_noise;
        lane.totals.jammed += slot_stats.jammed;
        lane.tel.observer_events += 1; // on_slot

        if lane.observes {
            lane.next_obs.clear();
            lane.next_obs.channels = prof.channels;
            board.busy_channels(&mut lane.next_obs.busy);
            std::mem::swap(&mut lane.prev_obs, &mut lane.next_obs);
        }

        lane.tel.slots_stepped += 1;
        slot += 1;

        if cfg.stop_when_all_informed && lane.informed_count >= informed_target {
            return Some(slot);
        }
    }
    None
}

/// Assemble one lane's [`RunOutcome`] exactly like the scalar finalizer
/// (single-message, no-topology, no-schedule shape).
fn finalize<N: ProtocolNode>(
    mut lane: Lane<'_, N>,
    n: u32,
    informed_target: u32,
    informed_bits: &[u64],
    halted_bits: &[u64],
) -> (RunOutcome, EngineTelemetry) {
    let bit = lane.bit;
    lane.tel.rng_engine_draws = lane.engine_rng.draws();
    lane.tel.rng_node_draws = lane.node_rngs.iter().map(Xoshiro256::draws).sum();

    // A halted node receives no further events, so its informed flag is
    // frozen at halt time: "halted knowing" is halted && informed now.
    let halted_knowing = (0..n as usize)
        .filter(|&i| halted_bits[i] & bit != 0 && informed_bits[i] & bit != 0)
        .count() as u32;

    let nodes_out: Vec<NodeOutcome> = (0..n as usize)
        .map(|i| NodeOutcome {
            id: i as u32,
            informed_at: lane.informed_at[i],
            halted_at: lane.halted_at[i],
            listen_cost: lane.listen_cost[i],
            broadcast_cost: lane.bcast_cost[i],
            halted_informed: halted_bits[i] & bit != 0 && informed_bits[i] & bit != 0,
            extra: lane.nodes[i].extra(),
        })
        .collect();

    let all_informed = lane.informed_count >= informed_target;
    let all_informed_at = if all_informed {
        lane.informed_at.iter().map(|x| x.unwrap_or(0)).max()
    } else {
        None
    };
    let all_halted = lane.active.is_empty();
    let outcome = RunOutcome {
        slots: lane.slots,
        all_halted,
        all_informed,
        all_informed_at,
        reachable: informed_target,
        eve_spent: lane.eve_spent,
        totals: lane.totals,
        messages: vec![MessageOutcome {
            msg: 0,
            informed_count: lane.informed_count,
            all_informed_at,
            halted_knowing,
        }],
        nodes: nodes_out,
        timeline: Vec::new(),
        crashed: 0,
        survivors: informed_target,
        survivors_informed: lane.informed_count,
        survivors_all_informed: lane.informed_count >= informed_target,
        survivors_all_halted: all_halted,
    };
    (outcome, lane.tel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::protocol::Adversary;

    /// Minimal two-phase relay protocol for batch/scalar comparison.
    struct Relay {
        n: u32,
    }
    struct RelayNode {
        informed: bool,
    }
    impl ProtocolNode for RelayNode {
        fn on_selected(&mut self, _prof: &SlotProfile, coin: Coin, rng: &mut Xoshiro256) -> Action {
            let ch = rng.next_u64() % 2;
            match coin {
                Coin::One if self.informed => Action::Broadcast {
                    ch,
                    payload: crate::channel::Payload::Data,
                },
                Coin::One => Action::Listen { ch },
                Coin::Two => Action::Idle,
            }
        }
        fn on_feedback(&mut self, _prof: &SlotProfile, fb: Feedback) {
            if matches!(fb, Feedback::Message(_)) {
                self.informed = true;
            }
        }
        fn on_boundary(&mut self, _prof: &SlotProfile) -> BoundaryDecision {
            if self.informed {
                BoundaryDecision::Halt
            } else {
                BoundaryDecision::Continue
            }
        }
        fn is_informed(&self) -> bool {
            self.informed
        }
    }
    impl Protocol for Relay {
        type Node = RelayNode;
        fn num_nodes(&self) -> u32 {
            self.n
        }
        fn segment(&mut self, _start: u64) -> SlotProfile {
            SlotProfile {
                p1: 0.25,
                p2: 0.1,
                channels: 2,
                virt_channels: 2,
                round_len: 1,
                seg_len: 128,
                seg_major: 0,
                seg_minor: 0,
                step: 0,
            }
        }
        fn make_node(&self, _id: crate::protocol::NodeId, is_source: bool) -> RelayNode {
            RelayNode {
                informed: is_source,
            }
        }
    }

    /// Sweeper adversary: jams channel (slot % channels) every slot.
    struct Sweep {
        budget: u64,
    }
    impl Adversary for Sweep {
        fn budget(&self) -> u64 {
            self.budget
        }
        fn jam(&mut self, slot: u64, channels: u64) -> JamSet {
            JamSet::Window {
                start: slot % channels,
                len: 1,
            }
        }
    }

    /// Scalar reference run; `budget` mounts a `Sweep` adversary.
    fn scalar(seed: u64, budget: Option<u64>, cfg: EngineConfig) -> (RunOutcome, EngineTelemetry) {
        let mut p = Relay { n: 12 };
        match budget {
            None => Simulation::new(&mut p).config(cfg).run_with_telemetry(seed),
            Some(b) => {
                let mut a = Sweep { budget: b };
                Simulation::new(&mut p)
                    .eve(Eve::Oblivious(&mut a))
                    .config(cfg)
                    .run_with_telemetry(seed)
            }
        }
    }

    #[test]
    fn batch_lanes_match_scalar_runs_silent() {
        let cfg = EngineConfig::capped(200_000);
        let seeds = [3u64, 5, 8, 13, 21];
        let lanes = seeds.iter().map(|&s| BatchLane::silent(s)).collect();
        let batch = BatchSimulation::new(&mut Relay { n: 12 })
            .config(cfg)
            .run(lanes);
        for (&seed, (out, tel)) in seeds.iter().zip(&batch) {
            let (sout, stel) = scalar(seed, None, cfg);
            assert_eq!(*out, sout, "seed {seed} outcome diverged");
            assert_eq!(
                tel.rng_engine_draws, stel.rng_engine_draws,
                "seed {seed} engine draws"
            );
            assert_eq!(
                tel.rng_node_draws, stel.rng_node_draws,
                "seed {seed} node draws"
            );
            assert_eq!(
                tel.observer_events, stel.observer_events,
                "seed {seed} observer events"
            );
            assert_eq!(
                tel.slots_stepped + tel.slots_fast_forwarded,
                stel.slots_stepped + stel.slots_fast_forwarded,
                "seed {seed} slot conservation"
            );
        }
    }

    #[test]
    fn batch_lanes_match_scalar_runs_jammed() {
        let cfg = EngineConfig::capped(200_000);
        let seeds = [2u64, 7, 11];
        let mut advs: Vec<Sweep> = seeds.iter().map(|_| Sweep { budget: 500 }).collect();
        let lanes = advs
            .iter_mut()
            .zip(&seeds)
            .map(|(a, &s)| BatchLane {
                seed: s,
                eve: Eve::Oblivious(a),
            })
            .collect();
        let batch = BatchSimulation::new(&mut Relay { n: 12 })
            .config(cfg)
            .run(lanes);
        for (&seed, (out, tel)) in seeds.iter().zip(&batch) {
            let (sout, stel) = scalar(seed, Some(500), cfg);
            assert_eq!(*out, sout, "seed {seed} outcome diverged");
            assert_eq!(
                tel.jam_spent_stepped + tel.jam_spent_spans,
                stel.jam_spent_stepped + stel.jam_spent_spans,
                "seed {seed} jam spend conservation"
            );
        }
    }

    #[test]
    fn single_lane_delegates_to_scalar() {
        let cfg = EngineConfig::capped(50_000);
        let batch = BatchSimulation::new(&mut Relay { n: 12 })
            .config(cfg)
            .run(vec![BatchLane::silent(42)]);
        let (sout, stel) = scalar(42, None, cfg);
        assert_eq!(batch[0].0, sout);
        assert_eq!(batch[0].1, stel);
    }

    #[test]
    fn slot_cap_is_respected_per_lane() {
        let cfg = EngineConfig::capped(100); // cap inside the first segment
        let lanes = vec![BatchLane::silent(1), BatchLane::silent(2)];
        let batch = BatchSimulation::new(&mut Relay { n: 12 })
            .config(cfg)
            .run(lanes);
        for (li, (out, tel)) in batch.iter().enumerate() {
            assert!(out.slots <= 100, "lane {li} overran the cap");
            assert_eq!(
                tel.slots_stepped + tel.slots_fast_forwarded,
                out.slots,
                "lane {li} slot conservation"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn empty_batch_panics() {
        let _ = BatchSimulation::new(&mut Relay { n: 12 }).run(vec![]);
    }
}
