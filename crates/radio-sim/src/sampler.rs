//! Exact Bernoulli-subset sampling via geometric skips.
//!
//! In every protocol of the paper, each active node independently acts in a
//! slot with a small probability `p` (e.g. `1/64` in `MultiCastCore`,
//! `1/2ⁱ` in iteration `i` of `MultiCast`). Iterating all `n` nodes per slot
//! to flip those coins would make the simulator `O(n)` per slot; instead we
//! sample the *gaps* between selected indices, which are i.i.d.
//! `Geometric(p)`. This produces exactly the same distribution as `m`
//! independent Bernoulli draws — see `bernoulli_subset_matches_dense` below,
//! which cross-validates against the dense method — in `O(p·m)` expected time.

use crate::rng::Xoshiro256;

/// Append to `out` a sorted sample of `0..m` where each index is included
/// independently with probability `p`.
///
/// Exactness: the gap between consecutive selected indices (and the offset of
/// the first) is distributed `Geometric(p)` on `{0, 1, …}`; we draw it as
/// `⌊ln(1−U)/ln(1−p)⌋` with `U ∈ [0,1)` uniform, the standard inversion.
pub fn bernoulli_subset(rng: &mut Xoshiro256, m: usize, p: f64, out: &mut Vec<u32>) {
    if m == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        out.extend(0..m as u32);
        return;
    }
    let ln_q = (1.0 - p).ln(); // strictly negative
    let mut i: u64 = 0;
    loop {
        let u = rng.next_f64(); // [0, 1)
                                // 1 - u ∈ (0, 1]; ln(1-u) ∈ (-inf, 0]; skip ∈ {0, 1, ...}
        let skip = ((1.0 - u).ln() / ln_q).floor();
        if !skip.is_finite() || skip >= (m as f64) {
            break; // next selected index would be past the end
        }
        i += skip as u64;
        if i >= m as u64 {
            break;
        }
        out.push(i as u32);
        i += 1;
        if i >= m as u64 {
            break;
        }
    }
}

/// Reference implementation: flip one coin per index. Used by tests and by
/// the engine's dense cross-validation mode.
pub fn bernoulli_subset_dense(rng: &mut Xoshiro256, m: usize, p: f64, out: &mut Vec<u32>) {
    for i in 0..m {
        if rng.gen_bool(p) {
            out.push(i as u32);
        }
    }
}

/// Sample two *mutually exclusive* index classes over `0..m`:
/// each index lands in class 1 with probability `p1`, in class 2 with
/// probability `p2`, and in neither with probability `1 − p1 − p2`,
/// independently across indices.
///
/// This models the per-node coin of the paper's pseudocode
/// (`coin ← rnd(1, 1/p)`; `coin == 1` → one action, `coin == 2` → another):
/// we first sample the union (an index acts w.p. `p1 + p2`) and then assign
/// each actor to class 1 w.p. `p1/(p1+p2)` — an exact multinomial thinning.
///
/// # Panics
/// Panics if `p1 + p2 > 1 + ε`.
pub fn sample_two_class(
    rng: &mut Xoshiro256,
    m: usize,
    p1: f64,
    p2: f64,
    class1: &mut Vec<u32>,
    class2: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) {
    debug_assert!(p1 >= 0.0 && p2 >= 0.0);
    let total = p1 + p2;
    assert!(
        total <= 1.0 + 1e-12,
        "action probabilities must satisfy p1 + p2 <= 1 (got {p1} + {p2})"
    );
    if total <= 0.0 || m == 0 {
        return;
    }
    scratch.clear();
    bernoulli_subset(rng, m, total.min(1.0), scratch);
    if p2 <= 0.0 {
        class1.extend_from_slice(scratch);
        return;
    }
    if p1 <= 0.0 {
        class2.extend_from_slice(scratch);
        return;
    }
    let frac1 = p1 / total;
    for &idx in scratch.iter() {
        if rng.gen_bool(frac1) {
            class1.push(idx);
        } else {
            class2.push(idx);
        }
    }
}

/// Draw `Geometric(p)` on `{0, 1, …}` by inversion — `⌊ln(1−U)/ln(1−p)⌋` —
/// from a precomputed `ln_q = ln(1 − p)`, saturating to `u64::MAX`
/// ("never") on overflow or a degenerate draw.
///
/// `ln_q` must be finite and strictly negative (`p ∈ (0, 1)`); callers
/// special-case `p ≤ 0` (never succeeds) and `p ≥ 1` (always succeeds)
/// themselves. Shared by [`TwoClassRoundStream`] and the sojourn-jump
/// adversaries in `rcb-adversary` so the numerically subtle edge cases
/// (`U → 1`, tiny `p`, f64→u64 saturation) live in exactly one place.
#[inline]
pub fn geometric_gap(rng: &mut Xoshiro256, ln_q: f64) -> u64 {
    debug_assert!(ln_q.is_finite() && ln_q < 0.0, "ln_q = {ln_q}");
    let u = rng.next_f64();
    let gap = ((1.0 - u).ln() / ln_q).floor();
    if gap.is_finite() && gap < u64::MAX as f64 {
        gap as u64
    } else {
        u64::MAX
    }
}

/// Segment-scoped two-class actor sampling with a geometric skip carried
/// **across rounds** — the sampling substrate of the engine's idle-round
/// fast-forward.
///
/// Conceptually, a segment of `R` rounds over `m` active nodes is one long
/// Bernoulli(`p1 + p2`) process over `R·m` indices, chopped into rounds of
/// `m`: index `I` is round `I / m`, node `I % m`. By memorylessness of the
/// geometric gap this is *exactly* the same joint distribution as drawing
/// each round independently (the restart-per-round scheme of
/// [`sample_two_class`]), but it has a property the restart scheme lacks:
/// **an empty round consumes no randomness**. When the carried gap exceeds
/// `m`, the stream already knows — without touching the RNG — that the next
/// `gap / m` whole rounds select nobody, so the engine can fast-forward
/// them in O(1) ([`skip_rounds`](Self::skip_rounds)) and produce the exact
/// same downstream stream state as if it had executed them one by one
/// ([`next_round`](Self::next_round) on an empty round just subtracts `m`).
///
/// Selected actors are thinned into class 1 (probability `p1 / (p1 + p2)`)
/// or class 2 with one Bernoulli draw each, as in [`sample_two_class`].
#[derive(Clone, Debug)]
pub struct TwoClassRoundStream {
    m: u64,
    total: f64,
    frac1: f64,
    p1: f64,
    p2: f64,
    /// `ln(1 − total)` when `0 < total < 1` (unused otherwise).
    ln_q: f64,
    /// Concatenated-process indices still to skip before the next selected
    /// node. `u64::MAX` means "no further selection, ever".
    gap: u64,
}

impl TwoClassRoundStream {
    /// Open a stream for a segment with `m` active nodes and class
    /// probabilities `p1`, `p2`. Draws the initial gap (one uniform) unless
    /// the segment trivially selects nobody (`p1 + p2 ≤ 0`) or everybody
    /// (`p1 + p2 ≥ 1`).
    ///
    /// # Panics
    /// Panics if `p1 + p2 > 1 + ε` or `m == 0`.
    pub fn new(rng: &mut Xoshiro256, m: usize, p1: f64, p2: f64) -> Self {
        debug_assert!(p1 >= 0.0 && p2 >= 0.0);
        let total = p1 + p2;
        assert!(
            total <= 1.0 + 1e-12,
            "action probabilities must satisfy p1 + p2 <= 1 (got {p1} + {p2})"
        );
        assert!(m > 0, "a segment needs at least one active node");
        let ln_q = if total > 0.0 && total < 1.0 {
            (1.0 - total).ln()
        } else {
            0.0
        };
        let gap = if total <= 0.0 {
            u64::MAX
        } else if total >= 1.0 {
            0
        } else {
            Self::draw_gap(rng, ln_q)
        };
        Self {
            m: m as u64,
            total,
            frac1: if total > 0.0 { p1 / total } else { 0.0 },
            p1,
            p2,
            ln_q,
            gap,
        }
    }

    /// One geometric gap draw from the segment's cached `ln(1 − p)`.
    #[inline]
    fn draw_gap(rng: &mut Xoshiro256, ln_q: f64) -> u64 {
        geometric_gap(rng, ln_q)
    }

    /// Number of whole rounds, starting at the current round, that are
    /// guaranteed to select no actor. `0` means the current round has at
    /// least one. Costs no randomness.
    #[inline]
    pub fn empty_rounds_ahead(&self) -> u64 {
        if self.gap == u64::MAX {
            u64::MAX
        } else {
            self.gap / self.m
        }
    }

    /// Skip `k` whole rounds, all of which must be empty
    /// (`k ≤ empty_rounds_ahead()`). O(1), no randomness.
    #[inline]
    pub fn skip_rounds(&mut self, k: u64) {
        if self.gap != u64::MAX {
            debug_assert!(k <= self.gap / self.m, "skipping a non-empty round");
            self.gap -= k * self.m;
        }
    }

    /// Sample the acting subset of the current round, appending node
    /// indices (in `[0, m)`, strictly increasing) to `class1`/`class2`,
    /// then advance to the next round.
    pub fn next_round(
        &mut self,
        rng: &mut Xoshiro256,
        class1: &mut Vec<u32>,
        class2: &mut Vec<u32>,
    ) {
        if self.total >= 1.0 {
            // Every node acts every round; only the class draw remains.
            for idx in 0..self.m as u32 {
                self.classify(rng, idx, class1, class2);
            }
            return;
        }
        while self.gap < self.m {
            let idx = self.gap as u32;
            self.classify(rng, idx, class1, class2);
            let g = Self::draw_gap(rng, self.ln_q);
            self.gap = (self.gap + 1).saturating_add(g);
        }
        if self.gap != u64::MAX {
            self.gap -= self.m;
        }
    }

    #[inline]
    fn classify(
        &self,
        rng: &mut Xoshiro256,
        idx: u32,
        class1: &mut Vec<u32>,
        class2: &mut Vec<u32>,
    ) {
        if self.p2 <= 0.0 {
            class1.push(idx);
        } else if self.p1 <= 0.0 {
            class2.push(idx);
        } else if rng.gen_bool(self.frac1) {
            class1.push(idx);
        } else {
            class2.push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_count(p: f64, m: usize, trials: usize, seed: u64) -> (f64, f64) {
        let mut rng = Xoshiro256::seeded(seed);
        let mut out = Vec::new();
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..trials {
            out.clear();
            bernoulli_subset(&mut rng, m, p, &mut out);
            let k = out.len() as f64;
            sum += k;
            sum2 += k * k;
        }
        let mean = sum / trials as f64;
        let var = sum2 / trials as f64 - mean * mean;
        (mean, var)
    }

    #[test]
    fn output_is_sorted_unique_in_range() {
        let mut rng = Xoshiro256::seeded(1);
        let mut out = Vec::new();
        for _ in 0..1000 {
            out.clear();
            bernoulli_subset(&mut rng, 500, 0.07, &mut out);
            for w in out.windows(2) {
                assert!(w[0] < w[1], "not strictly increasing: {out:?}");
            }
            if let Some(&last) = out.last() {
                assert!((last as usize) < 500);
            }
        }
    }

    #[test]
    fn p_zero_selects_nothing_p_one_selects_all() {
        let mut rng = Xoshiro256::seeded(2);
        let mut out = Vec::new();
        bernoulli_subset(&mut rng, 100, 0.0, &mut out);
        assert!(out.is_empty());
        bernoulli_subset(&mut rng, 100, 1.0, &mut out);
        assert_eq!(out, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_population() {
        let mut rng = Xoshiro256::seeded(2);
        let mut out = Vec::new();
        bernoulli_subset(&mut rng, 0, 0.5, &mut out);
        assert!(out.is_empty());
    }

    /// Mean and variance of the selected count must match Binomial(m, p).
    #[test]
    fn count_matches_binomial_moments() {
        for &(p, m) in &[
            (1.0 / 64.0, 1024usize),
            (0.25, 64),
            (0.9, 32),
            (0.005, 4096),
        ] {
            let trials = 20_000;
            let (mean, var) = mean_count(p, m, trials, 77);
            let em = m as f64 * p;
            let ev = m as f64 * p * (1.0 - p);
            // 5-sigma band on the sample mean.
            let mean_sd = (ev / trials as f64).sqrt();
            assert!(
                (mean - em).abs() < 5.0 * mean_sd + 1e-9,
                "p={p} m={m}: mean {mean} vs {em}"
            );
            assert!(
                (var - ev).abs() / ev.max(1e-9) < 0.15,
                "p={p} m={m}: var {var} vs {ev}"
            );
        }
    }

    /// Each individual index must be selected with probability p (no position
    /// bias from the skip process).
    #[test]
    fn per_index_inclusion_probability_is_uniform() {
        let m = 64;
        let p = 0.1;
        let trials = 60_000;
        let mut rng = Xoshiro256::seeded(123);
        let mut hits = vec![0usize; m];
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            bernoulli_subset(&mut rng, m, p, &mut out);
            for &i in &out {
                hits[i as usize] += 1;
            }
        }
        let sd = (trials as f64 * p * (1.0 - p)).sqrt();
        for (i, h) in hits.iter().enumerate() {
            let z = (*h as f64 - trials as f64 * p) / sd;
            assert!(z.abs() < 5.0, "index {i}: z = {z}");
        }
    }

    /// Sparse and dense implementations must agree in distribution.
    #[test]
    fn bernoulli_subset_matches_dense() {
        let m = 256;
        let p = 1.0 / 32.0;
        let trials = 30_000;
        let mut rng_a = Xoshiro256::seeded(5);
        let mut rng_b = Xoshiro256::seeded(6);
        let (mut sum_a, mut sum_b) = (0usize, 0usize);
        let mut out = Vec::new();
        for _ in 0..trials {
            out.clear();
            bernoulli_subset(&mut rng_a, m, p, &mut out);
            sum_a += out.len();
            out.clear();
            bernoulli_subset_dense(&mut rng_b, m, p, &mut out);
            sum_b += out.len();
        }
        let ma = sum_a as f64 / trials as f64;
        let mb = sum_b as f64 / trials as f64;
        let sd = (m as f64 * p * (1.0 - p) / trials as f64).sqrt();
        assert!((ma - mb).abs() < 6.0 * sd, "sparse {ma} vs dense {mb}");
    }

    #[test]
    fn two_class_marginals() {
        let m = 512;
        let (p1, p2) = (1.0 / 64.0, 1.0 / 64.0);
        let trials = 40_000;
        let mut rng = Xoshiro256::seeded(9);
        let (mut c1, mut c2, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        let (mut n1, mut n2) = (0usize, 0usize);
        for _ in 0..trials {
            c1.clear();
            c2.clear();
            sample_two_class(&mut rng, m, p1, p2, &mut c1, &mut c2, &mut scratch);
            n1 += c1.len();
            n2 += c2.len();
            // Exclusivity: no index in both classes.
            for &i in &c1 {
                assert!(!c2.contains(&i));
            }
        }
        let e = m as f64 * p1;
        let sd = (m as f64 * p1 * (1.0 - p1)).sqrt() * (trials as f64).sqrt();
        assert!(((n1 as f64) - e * trials as f64).abs() < 6.0 * sd);
        assert!(((n2 as f64) - e * trials as f64).abs() < 6.0 * sd);
    }

    #[test]
    fn two_class_full_saturation() {
        // p1 + p2 == 1: every index must be selected into exactly one class.
        let mut rng = Xoshiro256::seeded(33);
        let (mut c1, mut c2, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        sample_two_class(&mut rng, 100, 0.5, 0.5, &mut c1, &mut c2, &mut scratch);
        assert_eq!(c1.len() + c2.len(), 100);
    }

    #[test]
    #[should_panic]
    fn two_class_rejects_super_unit_mass() {
        let mut rng = Xoshiro256::seeded(33);
        let (mut c1, mut c2, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        sample_two_class(&mut rng, 10, 0.7, 0.7, &mut c1, &mut c2, &mut scratch);
    }

    /// The carried-gap stream must produce the same per-round selection
    /// distribution as independent per-round sampling.
    #[test]
    fn round_stream_matches_restart_sampling_in_distribution() {
        let m = 128usize;
        let (p1, p2) = (1.0 / 64.0, 1.0 / 64.0);
        let rounds_per_stream = 50;
        let streams = 800;
        let mut rng = Xoshiro256::seeded(404);
        let (mut c1, mut c2) = (Vec::new(), Vec::new());
        let (mut n1, mut n2) = (0usize, 0usize);
        let mut hits = vec![0u64; m];
        for _ in 0..streams {
            let mut stream = TwoClassRoundStream::new(&mut rng, m, p1, p2);
            for _ in 0..rounds_per_stream {
                c1.clear();
                c2.clear();
                stream.next_round(&mut rng, &mut c1, &mut c2);
                for w in c1.windows(2) {
                    assert!(w[0] < w[1]);
                }
                n1 += c1.len();
                n2 += c2.len();
                for &i in c1.iter().chain(c2.iter()) {
                    hits[i as usize] += 1;
                }
            }
        }
        let rounds = (rounds_per_stream * streams) as f64;
        let e = m as f64 * p1 * rounds;
        let sd = (m as f64 * p1 * (1.0 - p1) * rounds).sqrt();
        assert!((n1 as f64 - e).abs() < 6.0 * sd, "class1 {n1} vs {e}");
        assert!((n2 as f64 - e).abs() < 6.0 * sd, "class2 {n2} vs {e}");
        // No position bias from the carried gap.
        let p = p1 + p2;
        let per_idx_sd = (rounds * p * (1.0 - p)).sqrt();
        for (i, &h) in hits.iter().enumerate() {
            let z = (h as f64 - rounds * p) / per_idx_sd;
            assert!(z.abs() < 5.5, "index {i}: z = {z:.2}");
        }
    }

    /// `skip_rounds(k)` must leave the stream in exactly the state that
    /// executing the k empty rounds one by one would.
    #[test]
    fn round_stream_skip_equals_stepping_through_empty_rounds() {
        let m = 64usize;
        let p = 1.0 / 512.0;
        let mut rng_a = Xoshiro256::seeded(9);
        let mut rng_b = Xoshiro256::seeded(9);
        let mut a = TwoClassRoundStream::new(&mut rng_a, m, p, p);
        let mut b = TwoClassRoundStream::new(&mut rng_b, m, p, p);
        let (mut c1a, mut c2a) = (Vec::new(), Vec::new());
        let (mut c1b, mut c2b) = (Vec::new(), Vec::new());
        let mut skipped = 0u64;
        for _ in 0..2_000 {
            let ahead = a.empty_rounds_ahead();
            assert_eq!(ahead, b.empty_rounds_ahead());
            if ahead > 0 {
                // a jumps; b steps through each empty round.
                a.skip_rounds(ahead);
                for _ in 0..ahead {
                    c1b.clear();
                    c2b.clear();
                    b.next_round(&mut rng_b, &mut c1b, &mut c2b);
                    assert!(c1b.is_empty() && c2b.is_empty(), "round was not empty");
                }
                skipped += ahead;
            }
            c1a.clear();
            c2a.clear();
            c1b.clear();
            c2b.clear();
            a.next_round(&mut rng_a, &mut c1a, &mut c2a);
            b.next_round(&mut rng_b, &mut c1b, &mut c2b);
            assert_eq!(c1a, c1b);
            assert_eq!(c2a, c2b);
            assert!(!c1a.is_empty() || !c2a.is_empty(), "post-skip round empty");
        }
        assert!(skipped > 1_000, "sparse stream should skip many rounds");
    }

    #[test]
    fn round_stream_degenerate_probabilities() {
        let mut rng = Xoshiro256::seeded(7);
        let (mut c1, mut c2) = (Vec::new(), Vec::new());
        // p1 + p2 == 0: nobody ever acts, infinitely many empty rounds.
        let mut none = TwoClassRoundStream::new(&mut rng, 10, 0.0, 0.0);
        assert_eq!(none.empty_rounds_ahead(), u64::MAX);
        none.next_round(&mut rng, &mut c1, &mut c2);
        assert!(c1.is_empty() && c2.is_empty());
        none.skip_rounds(1 << 40); // no-op, must not underflow
        assert_eq!(none.empty_rounds_ahead(), u64::MAX);
        // p1 + p2 == 1: everyone acts every round.
        let mut all = TwoClassRoundStream::new(&mut rng, 10, 0.5, 0.5);
        assert_eq!(all.empty_rounds_ahead(), 0);
        all.next_round(&mut rng, &mut c1, &mut c2);
        assert_eq!(c1.len() + c2.len(), 10);
        // One-sided classes take the draw-free path.
        c1.clear();
        c2.clear();
        let mut one_sided = TwoClassRoundStream::new(&mut rng, 100, 1.0, 0.0);
        one_sided.next_round(&mut rng, &mut c1, &mut c2);
        assert_eq!(c1.len(), 100);
        assert!(c2.is_empty());
    }

    #[test]
    fn one_sided_classes_take_fast_paths() {
        let mut rng = Xoshiro256::seeded(40);
        let (mut c1, mut c2, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        sample_two_class(&mut rng, 1000, 0.3, 0.0, &mut c1, &mut c2, &mut scratch);
        assert!(c2.is_empty());
        assert!(!c1.is_empty());
        c1.clear();
        sample_two_class(&mut rng, 1000, 0.0, 0.3, &mut c1, &mut c2, &mut scratch);
        assert!(c1.is_empty());
        assert!(!c2.is_empty());
    }
}
