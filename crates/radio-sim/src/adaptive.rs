//! Adaptive adversaries — the paper's Section 8 future-work model.
//!
//! The paper proves its guarantees for an *oblivious* Eve and conjectures
//! ("we suspect MultiCast and MultiCastAdv can handle such more powerful
//! adversary with few (or even no) modifications") that they survive an
//! *adaptive* one. This module adds the machinery to test that conjecture
//! empirically: an [`AdaptiveAdversary`] receives, each slot, a public
//! observation of what happened on the band in the **previous** slot —
//! which channels carried transmissions and which carried noise — and may
//! condition its jamming on the full history of such observations.
//!
//! Model notes:
//!
//! * Sensing is free and full-band (the strongest reasonable sensing model;
//!   a budget-limited sensor would only be weaker).
//! * Reaction latency is one slot: Eve cannot sense and jam within the same
//!   slot, matching the synchronous model where all slot-t actions are
//!   committed simultaneously. (This is also the standard "reactive jammer"
//!   abstraction of Richa et al.)
//! * She still cannot read node state or randomness — only the channel
//!   outcomes any listener could observe.

use crate::jamset::JamSet;
use crate::protocol::Adversary;

/// What a full-band sensor saw in one slot. (Eve's own jamming is not
/// included: she knows her own actions and can remember them herself.)
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BandObservation {
    /// Channels in use that slot.
    pub channels: u64,
    /// Channels on which at least one node transmitted, sorted ascending.
    pub busy: Vec<u64>,
}

impl BandObservation {
    /// Forget the slot (reused buffer).
    pub fn clear(&mut self) {
        self.channels = 0;
        self.busy.clear();
    }
}

/// A jamming adversary that observes the previous slot's band activity.
///
/// `prev` is the observation of slot `slot − 1` (empty for slot 0). Energy
/// accounting and budget enforcement are identical to the oblivious
/// [`Adversary`].
///
/// ```
/// use rcb_sim::{AdaptiveAdversary, BandObservation, JamSet};
///
/// /// Jam whatever was busy last slot — the classic reactive jammer.
/// struct Reactive;
/// impl AdaptiveAdversary for Reactive {
///     fn jam(&mut self, _slot: u64, channels: u64, prev: &BandObservation) -> JamSet {
///         JamSet::from_channels(
///             prev.busy.iter().copied().filter(|&c| c < channels).collect(),
///         )
///     }
///     fn budget(&self) -> u64 { 1_000 }
/// }
///
/// let mut eve = Reactive;
/// let quiet = BandObservation::default();
/// assert_eq!(eve.jam(0, 8, &quiet), JamSet::Empty);
/// let busy = BandObservation { channels: 8, busy: vec![2, 5] };
/// assert_eq!(eve.jam(1, 8, &busy).count(8), 2);
/// ```
pub trait AdaptiveAdversary {
    fn jam(&mut self, slot: u64, channels: u64, prev: &BandObservation) -> JamSet;

    /// Eve's total energy budget `T`.
    fn budget(&self) -> u64;

    /// Does this strategy actually read its observations? Adapters over
    /// oblivious strategies return `false`, letting the engine skip the
    /// per-slot `busy_channels` collection and observation swap entirely.
    fn needs_observations(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Adapter: every oblivious adversary is trivially an adaptive one that
/// ignores its observations. Lets the engine run both through one code path
/// and lets experiments compare like for like.
pub struct ObliviousAsAdaptive<'a, A: Adversary + ?Sized>(pub &'a mut A);

impl<A: Adversary + ?Sized> AdaptiveAdversary for ObliviousAsAdaptive<'_, A> {
    fn jam(&mut self, slot: u64, channels: u64, _prev: &BandObservation) -> JamSet {
        self.0.jam(slot, channels)
    }

    fn budget(&self) -> u64 {
        self.0.budget()
    }

    fn needs_observations(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NoAdversary;

    #[test]
    fn oblivious_adapter_forwards() {
        let mut inner = NoAdversary;
        let mut adapted = ObliviousAsAdaptive(&mut inner);
        let obs = BandObservation {
            channels: 8,
            busy: vec![1, 2],
        };
        assert_eq!(adapted.jam(0, 8, &obs), JamSet::Empty);
        assert_eq!(adapted.budget(), 0);
        assert_eq!(adapted.name(), "none");
        assert!(!adapted.needs_observations());
    }

    #[test]
    fn truly_adaptive_strategies_need_observations_by_default() {
        struct Echo;
        impl AdaptiveAdversary for Echo {
            fn jam(&mut self, _s: u64, channels: u64, prev: &BandObservation) -> JamSet {
                JamSet::from_channels(
                    prev.busy
                        .iter()
                        .copied()
                        .filter(|&c| c < channels)
                        .collect(),
                )
            }
            fn budget(&self) -> u64 {
                1
            }
        }
        assert!(Echo.needs_observations());
    }

    #[test]
    fn observation_clear_resets() {
        let mut obs = BandObservation {
            channels: 4,
            busy: vec![0],
        };
        obs.clear();
        assert_eq!(obs, BandObservation::default());
    }
}
