//! Adaptive adversaries — the paper's Section 8 future-work model.
//!
//! The paper proves its guarantees for an *oblivious* Eve and conjectures
//! ("we suspect MultiCast and MultiCastAdv can handle such more powerful
//! adversary with few (or even no) modifications") that they survive an
//! *adaptive* one. This module adds the machinery to test that conjecture
//! empirically: an [`AdaptiveAdversary`] receives, each slot, a public
//! observation of what happened on the band in the **previous** slot —
//! which channels carried transmissions and which carried noise — and may
//! condition its jamming on the full history of such observations.
//!
//! Model notes:
//!
//! * Sensing is free and full-band (the strongest reasonable sensing model;
//!   a budget-limited sensor would only be weaker).
//! * Reaction latency is one slot: Eve cannot sense and jam within the same
//!   slot, matching the synchronous model where all slot-t actions are
//!   committed simultaneously. (This is also the standard "reactive jammer"
//!   abstraction of Richa et al.)
//! * She still cannot read node state or randomness — only the channel
//!   outcomes any listener could observe.

use crate::jamset::JamSet;
use crate::protocol::{Adversary, SpanCharge};

/// What a full-band sensor saw in one slot. (Eve's own jamming is not
/// included: she knows her own actions and can remember them herself.)
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BandObservation {
    /// Channels in use that slot.
    pub channels: u64,
    /// Channels on which at least one node transmitted, sorted ascending.
    pub busy: Vec<u64>,
}

impl BandObservation {
    /// Forget the slot (reused buffer).
    pub fn clear(&mut self) {
        self.channels = 0;
        self.busy.clear();
    }
}

/// A jamming adversary that observes the previous slot's band activity.
///
/// `prev` is the observation of slot `slot − 1` (empty for slot 0). Energy
/// accounting and budget enforcement are identical to the oblivious
/// [`Adversary`].
///
/// ```
/// use rcb_sim::{AdaptiveAdversary, BandObservation, JamSet};
///
/// /// Jam whatever was busy last slot — the classic reactive jammer.
/// struct Reactive;
/// impl AdaptiveAdversary for Reactive {
///     fn jam(&mut self, _slot: u64, channels: u64, prev: &BandObservation) -> JamSet {
///         JamSet::from_channels(
///             prev.busy.iter().copied().filter(|&c| c < channels).collect(),
///         )
///     }
///     fn budget(&self) -> u64 { 1_000 }
/// }
///
/// let mut eve = Reactive;
/// let quiet = BandObservation::default();
/// assert_eq!(eve.jam(0, 8, &quiet), JamSet::Empty);
/// let busy = BandObservation { channels: 8, busy: vec![2, 5] };
/// assert_eq!(eve.jam(1, 8, &busy).count(8), 2);
/// ```
pub trait AdaptiveAdversary {
    fn jam(&mut self, slot: u64, channels: u64, prev: &BandObservation) -> JamSet;

    /// Eve's total energy budget `T`.
    fn budget(&self) -> u64;

    /// Batched counterpart of [`jam`](AdaptiveAdversary::jam) for a span of
    /// `len` consecutive slots starting at `start` in which **no node acts**
    /// — the adaptive leg of the engine's idle-round fast-forward (see
    /// [`Adversary::jam_span`] for the oblivious contract this mirrors).
    ///
    /// Batching is sound for an adaptive Eve precisely because the span is
    /// silent: she observes nothing new while nobody transmits. Slot `start`
    /// sees `first_prev` (the observation of the last executed slot, exactly
    /// as the per-slot path would deliver it); every later slot of the span
    /// sees the silent observation (`busy` empty, same channel count). The
    /// call must return the same total charge, and leave the strategy in the
    /// same externally observable state, as the per-slot budget rule over
    /// those observations: charge `min(jam(slot).count(channels), remaining)`
    /// per slot and stop calling `jam` once `remaining` hits zero. The
    /// default implementation *is* that loop, so every adaptive strategy is
    /// span-correct out of the box; structured reactive strategies override
    /// it with closed forms (their reaction window drains after finitely many
    /// silent observations — see `rcb-adversary`'s `ReactiveJammer`).
    fn jam_span(
        &mut self,
        start: u64,
        len: u64,
        channels: u64,
        budget: u64,
        first_prev: &BandObservation,
    ) -> SpanCharge {
        let silent = BandObservation {
            channels,
            busy: Vec::new(),
        };
        let mut remaining = budget;
        let mut spent = 0u64;
        for slot in start..start.saturating_add(len) {
            if remaining == 0 {
                break;
            }
            let prev = if slot == start { first_prev } else { &silent };
            let take = self
                .jam(slot, channels, prev)
                .count(channels)
                .min(remaining);
            remaining -= take;
            spent += take;
        }
        SpanCharge { spent }
    }

    /// Does this strategy actually read its observations? Adapters over
    /// oblivious strategies return `false`, letting the engine skip the
    /// per-slot `busy_channels` collection and observation swap entirely.
    fn needs_observations(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Adapter: every oblivious adversary is trivially an adaptive one that
/// ignores its observations. Lets the engine run both through one code path
/// and lets experiments compare like for like.
pub struct ObliviousAsAdaptive<'a, A: Adversary + ?Sized>(pub &'a mut A);

impl<A: Adversary + ?Sized> AdaptiveAdversary for ObliviousAsAdaptive<'_, A> {
    fn jam(&mut self, slot: u64, channels: u64, _prev: &BandObservation) -> JamSet {
        self.0.jam(slot, channels)
    }

    fn budget(&self) -> u64 {
        self.0.budget()
    }

    fn jam_span(
        &mut self,
        start: u64,
        len: u64,
        channels: u64,
        budget: u64,
        _first_prev: &BandObservation,
    ) -> SpanCharge {
        // Observations are ignored, so the oblivious closed form applies.
        self.0.jam_span(start, len, channels, budget)
    }

    fn needs_observations(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NoAdversary;

    #[test]
    fn oblivious_adapter_forwards() {
        let mut inner = NoAdversary;
        let mut adapted = ObliviousAsAdaptive(&mut inner);
        let obs = BandObservation {
            channels: 8,
            busy: vec![1, 2],
        };
        assert_eq!(adapted.jam(0, 8, &obs), JamSet::Empty);
        assert_eq!(adapted.budget(), 0);
        assert_eq!(adapted.name(), "none");
        assert!(!adapted.needs_observations());
    }

    #[test]
    fn truly_adaptive_strategies_need_observations_by_default() {
        struct Echo;
        impl AdaptiveAdversary for Echo {
            fn jam(&mut self, _s: u64, channels: u64, prev: &BandObservation) -> JamSet {
                JamSet::from_channels(
                    prev.busy
                        .iter()
                        .copied()
                        .filter(|&c| c < channels)
                        .collect(),
                )
            }
            fn budget(&self) -> u64 {
                1
            }
        }
        assert!(Echo.needs_observations());
    }

    /// The default `jam_span` must deliver `first_prev` to the span's first
    /// slot and the silent observation to every later one.
    #[test]
    fn default_jam_span_feeds_first_prev_then_silence() {
        struct Echo {
            calls: Vec<(u64, Vec<u64>)>,
        }
        impl AdaptiveAdversary for Echo {
            fn jam(&mut self, slot: u64, channels: u64, prev: &BandObservation) -> JamSet {
                self.calls.push((slot, prev.busy.clone()));
                JamSet::from_channels(
                    prev.busy
                        .iter()
                        .copied()
                        .filter(|&c| c < channels)
                        .collect(),
                )
            }
            fn budget(&self) -> u64 {
                100
            }
        }
        let mut eve = Echo { calls: Vec::new() };
        let first = BandObservation {
            channels: 8,
            busy: vec![1, 5],
        };
        let charge = eve.jam_span(10, 4, 8, 100, &first);
        // Slot 10 jams {1, 5}; slots 11..14 see silence and jam nothing.
        assert_eq!(charge.spent, 2);
        assert_eq!(eve.calls.len(), 4);
        assert_eq!(eve.calls[0], (10, vec![1, 5]));
        assert!(eve.calls[1..].iter().all(|(_, busy)| busy.is_empty()));
    }

    /// The default `jam_span` must mirror the engine's budget rule,
    /// including bankruptcy mid-span.
    #[test]
    fn default_jam_span_stops_at_bankruptcy() {
        struct AlwaysAll;
        impl AdaptiveAdversary for AlwaysAll {
            fn jam(&mut self, _s: u64, _c: u64, _p: &BandObservation) -> JamSet {
                JamSet::All
            }
            fn budget(&self) -> u64 {
                20
            }
        }
        let quiet = BandObservation::default();
        // 10 slots × 8 channels would cost 80, but only 20 remain.
        assert_eq!(AlwaysAll.jam_span(0, 10, 8, 20, &quiet).spent, 20);
        assert_eq!(AlwaysAll.jam_span(0, 10, 8, 100, &quiet).spent, 80);
        assert_eq!(AlwaysAll.jam_span(0, 0, 8, 100, &quiet).spent, 0);
    }

    #[test]
    fn oblivious_adapter_span_uses_the_oblivious_closed_form() {
        struct Prefix2;
        impl Adversary for Prefix2 {
            fn jam(&mut self, _s: u64, _c: u64) -> JamSet {
                JamSet::Prefix(2)
            }
            fn budget(&self) -> u64 {
                1_000
            }
        }
        let mut inner = Prefix2;
        let mut adapted = ObliviousAsAdaptive(&mut inner);
        let busy = BandObservation {
            channels: 8,
            busy: vec![0, 1, 2],
        };
        // The observation must be ignored: 2 channels per slot, 5 slots.
        assert_eq!(adapted.jam_span(0, 5, 8, 1_000, &busy).spent, 10);
    }

    #[test]
    fn observation_clear_resets() {
        let mut obs = BandObservation {
            channels: 4,
            busy: vec![0],
        };
        obs.clear();
        assert_eq!(obs, BandObservation::default());
    }
}
