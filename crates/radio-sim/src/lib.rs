//! # rcb-sim — slot-synchronous multi-channel radio network simulator
//!
//! This crate is the substrate for reproducing *Fast and Resource Competitive
//! Broadcast in Multi-channel Radio Networks* (Chen & Zheng, SPAA 2019). It
//! implements exactly the communication model of Section 3 of the paper:
//!
//! * Time is divided into discrete slots; all nodes start at slot 0.
//! * In each slot a node accesses one channel and either **broadcasts**,
//!   **listens**, or stays **idle**. Broadcast and listen cost one unit of
//!   energy per slot; idling is free.
//! * Per channel per slot: zero broadcasters and no jamming → listeners hear
//!   **silence**; exactly one broadcaster and no jamming → listeners receive
//!   the **message**; two or more broadcasters, or jamming by the adversary
//!   (or both) → listeners hear **noise**. Collisions and jamming are
//!   indistinguishable, and broadcasters get no feedback.
//! * The adversary (*Eve*) may jam any set of channels each slot at one unit
//!   of energy per channel-slot, up to a total budget `T`. She is
//!   **oblivious**: the [`Adversary`] trait only ever receives the slot index
//!   and the (publicly known) channel count for that slot — never any
//!   execution state. The Section 8 extension is [`AdaptiveAdversary`]
//!   ([`adaptive`]): Eve additionally observes, each slot, which channels
//!   carried transmissions in the previous slot.
//!
//! ## Engine design
//!
//! Every protocol in the paper has the property that, within a slot, all
//! active nodes share the same action probabilities (listen w.p. `p₁`,
//! broadcast-candidate w.p. `p₂`), with only the *interpretation* of a drawn
//! coin differing by node status. The [`engine`] exploits this: it samples the
//! acting subset exactly (geometric-skip Bernoulli thinning, `O(#actors)` per
//! slot rather than `O(n)`), asks only the selected nodes for their concrete
//! action, and resolves channel outcomes from a sparse broadcast board. Runs
//! of provably empty rounds are **fast-forwarded** in O(1) with Eve's budget
//! charged exactly through the span-batched `jam_span` APIs — byte-identical
//! to slot-by-slot execution for both oblivious and adaptive adversaries
//! (see the [`engine`] module docs for the soundness argument). See
//! [`protocol`] for the trait contract and [`sampler`] for the exactness
//! argument and tests.
//!
//! Every run goes through one builder, [`Simulation`]: mount an [`Eve`]
//! adversary seat (oblivious or adaptive), optionally a [`Topology`], an
//! [`EngineConfig`], and an [`Observer`], then `.run(seed)`.
//!
//! The [`topology`] module generalizes the model to **multi-hop** networks:
//! a connectivity graph gates who hears whom, informed nodes relay, and
//! completion means the source's whole reachable component is informed.
//! [`Topology::Complete`] reproduces the single-hop model byte-for-byte.
//!
//! The [`schedule`] module adds the **nemesis layer**: a declarative
//! [`WorldSchedule`] of time-indexed fault events (adversary swaps,
//! partitions, crashes, lossy links) applied at round starts so idle-round
//! fast-forwarding stays sound, with survivor-relative completion verdicts
//! in [`RunOutcome`]. An empty schedule is byte-identical to no schedule.

pub mod adaptive;
pub mod batch;
pub mod channel;
pub mod engine;
pub mod jamset;
pub mod metrics;
pub mod protocol;
pub mod rng;
pub mod sampler;
pub mod schedule;
pub mod telemetry;
pub mod topology;
pub mod trace;

pub use adaptive::{AdaptiveAdversary, BandObservation, ObliviousAsAdaptive};
pub use batch::{BatchLane, BatchSimulation, MAX_BATCH_LANES};
pub use channel::{ChannelBoard, Feedback, Payload};
pub use engine::{EngineConfig, Eve, Sampling, Simulation};
pub use jamset::JamSet;
pub use metrics::{MessageOutcome, NodeExtra, NodeOutcome, RunOutcome, SlotStats};
pub use protocol::{
    Action, Adversary, BoundaryDecision, Coin, NoAdversary, NodeId, Protocol, ProtocolNode,
    SlotProfile, SpanCharge,
};
pub use rng::{derive_seed, SplitMix64, Xoshiro256};
pub use sampler::{bernoulli_subset, geometric_gap, sample_two_class, TwoClassRoundStream};
pub use schedule::{ScheduleMarker, WorldEvent, WorldSchedule, LINK_LOSS_STREAM};
pub use telemetry::{EngineTelemetry, PhaseNanos, SPAN_HIST_BUCKETS};
pub use topology::{Topology, TopologyView};
pub use trace::{Observer, RecordingObserver, TraceEvent};
